"""Forward-slot filling: the paper's code-expansion algorithm.

For every conditional branch predicted taken (the likely bit set by the
layout pass), ``n_slots`` = k + l locations are reserved directly after
the branch and filled with copies of the first instructions of the
branch's target path; the branch target is advanced past the copied
prefix.  When the target path runs out early the remaining slots are
filled with NO-OPs, exactly as in the paper's algorithm.

Absorption rules (which instructions may be copied into slots):

* ordinary instructions, including TABLE and I/O, are copied verbatim;
* *unlikely* conditional branches are absorbed with their original
  targets unaltered (the paper's Figure 2 example); when one fires
  inside the slots it redirects fetch and cancels the alternate PC,
  matching the original path;
* an unconditional JUMP / RET / JIND / HALT is absorbed and ends the
  copy (everything after it on the target path is unreachable from the
  slots);
* the copy stops *before* a likely-taken conditional branch (its own
  slots live in the target trace and are not duplicated) and before a
  CALL (a call would return into the middle of the slot region).

The transformation preserves semantics: `tests/test_fs_semantics.py`
executes every benchmark in both ``direct`` and ``execute`` slot modes
and compares outputs byte for byte.
"""

from repro.analysis.verify import assert_valid
from repro.isa.opcodes import Opcode
from repro.isa.instruction import Instruction
from repro.isa.program import Program


class ExpansionReport:
    """Static code-size accounting for Table 5."""

    __slots__ = ("original_size", "expanded_size", "likely_branches",
                 "copied_instructions", "padding_nops", "n_slots")

    def __init__(self, original_size, expanded_size, likely_branches,
                 copied_instructions, padding_nops, n_slots):
        self.original_size = original_size
        self.expanded_size = expanded_size
        self.likely_branches = likely_branches
        self.copied_instructions = copied_instructions
        self.padding_nops = padding_nops
        self.n_slots = n_slots

    @property
    def expansion_fraction(self):
        """Relative code-size increase (the Table 5 metric)."""
        if self.original_size == 0:
            return 0.0
        return (self.expanded_size - self.original_size) / self.original_size

    def __repr__(self):
        return ("ExpansionReport(%d -> %d instructions, %d likely branches, "
                "+%.2f%%)" % (self.original_size, self.expanded_size,
                              self.likely_branches,
                              100.0 * self.expansion_fraction))


_COPY_ENDERS = frozenset({Opcode.JUMP, Opcode.RET, Opcode.JIND, Opcode.HALT})


def _collect_slot_copies(instructions, target, n_slots, absorb_branches):
    """Choose the target-path prefix to copy into the slots.

    Returns (copies, consumed): ``copies`` are instruction copies (at
    most ``n_slots``), ``consumed`` is how far the copied prefix
    advances along the target path.

    With ``absorb_branches=False`` the copy stops before ANY control
    transfer — the restriction of the "Delayed Branch with Squashing"
    scheme the paper contrasts against, where "no branch instructions
    could be absorbed into the delay slots".
    """
    copies = []
    size = len(instructions)
    while len(copies) < n_slots:
        address = target + len(copies)
        if address >= size:
            break
        candidate = instructions[address]
        if candidate.is_conditional and candidate.likely:
            break
        if candidate.op is Opcode.CALL:
            break
        if not absorb_branches and candidate.is_branch:
            break
        copies.append(candidate.copy())
        if candidate.op in _COPY_ENDERS:
            break
    return copies, len(copies)


def fill_forward_slots(program, n_slots, fill_unconditional=False,
                       absorb_branches=True, verify=True):
    """Apply forward-slot filling to a laid-out program.

    Args:
        program: resolved program whose conditional branches carry
            likely bits (output of the layout pass).
        n_slots: slots reserved per likely-taken branch (k + l in the
            paper); 0 returns an unmodified copy.
        fill_unconditional: also reserve slots after direct JUMPs (an
            ablation; the paper's Table 5 accounts only predicted-taken
            conditional branches).
        absorb_branches: allow unlikely branches / jumps / returns in
            the slots (the Forward Semantic's advantage); False models
            the Delayed-Branch-with-Squashing restriction and pads with
            NO-OPs instead.
        verify: run the IR verifier on the expanded program (checks,
            among the rest, the slot-region invariant: the copies must
            be a faithful target-path prefix and nothing may jump into
            the middle of a slot region).

    Returns:
        (new_program, :class:`ExpansionReport`)
    """
    if n_slots < 0:
        raise ValueError("n_slots must be non-negative")
    old_instructions = program.instructions
    original_size = len(old_instructions)

    new_program = Program(program.name)
    new_program.globals_size = program.globals_size
    new_program.data_init = dict(program.data_init)
    new_instructions = new_program.instructions

    address_map = {}
    slotted = []  # (new index of branch, old target, consumed)
    likely_branches = 0
    copied_total = 0
    padding_total = 0

    for old_address, instr in enumerate(old_instructions):
        address_map[old_address] = len(new_instructions)
        duplicate = instr.copy()
        new_instructions.append(duplicate)
        if n_slots == 0:
            continue

        expand = (duplicate.is_conditional and duplicate.likely) or (
            fill_unconditional and duplicate.op is Opcode.JUMP)
        if not expand:
            continue

        likely_branches += 1
        copies, consumed = _collect_slot_copies(
            old_instructions, duplicate.target, n_slots, absorb_branches)
        copied_total += len(copies)
        padding = n_slots - len(copies)
        padding_total += padding
        duplicate.n_slots = n_slots
        slotted.append((len(new_instructions) - 1, duplicate.target, consumed))
        new_instructions.extend(copies)
        new_instructions.extend(
            Instruction(Opcode.NOP) for _ in range(padding))

    # Remap branch targets.  Slotted branches get their original target
    # recorded and their architectural target advanced past the copied
    # prefix; everything else maps straight through.
    slotted_info = {index: (target, consumed)
                    for index, target, consumed in slotted}
    for index, instr in enumerate(new_instructions):
        if not (instr.is_branch and isinstance(instr.target, int)):
            continue
        if index in slotted_info:
            old_target, consumed = slotted_info[index]
            instr.orig_target = address_map[old_target]
            landing = old_target + consumed
            if instr.op is Opcode.JUMP:
                # Ablation only: slots after a JUMP are dead padding for
                # size accounting; the jump keeps its real target.
                instr.target = address_map[old_target]
            elif landing < original_size:
                instr.target = address_map[landing]
            else:
                # The copied prefix ended in a control transfer at the
                # end of the program; the adjusted target is unreachable.
                instr.target = address_map[old_target]
        else:
            instr.target = address_map[instr.target]

    for table in program.jump_tables:
        duplicate = table.copy()
        duplicate.entries = [address_map[entry] for entry in duplicate.entries]
        new_program.jump_tables.append(duplicate)
    for name, label in program.functions.items():
        new_program.labels[label] = address_map[program.labels[label]]
        new_program.functions[name] = label
    if program.lines:
        # Slot copies keep no line of their own; original instructions
        # carry theirs to the expanded addresses.
        new_program.lines = {
            address_map[old_address]: line
            for old_address, line in program.lines.items()
        }

    new_program.resolved = True
    new_program.validate()
    if verify:
        assert_valid(new_program, context="forward-slot filling")
    report = ExpansionReport(original_size, len(new_instructions),
                             likely_branches, copied_total, padding_total,
                             n_slots)
    return new_program, report
