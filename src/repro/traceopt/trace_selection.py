"""Trace selection: the Hwu-Chang growth algorithm.

A *trace* is a sequence of basic blocks that tend to execute in
sequence.  Selection repeatedly seeds a new trace at the heaviest
not-yet-placed block and grows it forward and backward along the most
likely edges.  Growth across an edge B -> S requires:

* S (resp. the predecessor P) is not yet in any trace,
* the edge is B's most likely outgoing edge and its probability is at
  least ``min_probability``,
* the edge is also S's most likely incoming edge (mutual-most-likely),

which is the classic trace-growing rule from the paper's reference
[Hwu & Chang, MICRO-21 1988].  Returns traces in selection order with
every block of the program in exactly one trace.
"""


class Trace:
    """An ordered list of block leaders plus its profile weight."""

    __slots__ = ("blocks", "weight")

    def __init__(self, blocks, weight):
        self.blocks = blocks
        self.weight = weight

    def __len__(self):
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)

    def __repr__(self):
        return "Trace(%r, weight=%d)" % (self.blocks, self.weight)


def _edge_weights(cfg, profile):
    """Outgoing edge weights per block: leader -> [(successor, count)].

    Conditional terminators contribute a taken edge (profiled) and a
    fall-through edge (executions minus taken); JUMP terminators and
    plain fall-through blocks contribute a single edge carrying the
    block's weight.
    """
    outgoing = {}
    for block in cfg.blocks:
        leader = block.start
        terminator = cfg.program.instructions[block.end - 1]
        edges = []
        if block.taken_target is not None and block.fall_through is not None:
            site = block.end - 1
            execs = profile.branch_execs.get(site, 0)
            taken = profile.branch_taken.get(site, 0)
            edges.append((block.taken_target, taken))
            edges.append((block.fall_through, execs - taken))
        elif block.taken_target is not None:
            edges.append((block.taken_target, profile.block_weight(leader)))
        elif block.fall_through is not None:
            edges.append((block.fall_through, profile.block_weight(leader)))
        outgoing[leader] = edges
        del terminator
    return outgoing


def select_traces(cfg, profile, min_probability=0.0):
    """Partition the CFG's blocks into traces.

    Args:
        cfg: :class:`~repro.cfg.ControlFlowGraph` of the program.
        profile: :class:`~repro.profiling.Profile` with block weights
            and branch statistics.
        min_probability: minimum edge probability required to grow a
            trace across an edge (0 grows along any strict majority).

    Returns:
        list of :class:`Trace`; the union of their blocks is exactly
        the set of CFG leaders, each appearing once.
    """
    outgoing = _edge_weights(cfg, profile)
    incoming = {}
    for source, edges in outgoing.items():
        for target, count in edges:
            incoming.setdefault(target, []).append((source, count))

    placed = set()

    def best_successor(leader):
        edges = outgoing.get(leader, [])
        if not edges:
            return None
        total = sum(count for _, count in edges)
        if total == 0:
            return None
        target, count = max(edges, key=lambda edge: edge[1])
        if len(edges) > 1 and count * 2 <= total:
            return None  # no strict majority: do not grow
        if count / total < min_probability:
            return None
        return target

    def best_predecessor(leader):
        edges = incoming.get(leader, [])
        if not edges:
            return None
        source, count = max(edges, key=lambda edge: edge[1])
        if count == 0:
            return None
        total = sum(weight for _, weight in edges)
        if count / total < max(min_probability, 1e-12):
            return None
        return source

    # Seeds in weight order; ties broken by address for determinism.
    seeds = sorted(
        (block.start for block in cfg.blocks),
        key=lambda leader: (-profile.block_weight(leader), leader),
    )

    traces = []
    for seed in seeds:
        if seed in placed:
            continue
        blocks = [seed]
        placed.add(seed)

        # Grow forward.
        current = seed
        while True:
            successor = best_successor(current)
            if successor is None or successor in placed:
                break
            if best_predecessor(successor) != current:
                break
            blocks.append(successor)
            placed.add(successor)
            current = successor

        # Grow backward.
        current = seed
        while True:
            predecessor = best_predecessor(current)
            if predecessor is None or predecessor in placed:
                break
            if best_successor(predecessor) != current:
                break
            blocks.insert(0, predecessor)
            placed.add(predecessor)
            current = predecessor

        weight = sum(profile.block_weight(leader) for leader in blocks)
        traces.append(Trace(blocks, weight))

    return traces
