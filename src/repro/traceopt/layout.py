"""Trace layout: reorder blocks so likely paths fall through.

Traces are placed in decreasing weight order.  Inside the new order,
each block's terminator is rewritten so that:

* a conditional branch whose old fall-through block comes next is kept;
* a conditional branch whose *taken* block comes next is inverted (the
  old fall-through becomes the taken target);
* a conditional branch with neither successor adjacent keeps its taken
  target and gains an explicit JUMP to the old fall-through;
* a trailing JUMP to the block that now follows is deleted;
* a block that used to fall through to a now non-adjacent block gains
  an explicit JUMP.

After layout every conditional branch receives its "likely-taken" bit
from the profile (direction-adjusted when the branch was inverted).
The result is the paper's property that conditional branches predicted
taken sit at the ends of traces, ready for forward-slot filling.
"""

from repro.analysis.verify import assert_valid
from repro.cfg import ControlFlowGraph
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, invert_branch
from repro.isa.program import Program
from repro.traceopt.trace_selection import select_traces


class LayoutResult:
    """Outcome of the layout pass.

    Attributes:
        program: the laid-out program (resolved, validated), with the
            ``likely`` bit set on every conditional branch.
        leader_map: old leader address -> new address.
        old_address_of: new address -> old instruction address (None
            for JUMP instructions inserted by the pass).
        traces: the selected traces (old leader addresses), in layout
            order.
        trace_spans: [(new_start, new_end)] per trace, same order.
    """

    def __init__(self, program, leader_map, old_address_of, traces,
                 trace_spans):
        self.program = program
        self.leader_map = leader_map
        self.old_address_of = old_address_of
        self.traces = traces
        self.trace_spans = trace_spans

    @property
    def likely_sites(self):
        """Map of conditional-branch address -> likely bit."""
        return {
            address: instr.likely
            for address, instr in enumerate(self.program.instructions)
            if instr.is_conditional
        }


def lay_out_traces(program, cfg, profile, traces, verify=True):
    """Apply trace layout; returns a :class:`LayoutResult`.

    ``program`` must be the resolved program ``cfg`` and ``profile``
    were computed from; it is not modified.  With ``verify=True`` the
    laid-out program is run through the IR verifier
    (:func:`repro.analysis.verify.assert_valid`) before returning.
    """
    ordered_traces = sorted(
        traces, key=lambda trace: (-trace.weight, trace.blocks[0]))
    for trace in ordered_traces:
        _rotate_cyclic_trace(trace, cfg)

    block_order = []
    for trace in ordered_traces:
        block_order.extend(trace.blocks)
    if len(block_order) != len(cfg.blocks):
        raise ValueError("traces do not cover the CFG exactly")

    next_leader = {}
    for position, leader in enumerate(block_order):
        following = (block_order[position + 1]
                     if position + 1 < len(block_order) else None)
        next_leader[leader] = following

    # Pass 1: rewrite each block's instruction list.
    rewritten = {}
    for leader in block_order:
        block = cfg.block_at(leader)
        instructions = [instr.copy()
                        for instr in cfg.instructions_of(block)]
        old_addresses = list(range(block.start, block.end))
        following = next_leader[leader]
        terminator = instructions[-1]

        if terminator.is_conditional:
            taken_target = terminator.target
            fall_through = block.fall_through
            inverted = False
            if fall_through == following:
                pass
            elif taken_target == following and fall_through is not None:
                terminator.op = invert_branch(terminator.op)
                terminator.target = fall_through
                inverted = True
            elif fall_through is not None:
                instructions.append(Instruction(Opcode.JUMP,
                                                target=fall_through))
                old_addresses.append(None)
            _set_likely(terminator, profile, block.end - 1, inverted)
        elif terminator.op is Opcode.JUMP:
            if terminator.target == following:
                instructions.pop()
                old_addresses.pop()
        elif terminator.op not in (Opcode.RET, Opcode.JIND, Opcode.HALT):
            # Plain fall-through block.
            if block.fall_through is not None and block.fall_through != following:
                instructions.append(Instruction(Opcode.JUMP,
                                                target=block.fall_through))
                old_addresses.append(None)

        rewritten[leader] = (instructions, old_addresses)

    # Pass 2: place blocks, assigning new addresses.
    new_program = Program(program.name)
    new_program.globals_size = program.globals_size
    new_program.data_init = dict(program.data_init)
    leader_map = {}
    old_address_of = []
    trace_spans = []
    position = 0
    for trace in ordered_traces:
        span_start = len(new_program.instructions)
        for leader in trace.blocks:
            instructions, old_addresses = rewritten[leader]
            leader_map[leader] = len(new_program.instructions)
            new_program.instructions.extend(instructions)
            old_address_of.extend(old_addresses)
        trace_spans.append((span_start, len(new_program.instructions)))
        position += 1

    # Carry the source-line table across the reordering so laid-out
    # addresses (the sites of the evaluation trace) still map to Minic
    # source lines.  Inserted JUMPs have no old address and no line.
    if program.lines:
        new_program.lines = {
            new_address: program.lines[old_address]
            for new_address, old_address in enumerate(old_address_of)
            if old_address is not None and old_address in program.lines
        }

    # Pass 3: remap branch targets, jump tables, and function labels.
    for instr in new_program.instructions:
        if instr.is_branch and isinstance(instr.target, int):
            instr.target = leader_map[instr.target]
    for table in program.jump_tables:
        duplicate = table.copy()
        duplicate.entries = [leader_map[entry] for entry in duplicate.entries]
        new_program.jump_tables.append(duplicate)
    for name, label in program.functions.items():
        new_address = leader_map[program.labels[label]]
        new_program.labels[label] = new_address
        new_program.functions[name] = label

    new_program.resolved = True
    new_program.validate()
    if verify:
        assert_valid(new_program, context="trace layout")
    return LayoutResult(new_program, leader_map, old_address_of,
                        ordered_traces, trace_spans)


def _rotate_cyclic_trace(trace, cfg):
    """Rotate a cyclic trace so a conditional branch closes the loop.

    Trace growth often returns the loop header first (it is the
    heaviest block), which would close the loop with an inserted JUMP
    and leave no likely-taken conditional for forward slots.  When the
    trace is a cycle (its last block has an edge back to its first) and
    some in-trace chain edge is the *taken* edge of a conditional
    branch, rotating the trace to start just past that edge turns it
    into the trace-closing branch — the natural bottom-tested loop
    shape with a likely-taken backward conditional, exactly the code
    the paper's Forward Semantic expects.
    """
    blocks = trace.blocks
    if len(blocks) < 2:
        return
    last = cfg.block_at(blocks[-1])
    if blocks[0] not in last.successors():
        return  # not a cycle: rotation would break the chain
    for pivot in range(1, len(blocks)):
        previous = cfg.block_at(blocks[pivot - 1])
        is_conditional = (previous.taken_target is not None
                          and previous.fall_through is not None)
        if is_conditional and previous.taken_target == blocks[pivot]:
            trace.blocks = blocks[pivot:] + blocks[:pivot]
            return


def _set_likely(terminator, profile, old_site, inverted):
    """Assign the likely-taken bit from the profiled taken fraction."""
    fraction = profile.taken_fraction(old_site)
    if fraction is None:
        terminator.likely = False  # never profiled: predict not-taken
        return
    if inverted:
        fraction = 1.0 - fraction
    terminator.likely = fraction > 0.5


def build_fs_program(program, profile, min_probability=0.0, verify=True):
    """Convenience pipeline: CFG -> trace selection -> layout.

    Returns the :class:`LayoutResult` for ``program`` under
    ``profile``.
    """
    cfg = ControlFlowGraph.from_program(program)
    traces = select_traces(cfg, profile, min_probability=min_probability)
    return lay_out_traces(program, cfg, profile, traces, verify=verify)
