"""Superblock formation by tail duplication — the authors' next step.

After this paper, the IMPACT group developed the *superblock* (Hwu et
al., "The superblock: an effective technique for VLIW and superscalar
compilation"): a trace with no side entrances, obtained by duplicating
the trace tail for every branch that enters the trace mid-stream.

The interesting effect for this reproduction: duplication gives each
copy its own branch *sites*, so a static likely bit can specialise per
calling context — a compile-time analogue of history-based prediction.

The pass runs on a laid-out program (traces are contiguous spans, from
:class:`~repro.traceopt.layout.LayoutResult`):

1. find side entrances: branch targets inside a span that are not the
   span's start and have at least one predecessor branch outside it;
2. append a duplicate of the span suffix ``[entry, span_end)`` at the
   program end (plus a JUMP to the span's fall-through continuation if
   the suffix ends by falling through);
3. retarget every outside branch (and jump-table entry) that pointed
   at the entry to the duplicate.

Likely bits on duplicated branches are inherited and can be
re-specialised with :func:`reassign_likely_bits` after re-profiling.
"""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

_FALLS_THROUGH_END = frozenset({
    Opcode.JUMP, Opcode.RET, Opcode.JIND, Opcode.HALT,
})


class SuperblockReport:
    """What tail duplication did."""

    __slots__ = ("side_entrances", "duplicated_instructions",
                 "original_size", "final_size")

    def __init__(self):
        self.side_entrances = 0
        self.duplicated_instructions = 0
        self.original_size = 0
        self.final_size = 0

    @property
    def growth_fraction(self):
        if self.original_size == 0:
            return 0.0
        return (self.final_size - self.original_size) / self.original_size

    def __repr__(self):
        return ("SuperblockReport(%d side entrances, +%d instructions, "
                "+%.1f%%)" % (self.side_entrances,
                              self.duplicated_instructions,
                              100 * self.growth_fraction))


def _side_entrances(program, spans, max_tail=None):
    """[(entry_address, span)] for every mid-span branch target with an
    out-of-span predecessor, optionally bounded by tail length."""
    in_span = {}
    for span in spans:
        for address in range(span[0], span[1]):
            in_span[address] = span

    targets = {}
    for address, instr in program.branch_addresses():
        if not isinstance(instr.target, int):
            continue
        targets.setdefault(instr.target, []).append(address)
    for table in program.jump_tables:
        for entry in table.entries:
            targets.setdefault(entry, []).append(None)  # dynamic source

    entrances = []
    for target, sources in targets.items():
        span = in_span.get(target)
        if span is None or target == span[0]:
            continue
        outside = [source for source in sources
                   if source is None or not span[0] <= source < span[1]]
        if not outside:
            continue
        if max_tail is not None and span[1] - target > max_tail:
            continue
        entrances.append((target, span))
    entrances.sort()
    return entrances


def form_superblocks(program, spans, max_tail=32, max_growth=1.5):
    """Tail-duplicate the side entrances of the given trace spans.

    Args:
        program: laid-out program (resolved; likely bits set).
        spans: [(start, end)] contiguous trace spans in the program —
            :attr:`LayoutResult.trace_spans`.
        max_tail: skip entrances whose suffix exceeds this many
            instructions (duplication cost cap per entrance).
        max_growth: stop duplicating when the program has grown past
            this factor.

    Returns (new_program, :class:`SuperblockReport`).
    """
    report = SuperblockReport()
    report.original_size = len(program.instructions)
    if any(instr.n_slots for instr in program.instructions):
        raise ValueError(
            "form superblocks before forward-slot filling, not after")

    new_program = program.copy()
    instructions = new_program.instructions
    growth_limit = int(report.original_size * max_growth)

    entrances = _side_entrances(new_program, spans, max_tail=max_tail)
    redirect = {}   # entry address -> duplicate start

    for entry, span in entrances:
        suffix_length = span[1] - entry
        if len(instructions) + suffix_length + 1 > growth_limit:
            break
        duplicate_start = len(instructions)
        for offset in range(suffix_length):
            source = instructions[entry + offset]
            duplicate = source.copy()
            if (duplicate.is_branch and isinstance(duplicate.target, int)
                    and entry <= duplicate.target < span[1]):
                # Forward reference within the duplicated suffix.
                duplicate.target = (duplicate_start
                                    + (duplicate.target - entry))
                if duplicate.orig_target is not None and \
                        entry <= duplicate.orig_target < span[1]:
                    duplicate.orig_target = (duplicate_start
                                             + (duplicate.orig_target - entry))
            instructions.append(duplicate)
        last = instructions[-1]
        if last.op not in _FALLS_THROUGH_END:
            # The suffix can fall through past the span end (plain code
            # or the not-taken side of a conditional): continue exactly
            # where the original would.
            instructions.append(Instruction(Opcode.JUMP, target=span[1]))
        report.side_entrances += 1
        report.duplicated_instructions += len(instructions) - duplicate_start
        redirect[entry] = duplicate_start

    # Retarget outside branches into the duplicates.  In-span branches
    # (including the duplicated suffixes' own back references) keep the
    # original target.
    span_of = {}
    for span in spans:
        for address in range(span[0], span[1]):
            span_of[address] = span
    for address, instr in enumerate(instructions):
        if not (instr.is_branch and isinstance(instr.target, int)):
            continue
        duplicate_start = redirect.get(instr.target)
        if duplicate_start is None:
            continue
        span = span_of[instr.target]
        if span[0] <= address < span[1]:
            continue  # in-span flow keeps the original tail
        instr.target = duplicate_start
        if instr.orig_target is not None:
            instr.orig_target = duplicate_start
    for table in new_program.jump_tables:
        table.entries = [redirect.get(entry, entry)
                         for entry in table.entries]

    report.final_size = len(instructions)
    new_program.validate()
    return new_program, report


def reassign_likely_bits(program, profile):
    """Set every conditional branch's likely bit from a fresh profile.

    Used after superblock formation: duplicated branch sites get their
    own, context-specialised predictions.  Branches the profile never
    saw keep their inherited bit.
    """
    new_program = program.copy()
    changed = 0
    for address, instr in enumerate(new_program.instructions):
        if not instr.is_conditional:
            continue
        fraction = profile.taken_fraction(address)
        if fraction is None:
            continue
        bit = fraction > 0.5
        if bit != instr.likely:
            changed += 1
        instr.likely = bit
    return new_program, changed
