"""Human-readable descriptions of FS compiler artifacts.

Turns layout results and slot-filled programs into annotated text for
examples, debugging, and documentation — the compiler's ``-S`` view.
"""

from repro.isa.assembler import _format_instruction


def describe_traces(layout, profile=None, limit=None):
    """One line per trace: weight, block leaders, placed span."""
    lines = []
    pairs = list(zip(layout.traces, layout.trace_spans))
    if limit is not None:
        pairs = pairs[:limit]
    for trace, (start, end) in pairs:
        lines.append("weight %-10d blocks %-30s -> [%d, %d)"
                     % (trace.weight, trace.blocks, start, end))
    if limit is not None and limit < len(layout.traces):
        lines.append("... %d more traces" % (len(layout.traces) - limit))
    return "\n".join(lines)


def annotate_program(program, start=0, end=None):
    """Disassembly with likely bits and forward-slot regions marked.

    Slot instructions are indented under their owning branch; likely
    branches carry ``; likely`` and slot counts.
    """
    if end is None:
        end = len(program.instructions)
    target_labels = {}
    for _, instr in program.branch_addresses():
        if isinstance(instr.target, int):
            target_labels[instr.target] = "L%d" % instr.target

    lines = []
    slot_remaining = 0
    for address in range(start, end):
        instr = program.instructions[address]
        text = _format_instruction(instr, _LabelView(), program)
        marks = []
        if instr.is_conditional and instr.likely:
            marks.append("likely")
        if instr.n_slots:
            marks.append("%d slots" % instr.n_slots)
        prefix = "%5d: " % address
        indent = "        " if slot_remaining else "    "
        suffix = ("   ; " + ", ".join(marks)) if marks else ""
        label = target_labels.get(address)
        if label:
            lines.append("%s:" % label)
        lines.append(prefix + indent + text + suffix)
        if slot_remaining:
            slot_remaining -= 1
        if instr.n_slots:
            slot_remaining = instr.n_slots
    return "\n".join(lines)


class _LabelView(dict):
    """Address -> synthetic label, generated on demand."""

    def __missing__(self, address):
        return "L%d" % address


def describe_expansion(report):
    """One-paragraph summary of an ExpansionReport."""
    return ("%d likely-taken branches received %d slots each: "
            "%d instruction copies + %d no-ops, growing the code from "
            "%d to %d instructions (+%.2f%%)."
            % (report.likely_branches, report.n_slots,
               report.copied_instructions, report.padding_nops,
               report.original_size, report.expanded_size,
               100.0 * report.expansion_fraction))
