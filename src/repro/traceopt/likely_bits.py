"""Likely-bit assignment policies.

The profile-driven policy lives in the layout pass (the paper's
scheme).  This module adds the *static* policies the paper's related
work surveys, so the value of profiling can be isolated:

* ``heuristic_likely_bits`` — backward-taken/forward-not-taken
  (J. E. Smith's rule): loop back edges predicted taken, forward
  branches not-taken.  No profiling run needed.
* ``uniform_likely_bits`` — predict every conditional branch one way
  (the all-taken / all-not-taken baselines).

Each returns a modified copy of the program with the likely bits
rewritten, ready for :class:`~repro.predictors.ForwardSemanticPredictor`
or forward-slot filling.
"""


def heuristic_likely_bits(program):
    """Apply the BTFNT rule to every conditional branch.

    Returns (new_program, number of likely-taken bits set).
    """
    new_program = program.copy()
    set_bits = 0
    for address, instr in enumerate(new_program.instructions):
        if not instr.is_conditional:
            continue
        target = instr.orig_target if instr.orig_target is not None \
            else instr.target
        instr.likely = isinstance(target, int) and target <= address
        if instr.likely:
            set_bits += 1
    return new_program, set_bits


def uniform_likely_bits(program, taken):
    """Predict every conditional branch ``taken`` (True) or not."""
    new_program = program.copy()
    count = 0
    for instr in new_program.instructions:
        if instr.is_conditional:
            instr.likely = bool(taken)
            count += 1
    return new_program, count
