"""Profile-driven code transformation: the Forward Semantic compiler.

Three passes, matching Section 2.2 of the paper:

1. **Trace selection** (:mod:`repro.traceopt.trace_selection`) — the
   Hwu-Chang algorithm groups basic blocks that virtually always execute
   together into traces, seeded at the heaviest unvisited block and
   grown along mutually-most-likely edges.
2. **Trace layout** (:mod:`repro.traceopt.layout`) — traces are placed
   in weight order; branch conditions are inverted so each block's
   likely successor is its fall-through where possible, leaving
   likely-taken conditional branches at trace ends; every conditional
   branch receives its "likely-taken" bit from the profile.
3. **Forward-slot filling** (:mod:`repro.traceopt.forward_slots`) — the
   paper's algorithm copies the first k + l instructions of each
   likely-taken branch's target path into reserved slots after the
   branch and advances the branch target past the copied prefix.
"""

from repro.traceopt.trace_selection import Trace, select_traces
from repro.traceopt.layout import LayoutResult, lay_out_traces, build_fs_program
from repro.traceopt.forward_slots import ExpansionReport, fill_forward_slots
from repro.traceopt.likely_bits import heuristic_likely_bits, uniform_likely_bits
from repro.traceopt.superblock import (
    SuperblockReport,
    form_superblocks,
    reassign_likely_bits,
)
from repro.traceopt.describe import (
    annotate_program,
    describe_expansion,
    describe_traces,
)

__all__ = [
    "annotate_program",
    "describe_expansion",
    "describe_traces",
    "SuperblockReport",
    "form_superblocks",
    "reassign_likely_bits",
    "Trace",
    "select_traces",
    "LayoutResult",
    "lay_out_traces",
    "build_fs_program",
    "ExpansionReport",
    "fill_forward_slots",
    "heuristic_likely_bits",
    "uniform_likely_bits",
]
