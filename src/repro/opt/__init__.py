"""Machine-independent IR optimization passes.

The paper's compiler is an *optimizing*, profiling compiler; this
package supplies the classic clean-up passes such a compiler runs
before profile-driven layout:

* :mod:`~repro.opt.jump_threading` — retarget branches that point at
  unconditional jumps;
* :mod:`~repro.opt.dead_code` — remove code unreachable from the entry
  point (with full address remapping) and, via liveness, pure register
  writes whose destination is never read;
* :mod:`~repro.opt.peephole` — delete self-moves and jumps to the next
  instruction;
* :mod:`~repro.opt.block_constants` — basic-block-local constant
  propagation and folding over the register IR.

``optimize(program)`` runs them to a fixed point.  Every pass
preserves observable behaviour; `tests/test_opt.py` proves it on the
full benchmark suite.
"""

from repro.opt.pipeline import OptimizationReport, optimize
from repro.opt.jump_threading import thread_jumps
from repro.opt.dead_code import remove_dead_code, remove_dead_writes
from repro.opt.peephole import peephole
from repro.opt.block_constants import propagate_block_constants
from repro.opt.inline import InlineReport, inline_functions

__all__ = [
    "OptimizationReport",
    "optimize",
    "thread_jumps",
    "remove_dead_code",
    "remove_dead_writes",
    "peephole",
    "propagate_block_constants",
    "InlineReport",
    "inline_functions",
]
