"""Function inlining.

The IMPACT compiler the paper used was known for aggressive inlining;
this pass brings the same capability to the Minic toolchain.  A call
site is inlined when the callee is a small leaf:

* body no longer than ``max_callee_size`` instructions,
* contains no CALL (leaf, and therefore not recursive),
* contains no TABLE/JIND (jump tables are program-global and would
  need duplication).

At an eligible site the contiguous ``ARG ... ARG CALL`` group becomes
``MOV``s into a fresh register range followed by a copy of the callee
body with registers and internal branch targets rebased; every RET in
the copy becomes a JUMP to the continuation.  ``RETV``/``RESULT``
semantics carry over unchanged (the VM's return-value register works
identically without the call), so a trailing ``RESULT`` keeps working.

Callees left without callers become unreachable and are swept by the
dead-code pass; trailing jumps-to-next introduced by inlined epilogue
RETs are swept by the peephole pass.
"""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


class InlineReport:
    __slots__ = ("sites_inlined", "instructions_added", "eligible_functions")

    def __init__(self):
        self.sites_inlined = 0
        self.instructions_added = 0
        self.eligible_functions = ()

    def __repr__(self):
        return "InlineReport(%d sites, +%d instructions, eligible=%r)" % (
            self.sites_inlined, self.instructions_added,
            self.eligible_functions)


def _function_ranges(program):
    """name -> (start, end) address range, assuming contiguous bodies
    in emission order (true for Minic compiler output)."""
    entries = sorted(
        (program.labels[label], name)
        for name, label in program.functions.items()
    )
    ranges = {}
    for position, (start, name) in enumerate(entries):
        end = (entries[position + 1][0] if position + 1 < len(entries)
               else len(program.instructions))
        ranges[name] = (start, end)
    return ranges


_FORBIDDEN_IN_CALLEE = frozenset({Opcode.CALL, Opcode.TABLE, Opcode.JIND})


def _eligible_functions(program, ranges, max_callee_size):
    eligible = {}
    for name, (start, end) in ranges.items():
        if name in ("main", "__start"):
            continue
        body = program.instructions[start:end]
        if len(body) > max_callee_size:
            continue
        if any(instr.op in _FORBIDDEN_IN_CALLEE for instr in body):
            continue
        if any(instr.is_branch and isinstance(instr.target, int)
               and not start <= instr.target < end
               for instr in body if instr.op is not Opcode.RET):
            continue  # body branches outside itself (shared epilogue?)
        eligible[start] = (name, start, end, _required_arguments(body))
    return eligible


def _required_arguments(body):
    """Registers the callee reads before writing (linear
    over-approximation): the arguments it expects in its frame."""
    written = set()
    required = set()
    for instr in body:
        for register in (instr.a, instr.b):
            if register is not None and register not in written:
                required.add(register)
        if instr.dest is not None:
            written.add(instr.dest)
    return required


def _max_register(program):
    highest = 0
    for instr in program.instructions:
        for register in (instr.dest, instr.a, instr.b):
            if register is not None and register > highest:
                highest = register
    return highest


def inline_functions(program, max_callee_size=24, max_growth=2.0):
    """Inline small leaf functions; returns (new_program, InlineReport).

    ``max_growth`` caps the output size relative to the input; once
    reached, remaining call sites are left alone.
    """
    ranges = _function_ranges(program)
    eligible = _eligible_functions(program, ranges, max_callee_size)
    report = InlineReport()
    report.eligible_functions = tuple(sorted(
        entry[0] for entry in eligible.values()))
    if not eligible:
        return program.copy(), report

    instructions = program.instructions
    size = len(instructions)
    growth_limit = int(size * max_growth)
    register_base = _max_register(program) + 1

    out = []
    finalised = set()   # out-indices whose targets are already new
    address_map = {}

    index = 0
    while index < size:
        instr = instructions[index]

        # Detect an ARG* CALL group eligible for inlining.
        group_end = index
        while (group_end < size
               and instructions[group_end].op is Opcode.ARG):
            group_end += 1
        is_group = (group_end < size
                    and instructions[group_end].op is Opcode.CALL
                    and instructions[group_end].target in eligible)
        if is_group:
            _, callee_start, callee_end, required = eligible[
                instructions[group_end].target]
            body_length = callee_end - callee_start
            supplied = {instructions[address].imm
                        for address in range(index, group_end)}
            # The contiguous ARG group must supply everything the
            # callee reads (hand-written code may stage arguments
            # elsewhere: leave such sites alone), and the result must
            # stay within the growth budget.
            if not required <= supplied:
                is_group = False
            elif (len(out) + (size - group_end) + body_length
                  + len(supplied)) > growth_limit:
                is_group = False

        if not is_group:
            address_map[index] = len(out)
            out.append(instr.copy())
            index += 1
            continue

        # The whole group maps to the first emitted instruction.
        for address in range(index, group_end + 1):
            address_map[address] = len(out)

        # ARG k, rA  ->  MOV (base + k), rA
        for address in range(index, group_end):
            argument = instructions[address]
            out.append(Instruction(Opcode.MOV,
                                   dest=register_base + argument.imm,
                                   a=argument.a))
            finalised.add(len(out) - 1)

        body_start_out = len(out)
        continuation = body_start_out + body_length
        for offset in range(body_length):
            source = instructions[callee_start + offset]
            duplicate = source.copy()
            _rebase_registers(duplicate, register_base)
            if duplicate.op is Opcode.RET:
                duplicate = Instruction(Opcode.JUMP, target=continuation)
            elif duplicate.is_branch and isinstance(duplicate.target, int):
                duplicate.target = (body_start_out
                                    + (duplicate.target - callee_start))
            out.append(duplicate)
            finalised.add(len(out) - 1)

        report.sites_inlined += 1
        index = group_end + 1

    address_map[size] = len(out)

    new_program = Program(program.name)
    new_program.globals_size = program.globals_size
    new_program.data_init = dict(program.data_init)
    new_program.instructions = out
    for position, instr in enumerate(out):
        if position in finalised:
            continue
        if instr.is_branch and isinstance(instr.target, int):
            instr.target = address_map[instr.target]
        if instr.orig_target is not None:
            instr.orig_target = address_map[instr.orig_target]
    for table in program.jump_tables:
        duplicate = table.copy()
        duplicate.entries = [address_map[entry] for entry in duplicate.entries]
        new_program.jump_tables.append(duplicate)
    for name, label in program.functions.items():
        new_program.labels[label] = address_map[program.labels[label]]
        new_program.functions[name] = label

    new_program.resolved = True
    new_program.validate()
    report.instructions_added = len(out) - size
    return new_program, report


def _rebase_registers(instr, base):
    if instr.dest is not None:
        instr.dest += base
    if instr.a is not None:
        instr.a += base
    if instr.b is not None:
        instr.b += base
