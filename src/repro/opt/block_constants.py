"""Basic-block-local constant propagation and folding.

Within each basic block, track which registers hold compile-time
constants (from ``LI``) and:

* fold ALU operations whose operands are all known into an ``LI``;
* rewrite ``MOV rD, rA`` with known ``rA`` into ``LI rD, value``.

The pass never changes program size or control flow, so it is safe at
any point in the pipeline; it invalidates its knowledge at every block
boundary and after CALL/RESULT/GETC (values the block cannot know).

Folding uses the same C-style semantics as the VM (truncating
division, 64-bit-masked shift counts); division by a known zero is
left for the VM to fault on.
"""

from repro.cfg import compute_leaders
from repro.isa.opcodes import Opcode
from repro.vm.machine import _c_div, _c_rem

_FOLDABLE_BINARY = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b & 63),
    Opcode.SHR: lambda a, b: a >> (b & 63),
}

_FOLDABLE_UNARY = {
    Opcode.NEG: lambda a: -a,
    Opcode.NOT: lambda a: ~a,
}


def propagate_block_constants(program):
    """Return (new_program, instructions folded)."""
    new_program = program.copy()
    instructions = new_program.instructions
    leaders = set(compute_leaders(new_program))

    folded = 0
    known = {}
    for address, instr in enumerate(instructions):
        if address in leaders:
            known = {}
        op = instr.op

        if op is Opcode.LI:
            known[instr.dest] = instr.imm
            continue

        if op is Opcode.MOV and instr.a in known:
            value = known[instr.a]
            instr.op = Opcode.LI
            instr.imm = value
            instr.a = None
            known[instr.dest] = value
            folded += 1
            continue

        if op in _FOLDABLE_BINARY and instr.a in known and instr.b in known:
            value = _FOLDABLE_BINARY[op](known[instr.a], known[instr.b])
            _to_li(instr, value)
            known[instr.dest] = value
            folded += 1
            continue

        if op in (Opcode.DIV, Opcode.REM) and instr.a in known \
                and instr.b in known and known[instr.b] != 0:
            operation = _c_div if op is Opcode.DIV else _c_rem
            value = operation(known[instr.a], known[instr.b])
            _to_li(instr, value)
            known[instr.dest] = value
            folded += 1
            continue

        if op in _FOLDABLE_UNARY and instr.a in known:
            value = _FOLDABLE_UNARY[op](known[instr.a])
            _to_li(instr, value)
            known[instr.dest] = value
            folded += 1
            continue

        # Anything else that writes a register makes it unknown.
        if instr.dest is not None:
            known.pop(instr.dest, None)
        # A call clobbers nothing in the caller's frame (frames are
        # private), but RESULT reads the callee's value — handled by
        # the dest rule above.  Branches end blocks; the leader reset
        # covers them.

    new_program.validate()
    return new_program, folded


def _to_li(instr, value):
    instr.op = Opcode.LI
    instr.imm = value
    instr.a = None
    instr.b = None
