"""Peephole clean-ups that shrink the program.

Two patterns, applied together through one rebuild:

* ``mov rX, rX`` — a self-move does nothing;
* ``jump L`` where ``L`` is the next instruction — fall through
  instead.

Instructions that are branch targets must not be deleted blindly:
``rebuild`` forwards targets to the next kept instruction, which is
exactly correct for both patterns (the deleted instruction's only
effect was to reach the next one).
"""

from repro.isa.opcodes import Opcode
from repro.opt.rewrite import rebuild


def peephole(program):
    """Return (new_program, instructions removed)."""
    instructions = program.instructions
    keep = [True] * len(instructions)
    # Forward-slot regions must keep their exact length: protect them.
    protected = [False] * len(instructions)
    for address, instr in enumerate(instructions):
        for offset in range(1, instr.n_slots + 1):
            if address + offset < len(instructions):
                protected[address + offset] = True
    removed = 0
    for address, instr in enumerate(instructions):
        if protected[address]:
            continue
        if (instr.op is Opcode.MOV and instr.dest == instr.a):
            keep[address] = False
            removed += 1
        elif (instr.op is Opcode.JUMP and instr.n_slots == 0
              and instr.target == address + 1):
            keep[address] = False
            removed += 1
    if removed == 0:
        return program.copy(), 0
    return rebuild(program, keep), removed
