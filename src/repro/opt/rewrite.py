"""Shared utilities for passes that delete or reorder instructions.

Deleting an instruction shifts every later address, so passes that
shrink a program express their result as a *keep mask* and this module
rebuilds the program, remapping branch targets, jump tables, and
function labels through the old-to-new address map.
"""

from repro.isa.program import Program


def rebuild(program, keep):
    """Rebuild ``program`` keeping only the instructions where
    ``keep[address]`` is true.

    Branch targets pointing at a deleted instruction are forwarded to
    the next kept instruction (callers must guarantee that is
    semantically valid — e.g. the deleted instruction was a fall-
    through jump or unreachable).

    Returns the new resolved program.
    """
    if len(keep) != len(program.instructions):
        raise ValueError("keep mask length mismatch")

    # address_map[a] = new address of the first kept instruction at or
    # after a.
    address_map = [0] * (len(program.instructions) + 1)
    new_count = 0
    for address, kept in enumerate(keep):
        address_map[address] = new_count
        if kept:
            new_count += 1
    address_map[len(program.instructions)] = new_count

    new_program = Program(program.name)
    new_program.globals_size = program.globals_size
    new_program.data_init = dict(program.data_init)

    for address, instr in enumerate(program.instructions):
        if not keep[address]:
            continue
        duplicate = instr.copy()
        if duplicate.is_branch and isinstance(duplicate.target, int):
            duplicate.target = address_map[duplicate.target]
        if duplicate.orig_target is not None:
            duplicate.orig_target = address_map[duplicate.orig_target]
        new_program.instructions.append(duplicate)

    for table in program.jump_tables:
        duplicate = table.copy()
        duplicate.entries = [address_map[entry] for entry in duplicate.entries]
        new_program.jump_tables.append(duplicate)

    for name, label in program.functions.items():
        new_program.labels[label] = address_map[program.labels[label]]
        new_program.functions[name] = label

    new_program.resolved = True
    new_program.validate()
    return new_program
