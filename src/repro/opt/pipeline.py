"""Optimization driver: run all passes to a fixed point.

With ``verify=True`` (the default) the IR verifier
(:mod:`repro.analysis.verify`) checks the input program and the output
of *every* pass on every iteration; a pass that breaks a structural
invariant raises :class:`~repro.analysis.verify.VerificationError`
naming the offending pass, instead of surfacing later as a wrong
answer in an end-to-end run.
"""

from repro.analysis.verify import assert_valid
from repro.opt.block_constants import propagate_block_constants
from repro.opt.dead_code import remove_dead_code, remove_dead_writes
from repro.opt.inline import inline_functions
from repro.opt.jump_threading import thread_jumps
from repro.opt.peephole import peephole


class OptimizationReport:
    """What the optimizer did."""

    __slots__ = ("original_size", "final_size", "jumps_threaded",
                 "dead_removed", "dead_writes_removed", "peephole_removed",
                 "constants_folded", "sites_inlined", "iterations")

    def __init__(self):
        self.original_size = 0
        self.final_size = 0
        self.jumps_threaded = 0
        self.dead_removed = 0
        self.dead_writes_removed = 0
        self.peephole_removed = 0
        self.constants_folded = 0
        self.sites_inlined = 0
        self.iterations = 0

    @property
    def shrink_fraction(self):
        if self.original_size == 0:
            return 0.0
        return (self.original_size - self.final_size) / self.original_size

    def __repr__(self):
        return ("OptimizationReport(%d -> %d instructions, "
                "%d threaded, %d dead, %d dead writes, %d peephole, "
                "%d folded, %d inlined, %d iterations)"
                % (self.original_size, self.final_size,
                   self.jumps_threaded, self.dead_removed,
                   self.dead_writes_removed, self.peephole_removed,
                   self.constants_folded, self.sites_inlined,
                   self.iterations))


def optimize(program, max_iterations=8, inline=False,
             max_callee_size=24, verify=True):
    """Run jump threading, dead-code removal, peephole, local constant
    folding, and liveness-based dead-write elimination to a fixed
    point; optionally inline small leaf functions first (the IMPACT
    style — changes the dynamic branch mix by removing call/return
    pairs, so it is opt-in).

    Args:
        verify: run the IR verifier on the input and after every pass,
            raising :class:`~repro.analysis.verify.VerificationError`
            (naming the pass) on any structural invariant violation.

    Returns (optimized_program, :class:`OptimizationReport`).  The
    input program is not modified.
    """
    report = OptimizationReport()
    report.original_size = len(program.instructions)

    current = program
    if verify:
        assert_valid(current, context="optimizer input")
    if inline:
        current, inline_report = inline_functions(
            current, max_callee_size=max_callee_size)
        report.sites_inlined = inline_report.sites_inlined
        if verify:
            assert_valid(current, context="inline")

    for _ in range(max_iterations):
        report.iterations += 1
        changed = 0

        current, threaded = thread_jumps(current)
        report.jumps_threaded += threaded
        changed += threaded
        if verify and threaded:
            assert_valid(current, context="jump threading")

        current, dead = remove_dead_code(current)
        report.dead_removed += dead
        changed += dead
        if verify and dead:
            assert_valid(current, context="dead-code removal")

        current, removed = peephole(current)
        report.peephole_removed += removed
        changed += removed
        if verify and removed:
            assert_valid(current, context="peephole")

        current, folded = propagate_block_constants(current)
        report.constants_folded += folded
        changed += folded
        if verify and folded:
            assert_valid(current, context="constant propagation")

        current, dead_writes = remove_dead_writes(current)
        report.dead_writes_removed += dead_writes
        changed += dead_writes
        if verify and dead_writes:
            assert_valid(current, context="dead-write elimination")

        if changed == 0:
            break

    report.final_size = len(current.instructions)
    return current, report
