"""Jump threading: branches that target a JUMP follow it through.

``beq ..., L1`` where ``L1: jump L2`` becomes ``beq ..., L2``.  Chains
are followed to their end; cycles of jumps (an empty infinite loop)
are left alone.  The pass mutates a copy and never changes program
size, so no address remapping is needed.
"""

from repro.isa.opcodes import Opcode


def _final_target(instructions, target):
    """Follow a chain of JUMPs from ``target``; returns the last
    address before a non-JUMP (or the start on a cycle)."""
    seen = set()
    current = target
    while (current not in seen
           and instructions[current].op is Opcode.JUMP):
        seen.add(current)
        current = instructions[current].target
    if current in seen:
        return target  # jump cycle: leave it
    return current


def thread_jumps(program):
    """Return (new_program, number of branches retargeted)."""
    new_program = program.copy()
    instructions = new_program.instructions
    changed = 0
    for instr in instructions:
        if not (instr.is_branch and isinstance(instr.target, int)):
            continue
        final = _final_target(instructions, instr.target)
        if final != instr.target:
            instr.target = final
            changed += 1
    new_program.validate()
    return new_program, changed
