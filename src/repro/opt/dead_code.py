"""Dead-code elimination: unreachable blocks and dead register writes.

Two independent reductions share this module:

* :func:`remove_dead_code` marks every instruction reachable from the
  program entry by following fall-through, branch targets, call
  targets, jump-table entries, and call-return continuations, then
  drops the rest.  Function entries not reachable from the entry
  point are dropped along with their bodies (their ``functions``
  entries are removed too).
* :func:`remove_dead_writes` deletes pure register writes whose
  destination the liveness analysis (:mod:`repro.analysis.liveness`)
  proves is never read afterwards — typically ``LI`` sources left
  behind by constant folding.  Writes with side effects or possible
  faults (``LOAD``, ``DIV``, ``GETC``, ...) are never touched, nor is
  anything inside a forward-slot region.
"""

from repro.analysis.liveness import dead_register_writes
from repro.isa.opcodes import Opcode
from repro.opt.rewrite import rebuild

_NO_FALL_THROUGH = frozenset({Opcode.JUMP, Opcode.RET, Opcode.JIND,
                              Opcode.HALT})


def _reachable(program):
    instructions = program.instructions
    size = len(instructions)
    reachable = [False] * size
    worklist = [program.entry]
    table_entries = [entry for table in program.jump_tables
                     for entry in table.entries]

    while worklist:
        address = worklist.pop()
        while 0 <= address < size and not reachable[address]:
            reachable[address] = True
            instr = instructions[address]
            op = instr.op
            if instr.is_branch and isinstance(instr.target, int):
                if not reachable[instr.target]:
                    worklist.append(instr.target)
            if op is Opcode.JIND:
                # Conservatively: any jump-table entry is a successor.
                for entry in table_entries:
                    if not reachable[entry]:
                        worklist.append(entry)
            if op in _NO_FALL_THROUGH:
                break
            # Forward slots belong to their branch: keep them (their
            # own control flow is covered by the branch targets).
            for offset in range(1, instr.n_slots + 1):
                if address + offset < size:
                    reachable[address + offset] = True
            # CALL and conditional branches fall through, past any
            # slots the instruction owns.
            address += 1 + instr.n_slots
    return reachable


def remove_dead_code(program):
    """Return (new_program, instructions removed)."""
    reachable = _reachable(program)
    removed = reachable.count(False)
    if removed == 0:
        return program.copy(), 0

    new_program = rebuild(program, reachable)
    # Drop function symbols whose entry died.
    dead_functions = [
        name for name, label in program.functions.items()
        if not reachable[program.labels[label]]
    ]
    for name in dead_functions:
        label = new_program.functions.pop(name)
        new_program.labels.pop(label, None)
    new_program.validate()
    return new_program, removed


def remove_dead_writes(program):
    """Delete pure writes to dead registers.

    Returns (new_program, instructions removed).  ``rebuild`` forwards
    branch targets pointing at a deleted write to the next kept
    instruction, which is exactly the deleted write's behaviour (its
    only effect was reaching the next instruction once its destination
    is dead).
    """
    dead = dead_register_writes(program)
    if not dead:
        return program.copy(), 0
    keep = [True] * len(program.instructions)
    for address in dead:
        keep[address] = False
    return rebuild(program, keep), len(dead)
