"""The functional simulator.

The interpreter pre-decodes the program into flat tuples with integer
opcodes and runs a single dispatch loop; this keeps the cost per
simulated instruction low enough to execute the multi-million
instruction benchmark suite in seconds.

Forward-slot ("execute") semantics follow the hardware description in
the paper: when a likely-taken branch with ``n_slots`` forward slots is
taken, the machine falls through into the slots with an alternate-PC
countdown; after the slots have executed, control transfers to the
(slot-adjusted) branch target.  Any taken control transfer inside the
slots cancels the countdown, which is exactly what an absorbed unlikely
branch does when it fires.
"""

import time

from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.telemetry.core import TELEMETRY
from repro.vm.tracing import BranchTrace


class MachineError(Exception):
    """Raised on runtime faults (bad memory access, division by zero...)."""


class ExecutionLimitExceeded(MachineError):
    """Raised when a run exceeds its dynamic instruction budget."""


# Integer opcode encoding used by the pre-decoded form.
_OP_INT = {op: index for index, op in enumerate(Opcode)}

_LI = _OP_INT[Opcode.LI]
_MOV = _OP_INT[Opcode.MOV]
_LOAD = _OP_INT[Opcode.LOAD]
_STORE = _OP_INT[Opcode.STORE]
_ADD = _OP_INT[Opcode.ADD]
_SUB = _OP_INT[Opcode.SUB]
_MUL = _OP_INT[Opcode.MUL]
_DIV = _OP_INT[Opcode.DIV]
_REM = _OP_INT[Opcode.REM]
_AND = _OP_INT[Opcode.AND]
_OR = _OP_INT[Opcode.OR]
_XOR = _OP_INT[Opcode.XOR]
_SHL = _OP_INT[Opcode.SHL]
_SHR = _OP_INT[Opcode.SHR]
_NEG = _OP_INT[Opcode.NEG]
_NOT = _OP_INT[Opcode.NOT]
_BEQ = _OP_INT[Opcode.BEQ]
_BNE = _OP_INT[Opcode.BNE]
_BLT = _OP_INT[Opcode.BLT]
_BLE = _OP_INT[Opcode.BLE]
_BGT = _OP_INT[Opcode.BGT]
_BGE = _OP_INT[Opcode.BGE]
_JUMP = _OP_INT[Opcode.JUMP]
_CALL = _OP_INT[Opcode.CALL]
_RET = _OP_INT[Opcode.RET]
_JIND = _OP_INT[Opcode.JIND]
_ARG = _OP_INT[Opcode.ARG]
_RETV = _OP_INT[Opcode.RETV]
_RESULT = _OP_INT[Opcode.RESULT]
_TABLE = _OP_INT[Opcode.TABLE]
_GETC = _OP_INT[Opcode.GETC]
_PUTC = _OP_INT[Opcode.PUTC]
_PUTI = _OP_INT[Opcode.PUTI]
_HALT = _OP_INT[Opcode.HALT]
_NOP = _OP_INT[Opcode.NOP]

_CONDITIONAL_INTS = frozenset({_BEQ, _BNE, _BLT, _BLE, _BGT, _BGE})


def _c_div(a, b):
    """C-style truncating integer division."""
    if b == 0:
        raise MachineError("division by zero")
    quotient = abs(a) // abs(b)
    return quotient if (a < 0) == (b < 0) else -quotient


def _c_rem(a, b):
    """C-style remainder: sign follows the dividend."""
    if b == 0:
        raise MachineError("remainder by zero")
    remainder = abs(a) % abs(b)
    return remainder if a >= 0 else -remainder


class MachineResult:
    """Outcome of a program run."""

    __slots__ = ("output", "instructions", "trace", "exit_value",
                 "probe_counts", "addresses")

    def __init__(self, output, instructions, trace, exit_value,
                 probe_counts=None, addresses=None):
        self.output = output
        self.instructions = instructions
        self.trace = trace
        self.exit_value = exit_value
        self.probe_counts = probe_counts
        self.addresses = addresses

    def output_text(self):
        return self.output.decode("latin-1")

    def __repr__(self):
        return "MachineResult(%d instructions, %d output bytes)" % (
            self.instructions, len(self.output))


class Machine:
    """Executes a resolved :class:`Program`.

    Args:
        program: resolved program to run.
        inputs: sequence of bytes-like input streams (``getc(i)`` reads
            stream ``i``; -1 signals end of stream).
        trace: when True, collect the dynamic branch trace.
        slot_mode: ``"direct"`` (taken likely branches jump straight to
            the original target) or ``"execute"`` (fall through into
            forward slots with an alternate-PC countdown).
        max_instructions: dynamic instruction budget; exceeding it
            raises :class:`ExecutionLimitExceeded`.
        probe_addresses: optional iterable of instruction addresses
            (basic-block leaders); the machine counts how many times each
            is reached, reproducing the paper's profiling probes.
        address_trace: when True, record the address of every executed
            instruction (the fetch stream).  Memory-hungry; used by the
            instruction-cache locality ablation on small inputs.
    """

    def __init__(self, program, inputs=(), trace=False, slot_mode="direct",
                 max_instructions=200_000_000, probe_addresses=None,
                 address_trace=False):
        if not isinstance(program, Program):
            raise TypeError("expected a Program, got %r" % type(program))
        if not program.resolved:
            raise MachineError("program must be resolved before execution")
        if slot_mode not in ("direct", "execute"):
            raise ValueError("slot_mode must be 'direct' or 'execute'")
        self.program = program
        self.inputs = [bytes(stream) for stream in inputs]
        self.trace_enabled = trace
        self.slot_mode = slot_mode
        self.max_instructions = max_instructions
        self.probe_addresses = (
            frozenset(probe_addresses) if probe_addresses is not None else None
        )
        self.address_trace_enabled = address_trace

    def run(self):
        """Execute the program until HALT; returns :class:`MachineResult`.

        Telemetry is deliberately run-level, never per-instruction: the
        dispatch loop is the hottest code in the repository, so the
        disabled path costs one attribute check per *run* and the
        enabled path times the whole execution and derives the dispatch
        rate from the result's instruction count.
        """
        if not TELEMETRY.enabled:
            return self._run()
        start = time.perf_counter()
        result = self._run()
        duration = time.perf_counter() - start
        TELEMETRY.count("vm.runs")
        TELEMETRY.count("vm.instructions", result.instructions)
        TELEMETRY.record("vm.run_seconds", duration)
        TELEMETRY.event(
            "vm.run", program=self.program.name,
            instructions=result.instructions, duration_s=duration,
            instructions_per_second=(result.instructions / duration
                                     if duration > 0 else None),
            traced=self.trace_enabled)
        return result

    def _run(self):
        program = self.program
        code = _decode(program)
        tables = [table.entries for table in program.jump_tables]
        memory = [0] * program.globals_size
        memory_size = program.globals_size
        for address, value in program.data_init.items():
            if not 0 <= address < memory_size:
                raise MachineError(
                    "data initializer outside memory: %d" % address)
            memory[address] = value
        inputs = self.inputs
        input_positions = [0] * len(inputs)
        output = bytearray()
        output_append = output.append

        trace = BranchTrace() if self.trace_enabled else None
        tracing = trace is not None
        if tracing:
            t_sites = trace.sites.append
            t_classes = trace.classes.append
            t_takens = trace.takens.append
            t_targets = trace.targets.append
            t_gaps = trace.gaps.append

        execute_slots = self.slot_mode == "execute"

        pc = program.entry
        registers = {}
        call_stack = []          # (return_pc, caller_registers)
        pending_args = []
        return_value = 0

        executed = 0
        last_branch_executed = 0  # instruction count at the previous branch
        budget = self.max_instructions

        pending_count = 0
        pending_target = -1
        exit_value = 0

        probing = self.probe_addresses is not None
        probe_counts = (
            dict.fromkeys(self.probe_addresses, 0) if probing else None
        )
        address_tracing = self.address_trace_enabled
        addresses = [] if address_tracing else None
        addresses_append = addresses.append if address_tracing else None

        while True:
            if probing and pc in probe_counts:
                probe_counts[pc] += 1
            if address_tracing:
                addresses_append(pc)
            ins = code[pc]
            op = ins[0]
            executed += 1
            if executed > budget:
                raise ExecutionLimitExceeded(
                    "exceeded %d instructions (pc=%d)" % (budget, pc))
            redirected = False

            if op == _LOAD:
                address = registers[ins[2]] + ins[4]
                if 0 <= address < memory_size:
                    registers[ins[1]] = memory[address]
                else:
                    raise MachineError(
                        "load out of range: address %d at pc %d" % (address, pc))
                pc += 1
            elif op == _STORE:
                address = registers[ins[3]] + ins[4]
                if 0 <= address < memory_size:
                    memory[address] = registers[ins[2]]
                else:
                    raise MachineError(
                        "store out of range: address %d at pc %d" % (address, pc))
                pc += 1
            elif op == _LI:
                registers[ins[1]] = ins[4]
                pc += 1
            elif op == _ADD:
                registers[ins[1]] = registers[ins[2]] + registers[ins[3]]
                pc += 1
            elif op == _SUB:
                registers[ins[1]] = registers[ins[2]] - registers[ins[3]]
                pc += 1
            elif op == _MOV:
                registers[ins[1]] = registers[ins[2]]
                pc += 1
            elif op in _CONDITIONAL_INTS:
                left = registers[ins[2]]
                right = registers[ins[3]]
                if op == _BEQ:
                    taken = left == right
                elif op == _BNE:
                    taken = left != right
                elif op == _BLT:
                    taken = left < right
                elif op == _BLE:
                    taken = left <= right
                elif op == _BGT:
                    taken = left > right
                else:
                    taken = left >= right
                target = ins[5]
                if tracing:
                    t_sites(pc)
                    t_classes(0)
                    t_takens(1 if taken else 0)
                    t_targets(target)
                    t_gaps(executed - last_branch_executed - 1)
                    last_branch_executed = executed
                n_slots = ins[6]
                if taken:
                    if n_slots and execute_slots:
                        pending_count = n_slots + 1
                        pending_target = target
                        pc += 1
                    else:
                        # Direct mode: the slots are faithful copies of
                        # the target path, so jumping to the original
                        # target is functionally identical.
                        pc = ins[7] if n_slots else target
                        redirected = True
                else:
                    pc += 1 + n_slots
            elif op == _JUMP:
                target = ins[5]
                if tracing:
                    t_sites(pc)
                    t_classes(1)
                    t_takens(1)
                    t_targets(target)
                    t_gaps(executed - last_branch_executed - 1)
                    last_branch_executed = executed
                pc = target
                redirected = True
            elif op == _CALL:
                target = ins[5]
                if tracing:
                    t_sites(pc)
                    t_classes(1)
                    t_takens(1)
                    t_targets(target)
                    t_gaps(executed - last_branch_executed - 1)
                    last_branch_executed = executed
                call_stack.append((pc + 1, registers))
                registers = dict(enumerate(pending_args))
                pending_args = []
                pc = target
                redirected = True
            elif op == _RET:
                if not call_stack:
                    raise MachineError("return with empty call stack at pc %d" % pc)
                return_pc, registers = call_stack.pop()
                if tracing:
                    t_sites(pc)
                    t_classes(3)
                    t_takens(1)
                    t_targets(return_pc)
                    t_gaps(executed - last_branch_executed - 1)
                    last_branch_executed = executed
                pc = return_pc
                redirected = True
            elif op == _JIND:
                target = registers[ins[2]]
                if not 0 <= target < len(code):
                    raise MachineError(
                        "indirect jump out of range: %d at pc %d" % (target, pc))
                if tracing:
                    t_sites(pc)
                    t_classes(2)
                    t_takens(1)
                    t_targets(target)
                    t_gaps(executed - last_branch_executed - 1)
                    last_branch_executed = executed
                pc = target
                redirected = True
            elif op == _MUL:
                registers[ins[1]] = registers[ins[2]] * registers[ins[3]]
                pc += 1
            elif op == _DIV:
                registers[ins[1]] = _c_div(registers[ins[2]], registers[ins[3]])
                pc += 1
            elif op == _REM:
                registers[ins[1]] = _c_rem(registers[ins[2]], registers[ins[3]])
                pc += 1
            elif op == _AND:
                registers[ins[1]] = registers[ins[2]] & registers[ins[3]]
                pc += 1
            elif op == _OR:
                registers[ins[1]] = registers[ins[2]] | registers[ins[3]]
                pc += 1
            elif op == _XOR:
                registers[ins[1]] = registers[ins[2]] ^ registers[ins[3]]
                pc += 1
            elif op == _SHL:
                registers[ins[1]] = registers[ins[2]] << (registers[ins[3]] & 63)
                pc += 1
            elif op == _SHR:
                registers[ins[1]] = registers[ins[2]] >> (registers[ins[3]] & 63)
                pc += 1
            elif op == _NEG:
                registers[ins[1]] = -registers[ins[2]]
                pc += 1
            elif op == _NOT:
                registers[ins[1]] = ~registers[ins[2]]
                pc += 1
            elif op == _ARG:
                index = ins[4]
                while len(pending_args) <= index:
                    pending_args.append(0)
                pending_args[index] = registers[ins[2]]
                pc += 1
            elif op == _RETV:
                return_value = registers[ins[2]]
                pc += 1
            elif op == _RESULT:
                registers[ins[1]] = return_value
                pc += 1
            elif op == _TABLE:
                entries = tables[ins[4]]
                index = registers[ins[2]]
                if not 0 <= index < len(entries):
                    raise MachineError(
                        "jump table index %d out of range at pc %d" % (index, pc))
                registers[ins[1]] = entries[index]
                pc += 1
            elif op == _GETC:
                stream_id = ins[4]
                if not 0 <= stream_id < len(inputs):
                    raise MachineError("no input stream %d at pc %d" % (stream_id, pc))
                position = input_positions[stream_id]
                stream = inputs[stream_id]
                if position < len(stream):
                    registers[ins[1]] = stream[position]
                    input_positions[stream_id] = position + 1
                else:
                    registers[ins[1]] = -1
                pc += 1
            elif op == _PUTC:
                output_append(registers[ins[2]] & 0xFF)
                pc += 1
            elif op == _PUTI:
                output.extend(b"%d" % registers[ins[2]])
                pc += 1
            elif op == _NOP:
                pc += 1
            elif op == _HALT:
                exit_value = return_value
                break
            else:  # pragma: no cover - decode covers every opcode
                raise MachineError("unknown opcode %d at pc %d" % (op, pc))

            if pending_count:
                if redirected:
                    pending_count = 0
                else:
                    pending_count -= 1
                    if pending_count == 0:
                        pc = pending_target

        if tracing:
            trace.total_instructions = executed
        return MachineResult(bytes(output), executed, trace, exit_value,
                             probe_counts, addresses)


def _decode(program):
    """Pre-decode instructions into flat tuples with integer opcodes.

    Tuple layout: (op, dest, a, b, imm, target, n_slots, orig_target).
    """
    decoded = []
    for instr in program.instructions:
        decoded.append((
            _OP_INT[instr.op], instr.dest, instr.a, instr.b,
            instr.imm, instr.target, instr.n_slots,
            instr.orig_target if instr.orig_target is not None else instr.target,
        ))
    return decoded


def run_program(program, inputs=(), trace=False, slot_mode="direct",
                max_instructions=200_000_000):
    """Convenience wrapper: build a :class:`Machine` and run it."""
    machine = Machine(program, inputs=inputs, trace=trace,
                      slot_mode=slot_mode, max_instructions=max_instructions)
    return machine.run()
