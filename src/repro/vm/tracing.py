"""Branch traces and trace statistics.

A *branch record* captures one dynamic execution of a branch
instruction; the sequence of records plus the total dynamic instruction
count is everything the predictors, the cost model, and Tables 1-3 need.

Records are stored column-wise in plain lists for speed (the VM appends
tens of thousands of records per second) and can be converted to numpy
arrays for on-disk caching.
"""

import numpy as np


class BranchClass:
    """Integer codes classifying a dynamic branch."""

    CONDITIONAL = 0
    UNCONDITIONAL_KNOWN = 1    # direct jump / call
    UNCONDITIONAL_UNKNOWN = 2  # indirect jump (switch jump table)
    RETURN = 3                 # procedure return: known-target via the
                               # call-return discipline (see DESIGN.md)

    NAMES = {
        CONDITIONAL: "conditional",
        UNCONDITIONAL_KNOWN: "unconditional-known",
        UNCONDITIONAL_UNKNOWN: "unconditional-unknown",
        RETURN: "return",
    }


class BranchRecord:
    """One dynamic branch execution (a convenience row view)."""

    __slots__ = ("site", "branch_class", "taken", "target", "gap")

    def __init__(self, site, branch_class, taken, target, gap):
        self.site = site
        self.branch_class = branch_class
        self.taken = taken
        self.target = target
        self.gap = gap

    @property
    def is_conditional(self):
        return self.branch_class == BranchClass.CONDITIONAL

    @property
    def target_known(self):
        """Known-target branches in the Table 2 sense.

        Conditional branches, direct jumps/calls, and returns (whose
        targets follow from the call-return discipline) are "known";
        only jump-table indirections are "unknown".
        """
        return self.branch_class != BranchClass.UNCONDITIONAL_UNKNOWN

    def __repr__(self):
        return "BranchRecord(site=%d, %s, taken=%s, target=%d, gap=%d)" % (
            self.site, BranchClass.NAMES[self.branch_class],
            self.taken, self.target, self.gap,
        )

    def __eq__(self, other):
        if not isinstance(other, BranchRecord):
            return NotImplemented
        return (self.site == other.site
                and self.branch_class == other.branch_class
                and self.taken == other.taken
                and self.target == other.target
                and self.gap == other.gap)


class BranchTrace:
    """The dynamic branch stream of one (or several merged) program runs.

    Column-wise storage:
        sites: branch instruction address per record,
        classes: :class:`BranchClass` code per record,
        takens: 1 when the branch transferred control, else 0,
        targets: actual target address (meaningful when taken; for
            not-taken conditionals it is the would-be taken target),
        gaps: non-branch instructions executed since the previous branch.

    ``total_instructions`` counts every executed instruction including
    the branches themselves.
    """

    def __init__(self):
        self.sites = []
        self.classes = []
        self.takens = []
        self.targets = []
        self.gaps = []
        self.total_instructions = 0

    # -- construction -----------------------------------------------------

    def append(self, site, branch_class, taken, target, gap):
        self.sites.append(site)
        self.classes.append(branch_class)
        self.takens.append(1 if taken else 0)
        self.targets.append(target)
        self.gaps.append(gap)

    def extend(self, other):
        """Concatenate ``other``'s records (merging multiple runs)."""
        self.sites.extend(other.sites)
        self.classes.extend(other.classes)
        self.takens.extend(other.takens)
        self.targets.extend(other.targets)
        self.gaps.extend(other.gaps)
        self.total_instructions += other.total_instructions

    # -- access -------------------------------------------------------------

    def __len__(self):
        return len(self.sites)

    def __getitem__(self, index):
        return BranchRecord(
            self.sites[index], self.classes[index],
            bool(self.takens[index]), self.targets[index], self.gaps[index],
        )

    def records(self):
        """Iterate over (site, branch_class, taken, target, gap) tuples."""
        return zip(self.sites, self.classes, self.takens,
                   self.targets, self.gaps)

    # -- statistics -----------------------------------------------------------

    def stats(self):
        """Compute :class:`TraceStats` over all records."""
        from repro.kernels.encode import EncodedTrace

        encoded = EncodedTrace.of(self)
        stats = TraceStats()
        stats.total_instructions = self.total_instructions
        conditional = encoded.classes == BranchClass.CONDITIONAL
        taken_conditional = int(
            np.count_nonzero(encoded.takens & conditional))
        stats.conditional_taken = taken_conditional
        stats.conditional_not_taken = (
            int(np.count_nonzero(conditional)) - taken_conditional)
        stats.unconditional_unknown = int(np.count_nonzero(
            encoded.classes == BranchClass.UNCONDITIONAL_UNKNOWN))
        # Direct jumps, calls, and returns all have known targets.
        stats.unconditional_known = (
            len(encoded) - stats.conditional
            - stats.unconditional_unknown)
        return stats

    # -- serialisation -----------------------------------------------------------

    def to_arrays(self):
        """Pack the trace into numpy arrays for on-disk caching."""
        return {
            "sites": np.asarray(self.sites, dtype=np.int64),
            "classes": np.asarray(self.classes, dtype=np.int8),
            "takens": np.asarray(self.takens, dtype=np.int8),
            "targets": np.asarray(self.targets, dtype=np.int64),
            "gaps": np.asarray(self.gaps, dtype=np.int64),
            "total_instructions": np.int64(self.total_instructions),
        }

    @classmethod
    def from_arrays(cls, arrays):
        """Rebuild a trace saved by :meth:`to_arrays`.

        The arrays are already the columnar form the vector engine
        wants, so the kernel encoding is stashed directly — a cached
        trace never pays the list-to-array conversion again.
        """
        from repro.kernels.encode import EncodedTrace

        trace = cls()
        trace.sites = arrays["sites"].tolist()
        trace.classes = arrays["classes"].tolist()
        trace.takens = arrays["takens"].tolist()
        trace.targets = arrays["targets"].tolist()
        trace.gaps = arrays["gaps"].tolist()
        trace.total_instructions = int(arrays["total_instructions"])
        trace._encoded = EncodedTrace.from_columns(
            arrays["sites"], arrays["classes"], arrays["takens"],
            arrays["targets"], arrays["gaps"],
            trace.total_instructions)
        return trace


class TraceStats:
    """Aggregate branch statistics of a trace (Tables 1 and 2)."""

    def __init__(self):
        self.total_instructions = 0
        self.conditional_taken = 0
        self.conditional_not_taken = 0
        self.unconditional_known = 0
        self.unconditional_unknown = 0

    @property
    def conditional(self):
        return self.conditional_taken + self.conditional_not_taken

    @property
    def unconditional(self):
        return self.unconditional_known + self.unconditional_unknown

    @property
    def branches(self):
        return self.conditional + self.unconditional

    @property
    def control_fraction(self):
        """Fraction of dynamic instructions that are branches (Table 1)."""
        if self.total_instructions == 0:
            return 0.0
        return self.branches / self.total_instructions

    @property
    def taken_fraction(self):
        """Fraction of conditional branches that are taken (Table 2)."""
        if self.conditional == 0:
            return 0.0
        return self.conditional_taken / self.conditional

    @property
    def known_fraction(self):
        """Fraction of unconditional branches with known targets (Table 2)."""
        if self.unconditional == 0:
            return 0.0
        return self.unconditional_known / self.unconditional

    def merge(self, other):
        self.total_instructions += other.total_instructions
        self.conditional_taken += other.conditional_taken
        self.conditional_not_taken += other.conditional_not_taken
        self.unconditional_known += other.unconditional_known
        self.unconditional_unknown += other.unconditional_unknown
        return self

    def __repr__(self):
        return ("TraceStats(instructions=%d, cond=%d (%.1f%% taken), "
                "uncond=%d (%.1f%% known))" % (
                    self.total_instructions, self.conditional,
                    100.0 * self.taken_fraction, self.unconditional,
                    100.0 * self.known_fraction))
