"""Functional simulator (virtual machine) for the intermediate ISA.

The VM executes :class:`~repro.isa.program.Program` objects, supplies
byte-stream I/O to the benchmarks, and emits the dynamic branch trace
that drives every experiment in the paper.  It also implements the
Forward Semantic execution semantics (forward slots after likely-taken
branches) in two modes so the compiler transformation can be validated
end-to-end:

* ``slot_mode="direct"`` — a taken likely branch transfers straight to
  its original target.  Because forward slots are faithful copies of the
  target path, this is functionally identical to executing the slots and
  is the fast mode used for trace collection.
* ``slot_mode="execute"`` — a taken likely branch falls through into its
  forward slots with an alternate-PC countdown, exactly as the fetch
  hardware would behave.  Used by the semantic-preservation tests.
"""

from repro.vm.tracing import (
    BranchClass,
    BranchRecord,
    BranchTrace,
    TraceStats,
)
from repro.vm.machine import Machine, MachineError, ExecutionLimitExceeded, run_program

__all__ = [
    "BranchClass",
    "BranchRecord",
    "BranchTrace",
    "TraceStats",
    "Machine",
    "MachineError",
    "ExecutionLimitExceeded",
    "run_program",
]
