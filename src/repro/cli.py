"""Command-line interface: regenerate the paper's tables and figures.

Examples::

    repro-branches table3
    repro-branches all --scale 0.2
    python -m repro table5 --no-cache
"""

import argparse
import sys

from repro.experiments import (
    figures,
    headline,
    storage,
    summary,
    sweeps,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.runner import SuiteRunner

_EXPERIMENTS = {
    "table1": table1.render,
    "table2": table2.render,
    "table3": table3.render,
    "table4": table4.render,
    "table5": table5.render,
    "figures": figures.render,
    "headline": headline.render,
    "storage": storage.render,
    "sweeps": sweeps.render,
    "report": summary.render,
}

_ORDER = ("table1", "table2", "table3", "table4", "table5", "figures",
          "headline", "storage")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-branches",
        description="Reproduce Hwu/Conte/Chang (ISCA 1989): software vs "
                    "hardware branch cost reduction.")
    parser.add_argument("experiment",
                        choices=sorted(_EXPERIMENTS) + ["all", "trace"],
                        help="which table/figure to regenerate; 'report' "
                             "renders everything as markdown; 'trace' "
                             "dumps a benchmark's branch trace")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="input size multiplier (default 1.0)")
    parser.add_argument("--runs", type=int, default=None,
                        help="cap profiling runs per benchmark")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the trace cache")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="restrict to these benchmarks")
    parser.add_argument("--output", default=None,
                        help="write the result to a file instead of stdout")
    parser.add_argument("--limit", type=int, default=25,
                        help="records to show for 'trace' (default 25)")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel workers for trace collection "
                             "(needs the cache enabled)")
    return parser


def _dump_trace(runner, names, limit):
    """Human-readable dump of the first records of a branch trace."""
    from repro.vm.tracing import BranchClass

    name = (names or ["wc"])[0]
    run = runner.run(name)
    lines = ["branch trace of %s (%d records, %d instructions)"
             % (name, len(run.trace), run.trace.total_instructions),
             "%8s  %-22s %-9s %8s %6s" % ("site", "class", "direction",
                                          "target", "gap")]
    for index in range(min(limit, len(run.trace))):
        record = run.trace[index]
        lines.append("%8d  %-22s %-9s %8d %6d" % (
            record.site, BranchClass.NAMES[record.branch_class],
            "taken" if record.taken else "not-taken",
            record.target, record.gap))
    if len(run.trace) > limit:
        lines.append("... %d more records" % (len(run.trace) - limit))
    return "\n".join(lines) + "\n"


def main(argv=None):
    args = build_parser().parse_args(argv)
    runner = SuiteRunner(scale=args.scale, runs=args.runs,
                         cache_dir=False if args.no_cache else None)
    names = args.benchmarks
    if args.workers > 1:
        from repro.benchmarksuite import ALL_BENCHMARK_NAMES
        runner.run_all(names or ALL_BENCHMARK_NAMES, workers=args.workers)
    if args.experiment == "all":
        text = "\n".join(_EXPERIMENTS[key](runner, names)
                         for key in _ORDER)
    elif args.experiment == "trace":
        text = _dump_trace(runner, names, args.limit)
    else:
        text = _EXPERIMENTS[args.experiment](runner, names)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print("wrote %s" % args.output)
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
