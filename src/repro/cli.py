"""Command-line interface: regenerate the paper's tables and figures.

Examples::

    repro-branches table3
    repro-branches all --scale 0.2
    repro-branches stats wc --limit 10
    repro-branches stats grep --json
    repro-branches profile wc --telemetry
    repro-branches cache
    repro-branches lint --benchmarks wc grep
    repro-branches lint --strict --json
    repro-branches lint --file program.asm
    repro-branches staticpred
    repro-branches table3 --profile-source static
    repro-branches top --replay .repro-cache/telemetry.jsonl
    repro-branches metrics --replay .repro-cache/traces
    repro-branches bench-history --window 8 --threshold 0.2
    repro-branches characterize SBTB-paper
    repro-branches characterize --self-test
    python -m repro table5 --no-cache
"""

import argparse
import os
import sys

from repro.experiments import (
    figures,
    headline,
    staticpred,
    storage,
    summary,
    sweeps,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.runner import SuiteRunner

_EXPERIMENTS = {
    "table1": table1.render,
    "table2": table2.render,
    "table3": table3.render,
    "table4": table4.render,
    "table5": table5.render,
    "figures": figures.render,
    "headline": headline.render,
    "storage": storage.render,
    "staticpred": staticpred.render,
    "sweeps": sweeps.render,
    "report": summary.render,
}

_ORDER = ("table1", "table2", "table3", "table4", "table5", "figures",
          "headline", "storage")

#: Subcommands that accept an optional target name positionally (a
#: benchmark, or for 'characterize' a roster predictor).
_TARGETED = ("stats", "profile", "trace", "characterize", "chunked")

#: Subcommands that never touch the trace cache directory.
_CACHELESS = ("lint", "cache", "faults", "top", "metrics",
              "bench-history", "characterize")

#: Distinct exit codes (0 = success, 1 = the experiment itself
#: reported failures, e.g. lint errors or conformance divergence).
EXIT_BAD_ARGUMENT = 2
EXIT_CACHE_UNWRITABLE = 3


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-branches",
        description="Reproduce Hwu/Conte/Chang (ISCA 1989): software vs "
                    "hardware branch cost reduction.")
    parser.add_argument("experiment",
                        choices=sorted(_EXPERIMENTS) + ["all", "trace",
                                                        "lint", "stats",
                                                        "profile", "cache",
                                                        "conformance",
                                                        "chunked",
                                                        "faults", "top",
                                                        "metrics",
                                                        "bench-history",
                                                        "characterize",
                                                        "serve"],
                        help="which table/figure to regenerate; 'report' "
                             "renders everything as markdown; 'trace' "
                             "dumps a benchmark's branch trace; 'stats' "
                             "attributes mispredictions to static branch "
                             "sites per scheme; 'profile' reports "
                             "per-stage wall clock; 'cache' lists trace "
                             "cache artifacts and their manifests; 'lint' "
                             "runs the IR verifier over benchmark programs "
                             "(or an assembled --file) and exits non-zero "
                             "on errors; 'conformance' replays fuzzed "
                             "traces through every predictor and its "
                             "reference oracle, cross-checks the cycle "
                             "simulator, and regresses the tables against "
                             "the paper's values and the committed golden "
                             "file (exits non-zero on any divergence); "
                             "'faults' runs the seeded fault-injection "
                             "recovery matrix (torn writes, bit flips, "
                             "ENOSPC, worker crash/hang, corrupt "
                             "manifests) and exits non-zero if any "
                             "injected fault is silently swallowed; "
                             "'top' monitors a sweep live from its "
                             "event log and trace shards (--replay "
                             "renders a recorded log once); 'metrics' "
                             "prints a Prometheus text-format "
                             "exposition of the registry (--replay "
                             "rebuilds it from a recorded log, --serve "
                             "exposes /metrics over HTTP); "
                             "'bench-history' reports the benchmark "
                             "gates' longitudinal BENCH_history.jsonl "
                             "against a rolling-median baseline and "
                             "exits non-zero on flagged regressions; "
                             "'characterize' recovers each predictor's "
                             "parameters (capacity, associativity, "
                             "counter width, history depth, "
                             "replacement) purely from black-box probe "
                             "traces and exits non-zero if any "
                             "recovered parameter contradicts the "
                             "declared configuration (--self-test runs "
                             "the known-configuration gate); 'serve' "
                             "runs the sharded campaign service over "
                             "HTTP/JSON (submit campaigns, poll "
                             "status, stream shard results, fetch "
                             "tables; see docs/SERVICE.md) until "
                             "interrupted; 'chunked' runs a "
                             "benchmark's trace through the chunked "
                             "multi-process engine (--chunks, "
                             "--workers) and cross-checks every "
                             "scheme bit-for-bit against the "
                             "single-process vector engine, exiting "
                             "non-zero on any divergence")
    parser.add_argument("target", nargs="?", default=None,
                        help="benchmark name for 'stats', 'profile', "
                             "'trace' and 'chunked' (default wc); "
                             "roster predictor name for "
                             "'characterize' (default: whole roster)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="input size multiplier (default 1.0)")
    parser.add_argument("--runs", type=int, default=None,
                        help="cap profiling runs per benchmark")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the trace cache")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="restrict to these benchmarks")
    parser.add_argument("--output", default=None,
                        help="write the result to a file instead of stdout")
    parser.add_argument("--limit", type=int, default=25,
                        help="records to show for 'trace' (default 25)")
    parser.add_argument("--profile-source", choices=("measured", "static"),
                        default="measured",
                        help="profile driving trace layout: 'measured' "
                             "profiles each benchmark on its input "
                             "suite (the paper's setup); 'static' "
                             "estimates it from the IR alone — the "
                             "profiler is never invoked and manifests "
                             "record the source")
    parser.add_argument("--engine", choices=("auto", "scalar", "vector"),
                        default="auto",
                        help="simulation engine: 'vector' runs the "
                             "batch kernels, 'scalar' the per-record "
                             "reference loop, 'auto' (default) picks "
                             "vector for large traces; results are "
                             "bit-identical either way")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel workers for trace collection "
                             "(needs the cache enabled); for "
                             "'chunked': supervised worker processes")
    parser.add_argument("--chunks", type=int, default=4,
                        help="for 'chunked': trace segments to "
                             "execute in parallel (default 4)")
    parser.add_argument("--verify", dest="verify", action="store_true",
                        default=True,
                        help="run the IR verifier after every compiler "
                             "pass (the default)")
    parser.add_argument("--no-verify", dest="verify", action="store_false",
                        help="skip IR verification in the compilation "
                             "pipeline")
    parser.add_argument("--file", default=None,
                        help="for 'lint': verify this assembly file "
                             "instead of the benchmark suite; for "
                             "'bench-history': read this history file "
                             "instead of BENCH_history.jsonl at the "
                             "repo root")
    parser.add_argument("--no-warnings", action="store_true",
                        help="for 'lint': report only errors")
    parser.add_argument("--strict", action="store_true",
                        help="for 'lint': exit non-zero on warnings "
                             "too (info findings never fail)")
    parser.add_argument("--json", action="store_true",
                        help="for 'lint', 'stats' and 'cache': emit "
                             "the machine-readable JSON payload")
    parser.add_argument("--seeds", type=int, default=None,
                        help="for 'conformance': fuzz seeds to replay "
                             "differentially (default 50); for "
                             "'faults': seeds per fault kind "
                             "(default 5)")
    parser.add_argument("--no-resume", dest="resume",
                        action="store_false", default=True,
                        help="for 'all' and 'report': ignore (and "
                             "overwrite) the sweep checkpoint instead "
                             "of resuming completed tables from it")
    parser.add_argument("--self-test", action="store_true",
                        help="for 'characterize': recover a grid of "
                             "known small configurations plus the "
                             "paper's SBTB/CBTB exactly, and verify "
                             "that a deliberately mis-declared "
                             "predictor is flagged; exits non-zero on "
                             "any mis-recovery")
    parser.add_argument("--update-golden", action="store_true",
                        help="for 'conformance': re-measure the pinned "
                             "configuration and rewrite the committed "
                             "golden file before checking")
    parser.add_argument("--skip-golden", action="store_true",
                        help="for 'conformance': differential replay "
                             "only, no paper-band/golden-table checks")
    parser.add_argument("--telemetry", dest="telemetry",
                        action="store_true", default=False,
                        help="enable the telemetry registry (spans, "
                             "counters, JSONL event log; default off)")
    parser.add_argument("--no-telemetry", dest="telemetry",
                        action="store_false",
                        help="force telemetry off (the default)")
    parser.add_argument("--telemetry-log", default=None, metavar="PATH",
                        help="JSONL event-log path when telemetry is on "
                             "(default: telemetry.jsonl under the trace "
                             "cache directory)")
    parser.add_argument("--replay", default=None, metavar="LOG",
                        help="for 'top' and 'metrics': read this "
                             "recorded event log (a JSONL file or a "
                             "directory of shards) instead of tailing "
                             "the live cache-dir stream; the render is "
                             "deterministic")
    parser.add_argument("--serve", action="store_true",
                        help="for 'metrics': serve /metrics over a "
                             "stdlib HTTP server instead of printing "
                             "one exposition")
    parser.add_argument("--port", type=int, default=9464,
                        help="for 'metrics --serve': listen port "
                             "(default 9464)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="for 'serve': listen address "
                             "(default 127.0.0.1)")
    parser.add_argument("--queue-capacity", type=int, default=64,
                        help="for 'serve': admission-queue bound; "
                             "campaigns beyond it are rejected with "
                             "a retry-after estimate (default 64)")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        help="for 'serve': per-attempt wall-clock "
                             "limit for one shard worker in seconds "
                             "(default: unlimited)")
    parser.add_argument("--window", type=int, default=None,
                        help="for 'bench-history': rolling-baseline "
                             "window in records (default 8)")
    parser.add_argument("--threshold", type=float, default=None,
                        help="for 'bench-history': fractional rate "
                             "drop below the rolling median that "
                             "flags a regression (default 0.2)")
    return parser


def _dump_trace(runner, names, limit):
    """Human-readable dump of the first records of a branch trace."""
    from repro.vm.tracing import BranchClass

    name = (names or ["wc"])[0]
    run = runner.run(name)
    lines = ["branch trace of %s (%d records, %d instructions)"
             % (name, len(run.trace), run.trace.total_instructions),
             "%8s  %-22s %-9s %8s %6s" % ("site", "class", "direction",
                                          "target", "gap")]
    for index in range(min(limit, len(run.trace))):
        record = run.trace[index]
        lines.append("%8d  %-22s %-9s %8d %6d" % (
            record.site, BranchClass.NAMES[record.branch_class],
            "taken" if record.taken else "not-taken",
            record.target, record.gap))
    if len(run.trace) > limit:
        lines.append("... %d more records" % (len(run.trace) - limit))
    return "\n".join(lines) + "\n"


def _chunked(runner, names, chunks, workers):
    """'chunked': self-checking multi-process run over one benchmark.

    Executes every chunkable scheme's prediction pass through the
    two-phase chunked engine (process pool under the resilience
    supervisor, memory-mapped trace columns) and cross-checks each
    result bit-for-bit against the single-process vector engine.  Any
    divergence is listed and the command exits non-zero — this is the
    interactive twin of the benchmark gate's exactness assertion.
    """
    import tempfile
    import time as time_module

    from repro.kernels.chunked import chunked_stats, supports_chunked
    from repro.predictors import (
        Bimodal,
        CounterBTB,
        GShare,
        SimpleBTB,
        simulate,
    )

    name = (names or ["wc"])[0]
    run = runner.run(name)
    trace = run.trace
    roster = (("SBTB", SimpleBTB), ("CBTB", CounterBTB),
              ("GShare", GShare), ("Bimodal", Bimodal))
    lines = ["chunked engine on %s (%d records): %d chunks, %d "
             "worker process%s"
             % (name, len(trace), chunks, workers,
                "" if workers == 1 else "es"),
             "%-8s %10s %10s %9s  %s"
             % ("scheme", "accuracy", "chunked", "vector", "verdict")]
    divergent = []
    with tempfile.TemporaryDirectory(prefix="repro-chunked-") as scratch:
        for label, factory in roster:
            assert supports_chunked(factory())
            start = time_module.perf_counter()
            stats = chunked_stats(factory(), trace, chunks=chunks,
                                  workers=workers, process=True,
                                  scratch="%s/%s" % (scratch, label))
            chunked_seconds = time_module.perf_counter() - start
            start = time_module.perf_counter()
            reference = simulate(factory(), trace, engine="vector")
            vector_seconds = time_module.perf_counter() - start
            exact = stats == reference
            if not exact:
                divergent.append(label)
            lines.append("%-8s %9.2f%% %9.3fs %8.3fs  %s"
                         % (label, 100.0 * stats.accuracy,
                            chunked_seconds, vector_seconds,
                            "exact" if exact else "DIVERGED"))
    if divergent:
        lines.append("DIVERGENCE: chunked and vector engines disagree "
                     "on %s" % ", ".join(divergent))
    else:
        lines.append("all %d schemes bit-identical to the "
                     "single-process vector engine" % len(roster))
    return "\n".join(lines) + "\n", 1 if divergent else 0


def _lint_stages(label, program):
    """Diagnose one program at every applicable pipeline stage.

    Yields (stage, :class:`DiagnosticsReport`) plus synthetic
    crash reports: an optimizer or layout crash is reported at its
    stage and linting continues, so one broken pass never hides the
    other stages' findings.  The later stages only run while the
    earlier ones are error-free (diagnosing the optimized form of an
    already-invalid program would double-report every error).
    """
    from repro.analysis.diagnostics import run_diagnostics
    from repro.analysis.staticpred import estimate_profile
    from repro.opt import optimize
    from repro.traceopt.layout import build_fs_program

    report = run_diagnostics(program, stage="compiled", name=label)
    yield "compiled", report, None
    if not report.ok:
        return
    try:
        optimized, _ = optimize(program, verify=False)
    except Exception as error:  # optimizer crash: report, keep linting
        yield "optimized", None, "optimizer failed: %s" % error
        return
    report = run_diagnostics(optimized, stage="optimized", name=label)
    yield "optimized", report, None
    if not report.ok:
        return
    try:
        result = build_fs_program(optimized,
                                  estimate_profile(optimized),
                                  verify=False)
    except Exception as error:  # layout crash: same containment
        yield "layout", None, "layout failed: %s" % error
        return
    yield "layout", run_diagnostics(result.program, stage="layout",
                                    name=label, layout=result,
                                    original=optimized), None


def _lint(names, file_path, show_warnings=True, strict=False,
          as_json=False):
    """Diagnose benchmark programs (or one assembly file).

    Each program runs through the diagnostics engine at three stages:
    as compiled, after the optimizer pipeline, and after static-profile
    trace layout (each pass's own verification off, so a broken pass
    shows up here as findings rather than an exception).  Returns
    (report text, exit code).  Exit codes: 0 clean, 1 diagnosed
    errors (with ``strict`` also warnings), 2 bad input (missing
    file, assembly syntax error, unknown benchmark) or an analysis
    crash.
    """
    import json as json_module

    from repro.isa.assembler import AssemblyError

    targets = []
    if file_path:
        from pathlib import Path

        from repro.isa.assembler import assemble

        path = Path(file_path)
        try:
            targets.append((path.name, assemble(path.read_text(),
                                                name=path.stem)))
        except (OSError, AssemblyError) as error:
            return "lint: cannot load %s: %s\n" % (file_path, error), 2
    else:
        from repro.benchmarksuite import ALL_BENCHMARK_NAMES, get_benchmark
        from repro.lang import compile_source

        for name in names or ALL_BENCHMARK_NAMES:
            try:
                spec = get_benchmark(name)
            except KeyError as error:
                return "lint: %s\n" % error.args[0], 2
            targets.append((name, compile_source(spec.source, name=name)))

    lines = []
    reports = []
    error_count = 0
    strict_count = 0
    for label, program in targets:
        try:
            stage_results = list(_lint_stages(label, program))
        except Exception as error:  # analysis crash on malformed IR
            return ("lint: internal error analysing %s: %s: %s\n"
                    % (label, type(error).__name__, error)), 2
        for stage, report, crash in stage_results:
            if crash is not None:
                error_count += 1
                strict_count += 1
                lines.append("%s: %s" % (label, crash))
                reports.append({"name": label, "stage": stage,
                                "crash": crash})
                continue
            findings = (report.findings if show_warnings
                        else report.errors)
            error_count += len(report.errors)
            strict_count += sum(finding.fails_strict
                                for finding in report.findings)
            for finding in findings:
                lines.append("%s (%s): %s" % (label, stage, finding))
            reports.append(report.to_dict())

    failures = strict_count if strict else error_count
    if as_json:
        payload = {
            "programs": reports,
            "strict": strict,
            "failures": failures,
            "clean": failures == 0,
        }
        text = json_module.dumps(payload, indent=2, sort_keys=True) + "\n"
        return text, 1 if failures else 0
    lines.append("linted %d program%s: %s"
                 % (len(targets), "" if len(targets) == 1 else "s",
                    ("%d error%s" % (error_count,
                                     "" if error_count == 1 else "s"))
                    if error_count else
                    ("clean, %d strict failure%s"
                     % (strict_count, "" if strict_count == 1 else "s")
                     if strict and strict_count else "clean")))
    return "\n".join(lines) + "\n", 1 if failures else 0


def _top(args):
    """'top': monitor a sweep from its event log and trace shards.

    With ``--replay`` the recorded log (file or shard directory) is
    folded once and the snapshot rendered — byte-for-byte
    deterministic, since every derived figure comes from recorded
    timestamps.  Without it, the live cache-dir stream is tailed and
    redrawn until the supervisor reports done (or Ctrl-C).
    """
    import time
    from pathlib import Path

    from repro.telemetry.live import EventTail, SweepMonitor

    monitor = SweepMonitor()
    if args.replay:
        source = Path(args.replay)
        if not source.exists():
            print("repro-branches: error: no such event log: %s"
                  % source, file=sys.stderr)
            return "", EXIT_BAD_ARGUMENT
        tail = (EventTail(directory=source) if source.is_dir()
                else EventTail(paths=[source],
                               directory=source.parent / "traces"))
        monitor.observe_all(tail.poll())
        return monitor.render(), 0

    from repro.experiments.runner import default_cache_dir

    cache_dir = default_cache_dir()
    tail = EventTail(paths=[cache_dir / "telemetry.jsonl"],
                     directory=cache_dir / "traces")
    last = None
    try:
        while True:
            monitor.observe_all(tail.poll())
            frame = monitor.render()
            if frame != last:
                sys.stdout.write("\x1b[2J\x1b[H" + frame)
                sys.stdout.flush()
                last = frame
            if monitor.done and not monitor.in_flight:
                break
            time.sleep(0.5)
    except KeyboardInterrupt:
        pass
    return "", 0


def _metrics(args):
    """'metrics': Prometheus text exposition of telemetry aggregates.

    ``--replay`` rebuilds a registry from a recorded event log (or a
    directory of shards): span events feed the duration histograms,
    the ``telemetry.snapshot`` counter dumps restore counters summed
    across processes.  ``--serve`` exposes /metrics over a stdlib
    HTTP server until interrupted.
    """
    from pathlib import Path

    from repro.telemetry.core import TELEMETRY, Telemetry
    from repro.telemetry.exposition import (
        prometheus_text,
        replay_into,
        serve_metrics,
    )
    from repro.telemetry.sinks import read_jsonl_tolerant

    registry = TELEMETRY
    if args.replay:
        source = Path(args.replay)
        if not source.exists():
            print("repro-branches: error: no such event log: %s"
                  % source, file=sys.stderr)
            return "", EXIT_BAD_ARGUMENT
        paths = (sorted(source.glob("*.jsonl")) if source.is_dir()
                 else [source])
        registry = Telemetry(enabled=True)
        for path in paths:
            events, _torn = read_jsonl_tolerant(path)
            replay_into(registry, events)
    if args.serve:
        server = serve_metrics(registry, port=args.port)
        print("serving http://%s:%d/metrics" % server.server_address,
              file=sys.stderr)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
        return "", 0
    return prometheus_text(registry.snapshot()), 0


def _bench_history(args):
    """'bench-history': the longitudinal perf report and its verdict.

    Exit code 1 when the latest record regressed against its
    rolling-median baseline — scriptable as a gate.
    """
    from pathlib import Path

    import repro
    from repro.telemetry import history as bench_history

    path = (Path(args.file) if args.file
            else bench_history.history_path(
                Path(repro.__file__).resolve().parents[2]))
    records = bench_history.load_history(path)
    text, regressions = bench_history.render_history(
        records,
        threshold=(bench_history.DEFAULT_THRESHOLD
                   if args.threshold is None else args.threshold),
        window=(bench_history.DEFAULT_WINDOW
                if args.window is None else args.window),
        limit=args.limit)
    return text, 1 if regressions else 0


def _serve(args):
    """'serve': run the sharded campaign service until interrupted.

    Telemetry is always live for the service — /stats and /metrics
    are its whole observability story — either through the JSONL sink
    (--telemetry) or an in-memory aggregator by default.
    """
    from repro.experiments.runner import default_cache_dir
    from repro.service import CampaignService, ServiceServer
    from repro.telemetry.core import TELEMETRY

    if args.telemetry:
        _enable_telemetry(args)
    elif not TELEMETRY.enabled:
        from repro.telemetry.sinks import InMemoryAggregator

        TELEMETRY.enable(InMemoryAggregator())
    cache_dir = default_cache_dir()
    cache_dir.mkdir(parents=True, exist_ok=True)
    service = CampaignService(
        cache_dir, workers=args.workers,
        queue_capacity=args.queue_capacity,
        shard_timeout=args.shard_timeout)
    server = ServiceServer(service, host=args.host, port=args.port)
    print("serving on %s" % server.address, flush=True)
    print("campaign journal: %s" % service.journal.directory,
          file=sys.stderr)
    server.serve_forever()
    return "", 0


def _usage_error(message):
    """One-line diagnostic on stderr; returns the bad-argument code."""
    print("repro-branches: error: %s" % message, file=sys.stderr)
    return EXIT_BAD_ARGUMENT


def _validate_args(args):
    """Validate numeric inputs and cache-dir writability.

    Returns an exit code (non-zero stops ``main``) — a clear one-line
    error beats a traceback from five layers down.
    """
    if args.scale <= 0:
        return _usage_error("--scale must be > 0 (got %g)" % args.scale)
    if args.runs is not None and args.runs < 1:
        return _usage_error("--runs must be >= 1 (got %d)" % args.runs)
    if args.workers < 1:
        return _usage_error("--workers must be >= 1 (got %d)"
                            % args.workers)
    if args.chunks < 1:
        return _usage_error("--chunks must be >= 1 (got %d)"
                            % args.chunks)
    if args.seeds is not None and args.seeds < 1:
        return _usage_error("--seeds must be >= 1 (got %d)" % args.seeds)
    if args.limit < 1:
        return _usage_error("--limit must be >= 1 (got %d)" % args.limit)
    min_port = 0 if args.experiment == "serve" else 1
    if args.port < min_port or args.port > 65535:
        return _usage_error("--port must be in %d..65535 (got %d)"
                            % (min_port, args.port))
    if args.queue_capacity < 1:
        return _usage_error("--queue-capacity must be >= 1 (got %d)"
                            % args.queue_capacity)
    if args.shard_timeout is not None and args.shard_timeout <= 0:
        return _usage_error("--shard-timeout must be > 0 (got %g)"
                            % args.shard_timeout)
    if args.window is not None and args.window < 1:
        return _usage_error("--window must be >= 1 (got %d)"
                            % args.window)
    if args.threshold is not None and not 0 < args.threshold < 1:
        return _usage_error("--threshold must be in (0, 1) (got %g)"
                            % args.threshold)
    if not args.no_cache and args.experiment not in _CACHELESS:
        from repro.experiments.runner import default_cache_dir

        directory = default_cache_dir()
        try:
            directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            print("repro-branches: error: cache directory %s cannot "
                  "be created: %s (use --no-cache or set "
                  "REPRO_CACHE_DIR)" % (directory, error),
                  file=sys.stderr)
            return EXIT_CACHE_UNWRITABLE
        if not os.access(directory, os.W_OK):
            print("repro-branches: error: cache directory %s is not "
                  "writable (use --no-cache or set REPRO_CACHE_DIR)"
                  % directory, file=sys.stderr)
            return EXIT_CACHE_UNWRITABLE
    return 0


def _sweep_checkpoint(runner, names, sections, label, resume):
    """The checkpoint for a multi-table sweep, or None when disabled."""
    if not resume or runner.cache_dir is None:
        return None
    from repro.experiments.runner import CACHE_FORMAT_VERSION
    from repro.resilience.checkpoint import (
        SweepCheckpoint,
        sweep_fingerprint,
    )

    fingerprint = sweep_fingerprint(sections, runner.scale, runner.runs,
                                    names, CACHE_FORMAT_VERSION,
                                    engine=runner.engine)
    path = (runner.cache_dir / "checkpoints"
            / ("%s-%s.json" % (label, fingerprint)))
    return SweepCheckpoint(path, fingerprint)


def _render_all(runner, names, resume):
    """Render every table, resuming from the sweep checkpoint.

    Each completed section's text is persisted (atomically) as soon as
    it is rendered, so a killed campaign restarts at the first
    incomplete table instead of from scratch.
    """
    checkpoint = _sweep_checkpoint(runner, names, _ORDER, "all", resume)
    done = checkpoint.load() if checkpoint else {}
    if done:
        print("resuming sweep: %d/%d tables from checkpoint"
              % (len(done), len(_ORDER)), file=sys.stderr)
    parts = []
    for key in _ORDER:
        if key in done:
            text = done[key]
        else:
            text = _EXPERIMENTS[key](runner, names)
            if checkpoint is not None:
                checkpoint.record(key, text)
        parts.append(text)
    if checkpoint is not None:
        checkpoint.clear()
    return "\n".join(parts)


def _write_output(text, output):
    if output:
        with open(output, "w") as handle:
            handle.write(text)
        print("wrote %s" % output)
    else:
        print(text, end="" if text.endswith("\n") else "\n")


def _enable_telemetry(args):
    """Turn the registry on with a JSONL sink; returns the log path."""
    from pathlib import Path

    from repro.experiments.runner import default_cache_dir
    from repro.telemetry.core import TELEMETRY
    from repro.telemetry.sinks import JsonlSink

    if args.telemetry_log:
        event_log = Path(args.telemetry_log)
    else:
        event_log = default_cache_dir() / "telemetry.jsonl"
    event_log.parent.mkdir(parents=True, exist_ok=True)
    TELEMETRY.enable(JsonlSink(event_log))
    # Every telemetry run is a trace: spans get ids, supervised
    # worker shards parent under this process's spans, and the merger
    # can stitch the whole run back together.
    from repro.telemetry.tracing import start_trace

    start_trace(TELEMETRY)
    return event_log


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.target and args.experiment not in _TARGETED:
        parser.error("benchmark target only applies to %s"
                     % "/".join(_TARGETED))
    invalid = _validate_args(args)
    if invalid:
        return invalid
    if args.experiment == "lint":
        text, exit_code = _lint(args.benchmarks, args.file,
                                show_warnings=not args.no_warnings,
                                strict=args.strict, as_json=args.json)
        _write_output(text, args.output)
        return exit_code
    if args.experiment == "cache":
        from repro.experiments.stats import render_cache

        _write_output(render_cache(as_json=args.json), args.output)
        return 0
    if args.experiment in ("top", "metrics", "bench-history", "serve"):
        handler = {"top": _top, "metrics": _metrics,
                   "bench-history": _bench_history,
                   "serve": _serve}[args.experiment]
        text, exit_code = handler(args)
        if text:
            _write_output(text, args.output)
        return exit_code

    from repro.kernels import set_default_engine

    event_log = _enable_telemetry(args) if args.telemetry else None
    exit_code = 0
    # The process-wide default makes library code that calls
    # simulate() without an engine argument follow --engine too.
    previous_engine = set_default_engine(args.engine)
    try:
        if args.experiment == "conformance":
            from repro.conformance import run_conformance, write_golden

            if args.update_golden:
                golden_path = write_golden(cache=not args.no_cache)
                print("wrote %s" % golden_path, file=sys.stderr)
            report = run_conformance(
                seeds=50 if args.seeds is None else args.seeds,
                golden=not args.skip_golden,
                cache=not args.no_cache)
            text = report.render()
            exit_code = 0 if report.ok else 1
            _write_output(text, args.output)
            return exit_code
        if args.experiment == "characterize":
            from repro.characterize import run_roster, run_self_test

            if args.self_test:
                text, exit_code = run_self_test(as_json=args.json)
            else:
                text, exit_code = run_roster(
                    names=[args.target] if args.target else None,
                    as_json=args.json)
            _write_output(text, args.output)
            return exit_code
        if args.experiment == "faults":
            import json as json_module

            from repro.resilience.harness import run_fault_matrix

            # Exit-code contract: 0 = every injected fault was
            # recovered, 1 = a recovery failed (including the harness
            # itself dying unexpectedly), 2 = invalid --seeds
            # (rejected by _validate_args before we get here).
            try:
                report = run_fault_matrix(
                    seeds=5 if args.seeds is None else args.seeds)
            except Exception as error:
                print("repro-branches: faults: unexpected recovery "
                      "failure: %s: %s"
                      % (type(error).__name__, error), file=sys.stderr)
                return 1
            text = (json_module.dumps(report.to_dict(), indent=2,
                                      sort_keys=True) + "\n"
                    if args.json else report.render())
            exit_code = 0 if report.ok else 1
            _write_output(text, args.output)
            return exit_code
        runner = SuiteRunner(scale=args.scale, runs=args.runs,
                             cache_dir=False if args.no_cache else None,
                             verify=args.verify, event_log=event_log,
                             engine=args.engine,
                             profile_source=args.profile_source)
        names = ([args.target] if args.target else None) or args.benchmarks
        # For 'chunked', --workers sizes the supervised chunk pool,
        # not trace collection — skip the parallel pre-warm sweep.
        if args.workers > 1 and args.experiment != "chunked":
            from repro.benchmarksuite import ALL_BENCHMARK_NAMES
            runner.run_all(names or ALL_BENCHMARK_NAMES,
                           workers=args.workers)
            report = runner.last_warm_report
            if report is not None and not report.ok:
                print("warm workers: %s" % report.render(),
                      file=sys.stderr)
        if args.experiment == "all":
            text = _render_all(runner, names, args.resume)
        elif args.experiment == "report":
            checkpoint = _sweep_checkpoint(
                runner, names, [title for title, _ in summary.SECTIONS],
                "report", args.resume)
            text = summary.generate(runner, names,
                                    checkpoint=checkpoint)
        elif args.experiment == "trace":
            text = _dump_trace(runner, names, args.limit)
        elif args.experiment == "stats":
            from repro.experiments.stats import render_stats
            text = render_stats(runner, names, limit=args.limit,
                                as_json=args.json)
        elif args.experiment == "profile":
            from repro.experiments.stats import render_profile
            text = render_profile(runner, names)
        elif args.experiment == "chunked":
            text, exit_code = _chunked(runner, names, args.chunks,
                                       args.workers)
        else:
            text = _EXPERIMENTS[args.experiment](runner, names)
    finally:
        set_default_engine(previous_engine)
        if event_log is not None:
            from repro.telemetry.core import TELEMETRY

            # Dump the final counters so replay/`top` can rebuild them
            # from the log alone (workers do the same on exit).
            TELEMETRY.event("telemetry.snapshot",
                            counters=TELEMETRY.snapshot()["counters"])
            if TELEMETRY.sink is not None:
                TELEMETRY.sink.close()
            TELEMETRY.disable().reset()
            print("telemetry event log: %s" % event_log, file=sys.stderr)
    _write_output(text, args.output)
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
