"""Reproduction of Hwu, Conte & Chang, "Comparing Software and Hardware
Schemes For Reducing the Cost of Branches" (ISCA 1989).

Quick start::

    from repro import SuiteRunner
    from repro.experiments import table3

    runner = SuiteRunner(scale=0.1)
    print(table3.render(runner))

Package map:

* :mod:`repro.isa` — the intermediate instruction set.
* :mod:`repro.lang` — the Minic compiler (the IMPACT stand-in).
* :mod:`repro.vm` — the tracing functional simulator.
* :mod:`repro.cfg` — control-flow graphs over programs.
* :mod:`repro.profiling` — basic-block probe profiling.
* :mod:`repro.traceopt` — trace selection, layout, forward slots.
* :mod:`repro.predictors` — SBTB, CBTB, FS, static baselines.
* :mod:`repro.pipeline` — the cost model and a cycle simulator.
* :mod:`repro.benchmarksuite` — the ten Unix benchmarks in Minic.
* :mod:`repro.experiments` — Tables 1-5 and Figures 3-4.
"""

from repro.experiments.runner import SuiteRunner
from repro.lang import compile_source
from repro.pipeline import PipelineConfig, branch_cost
from repro.predictors import (
    CounterBTB,
    ForwardSemanticPredictor,
    SimpleBTB,
    simulate,
)
from repro.vm import run_program

__version__ = "1.0.0"

__all__ = [
    "SuiteRunner",
    "compile_source",
    "run_program",
    "PipelineConfig",
    "branch_cost",
    "SimpleBTB",
    "CounterBTB",
    "ForwardSemanticPredictor",
    "simulate",
    "__version__",
]
