"""Hardware design-space sweeps over the cached traces.

Library form of the ablation benchmarks: each sweep returns a
:class:`~repro.experiments.report.TableData` of suite-average
accuracies over a hardware parameter grid, reusing the runner's cached
traces.  Exposed on the CLI as the ``sweeps`` experiment.
"""

from repro.experiments import paper_values
from repro.experiments.report import TableData, mean
from repro.predictors import CounterBTB, SimpleBTB, simulate


def _average_accuracy(runner, names, make_predictor):
    accuracies = []
    for name in names:
        run = runner.run(name)
        accuracies.append(simulate(make_predictor(), run.trace).accuracy)
    return mean(accuracies)


def capacity_sweep(runner, names=None, capacities=(16, 64, 256, 1024)):
    """BTB entry count vs accuracy for both buffered schemes."""
    names = names or paper_values.BENCHMARKS
    rows = []
    for entries in capacities:
        rows.append([
            entries,
            round(_average_accuracy(
                runner, names, lambda: SimpleBTB(entries)), 4),
            round(_average_accuracy(
                runner, names, lambda: CounterBTB(entries)), 4),
        ])
    return TableData(
        "BTB capacity sweep (suite-average accuracy)",
        ["Entries", "A_SBTB", "A_CBTB"],
        rows,
        notes=["the paper's configuration is 256 entries"],
    )


def associativity_sweep(runner, names=None, ways=(1, 2, 4, 8, None),
                        entries=256):
    """Associativity vs accuracy at fixed capacity."""
    names = names or paper_values.BENCHMARKS
    rows = []
    for associativity in ways:
        label = "full" if associativity is None else associativity
        rows.append([
            label,
            round(_average_accuracy(
                runner, names,
                lambda: SimpleBTB(entries, associativity)), 4),
            round(_average_accuracy(
                runner, names,
                lambda: CounterBTB(entries, associativity)), 4),
        ])
    return TableData(
        "BTB associativity sweep at %d entries" % entries,
        ["Ways", "A_SBTB", "A_CBTB"],
        rows,
        notes=["the paper used full associativity and flags the bias"],
    )


def counter_sweep(runner, names=None,
                  configurations=((1, 1), (2, 1), (2, 2), (3, 4), (4, 8))):
    """CBTB counter width / threshold grid."""
    names = names or paper_values.BENCHMARKS
    rows = []
    for bits, threshold in configurations:
        rows.append([
            "%d-bit, T=%d" % (bits, threshold),
            round(_average_accuracy(
                runner, names,
                lambda: CounterBTB(counter_bits=bits,
                                   threshold=threshold)), 4),
        ])
    return TableData(
        "CBTB counter geometry sweep",
        ["Counter", "A_CBTB"],
        rows,
        notes=["the paper follows J. E. Smith: 2-bit, threshold 2"],
    )


def render(runner, names=None):
    from repro.experiments.report import render_table
    return "\n".join(render_table(sweep(runner, names)) for sweep in
                     (capacity_sweep, associativity_sweep, counter_sweep))
