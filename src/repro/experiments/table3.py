"""Table 3: branch prediction performance (the paper's core table)."""

from repro.experiments import paper_values
from repro.experiments.report import TableData, mean, std_dev


def compute(runner, names=None):
    names = names or paper_values.BENCHMARKS
    rows = []
    columns = {key: [] for key in
               ("rho_s", "a_s", "rho_c", "a_c", "a_fs")}
    for name in names:
        run = runner.run(name)
        predictions = run.predictions()
        rho_s = predictions["SBTB"].miss_ratio
        a_s = 100.0 * predictions["SBTB"].accuracy
        rho_c = predictions["CBTB"].miss_ratio
        a_c = 100.0 * predictions["CBTB"].accuracy
        a_fs = 100.0 * predictions["FS"].accuracy
        for key, value in zip(columns, (rho_s, a_s, rho_c, a_c, a_fs)):
            columns[key].append(value)
        paper = paper_values.TABLE3[name]
        rows.append([name,
                     round(rho_s, 2), round(a_s, 1),
                     round(rho_c, 4), round(a_c, 1), round(a_fs, 1),
                     paper[0], paper[1], paper[2], paper[3], paper[4]])

    paper_avg = paper_values.TABLE3_AVERAGE
    paper_std = paper_values.TABLE3_STD
    rows.append(["Average"]
                + [round(mean(columns[key]), 4 if "rho" in key else 1)
                   for key in columns]
                + list(paper_avg))
    rows.append(["Std. dev."]
                + [round(std_dev(columns[key]), 4 if "rho" in key else 2)
                   for key in columns]
                + list(paper_std))
    return TableData(
        "Table 3: branch prediction performance (measured | paper)",
        ["Benchmark", "rhoS", "A_S%", "rhoC", "A_C%", "A_FS%",
         "p.rhoS", "p.A_S", "p.rhoC", "p.A_C", "p.A_FS"],
        rows,
    )


def average_accuracies(runner, names=None):
    """The suite-average accuracy per scheme (feeds Figures 3-4)."""
    names = names or paper_values.BENCHMARKS
    totals = {"SBTB": [], "CBTB": [], "FS": []}
    for name in names:
        predictions = runner.run(name).predictions()
        for scheme in totals:
            totals[scheme].append(predictions[scheme].accuracy)
    return {scheme: mean(values) for scheme, values in totals.items()}


def render(runner, names=None):
    from repro.experiments.report import render_table
    return render_table(compute(runner, names))
