"""Reproduction harness: one module per table/figure of the paper.

The :class:`~repro.experiments.runner.SuiteRunner` compiles each
benchmark, profiles it over its input suite, applies the Forward
Semantic layout, collects the evaluation trace, and caches everything
on disk; the table modules turn those artifacts into the paper's
tables and figures, each rendered next to the paper's published
numbers.
"""

from repro.experiments.runner import BenchmarkRun, SuiteRunner
from repro.experiments.report import TableData, render_table

__all__ = ["BenchmarkRun", "SuiteRunner", "TableData", "render_table"]
