"""Table 2: benchmark branch statistics."""

from repro.experiments import paper_values
from repro.experiments.report import TableData, mean


def compute(runner, names=None):
    names = names or paper_values.BENCHMARKS
    rows = []
    taken, not_taken, known, unknown = [], [], [], []
    for name in names:
        run = runner.run(name)
        stats = run.stats
        taken_pct = 100.0 * stats.taken_fraction
        known_pct = 100.0 * stats.known_fraction
        taken.append(taken_pct)
        not_taken.append(100.0 - taken_pct)
        known.append(known_pct)
        unknown.append(100.0 - known_pct)
        paper = paper_values.TABLE2[name]
        rows.append([
            name,
            round(taken_pct, 1), round(100.0 - taken_pct, 1),
            round(known_pct, 1), round(100.0 - known_pct, 1),
            paper[0], paper[1], paper[2], paper[3],
        ])
    paper_avg = paper_values.TABLE2_AVERAGE
    rows.append(["Average",
                 round(mean(taken), 1), round(mean(not_taken), 1),
                 round(mean(known), 1), round(mean(unknown), 1),
                 paper_avg[0], paper_avg[1], paper_avg[2], paper_avg[3]])
    return TableData(
        "Table 2: branch statistics, % of dynamic branches "
        "(measured | paper)",
        ["Benchmark", "Taken", "Not", "Known", "Unknown",
         "p.Tkn", "p.Not", "p.Knw", "p.Unk"],
        rows,
    )


def render(runner, names=None):
    from repro.experiments.report import render_table
    return render_table(compute(runner, names))
