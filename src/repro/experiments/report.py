"""Table rendering shared by all experiment modules."""

import math


class TableData:
    """A computed table: rows of cells plus presentation metadata.

    Attributes:
        title: table caption.
        headers: column names.
        rows: list of row lists (first cell is usually the benchmark).
        notes: list of footnote strings.
    """

    def __init__(self, title, headers, rows, notes=()):
        self.title = title
        self.headers = list(headers)
        self.rows = [list(row) for row in rows]
        self.notes = list(notes)

    def column(self, index):
        """Numeric values of one column (skipping non-numeric cells)."""
        values = []
        for row in self.rows:
            cell = row[index]
            if isinstance(cell, (int, float)):
                values.append(cell)
        return values


def _format_cell(cell):
    if isinstance(cell, float):
        return "%.4g" % cell
    return str(cell)


def render_table(data):
    """Render a :class:`TableData` as an aligned ASCII table."""
    formatted = [[_format_cell(cell) for cell in row] for row in data.rows]
    widths = [len(header) for header in data.headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "  ".join(cell.rjust(width) if index else cell.ljust(width)
                         for index, (cell, width)
                         in enumerate(zip(cells, widths)))

    parts = [data.title, "=" * len(data.title),
             line(data.headers),
             "-" * (sum(widths) + 2 * (len(widths) - 1))]
    parts.extend(line(row) for row in formatted)
    for note in data.notes:
        parts.append("  note: %s" % note)
    return "\n".join(parts) + "\n"


def mean(values):
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def std_dev(values):
    """Population standard deviation (matches the paper's table rows)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((value - centre) ** 2 for value in values)
                     / len(values))


def render_series_plot(series_by_label, width=60, height=18,
                       x_label="x", y_label="y", title=""):
    """ASCII plot of several (x, y) series — the Figures 3-4 renderer.

    Args:
        series_by_label: mapping label -> list of (x, y) pairs; each
            label's first character marks its points.
    """
    points = [point for series in series_by_label.values()
              for point in series]
    if not points:
        return "(no data)\n"
    xs = [point[0] for point in points]
    ys = [point[1] for point in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for label, series in series_by_label.items():
        mark = label[0]
        for x, y in series:
            column = int((x - x_low) / x_span * (width - 1))
            row = height - 1 - int((y - y_low) / y_span * (height - 1))
            grid[row][column] = mark

    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        if index == 0:
            prefix = "%8.2f |" % y_high
        elif index == height - 1:
            prefix = "%8.2f |" % y_low
        else:
            prefix = "         |"
        lines.append(prefix + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append("          %-8.2f%s%8.2f  (%s)"
                 % (x_low, " " * (width - 18), x_high, x_label))
    legend = "  ".join("%s = %s" % (label[0], label)
                       for label in series_by_label)
    lines.append("          " + legend)
    return "\n".join(lines) + "\n"
