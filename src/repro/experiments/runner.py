"""Benchmark execution and caching for the experiment harness.

For each benchmark the runner performs the paper's methodology:

1. compile the Minic source (the "executable intermediate form"),
2. profile it over the input suite with basic-block probes,
3. recompile with trace selection + layout, setting likely bits,
4. run the laid-out program over the same input suite, collecting the
   evaluation branch trace (the paper profiles and measures on the
   same inputs, which it notes explicitly),
5. simulate the predictors over the trace and size the forward-slot
   expansions.

Steps 2 and 4 dominate the cost, so their outputs (profile JSON and
trace arrays) are cached on disk keyed by benchmark, scale, run count,
and a format version.  Everything else is recomputed deterministically
from those artifacts.

The cache is crash-safe (see :mod:`repro.resilience` and
docs/RESILIENCE.md): every artifact is written atomically with its
sha256 recorded in the run manifest and verified on load; artifacts
that fail checksum or parse are quarantined to ``*.corrupt`` and
recomputed once; an inter-process lock per cache stem keeps concurrent
warm workers from tearing (or double-computing) the same entry; and
the parallel warm path is supervised — per-benchmark timeouts, bounded
retries with jittered backoff, and a typed
:class:`~repro.resilience.supervisor.RunReport` instead of one worker
failure killing the campaign.
"""

import contextlib
import hashlib
import json
import os
import re
import time
import zipfile
from pathlib import Path

import numpy as np

from repro.benchmarksuite import get_benchmark
from repro.kernels.engine import ENGINES
from repro.lang import compile_source
from repro.profiling import Profile, profile_program
from repro.resilience.errors import (
    CacheCorruptError,
    LockTimeout,
    ManifestError,
)
from repro.resilience.store import (
    StemLock,
    atomic_write_npz,
    atomic_write_text,
    quarantine,
    verify_checksum,
)
from repro.telemetry.core import TELEMETRY
from repro.telemetry.manifest import (
    RunManifest,
    git_sha,
    manifest_path_for,
)
from repro.traceopt import build_fs_program, fill_forward_slots
from repro.predictors import (
    CounterBTB,
    ForwardSemanticPredictor,
    SimpleBTB,
    simulate,
)
from repro.vm import BranchTrace, run_program

# Version 3: manifests record per-artifact sha256 checksums (manifest
# schema 2) that cache loads verify; entries are written atomically
# under a per-stem lock.  Version 2 entries lack checksums, so the
# bump regenerates them (emitting a cache.invalidated event for each
# one found).
CACHE_FORMAT_VERSION = 3

#: Where the profile driving trace layout comes from: ``measured``
#: profiles the program on its input suite (the paper's setup);
#: ``static`` estimates the profile from the IR alone
#: (:func:`repro.analysis.staticpred.estimate_profile`) and never
#: invokes the profiler.
PROFILE_SOURCES = ("measured", "static")

_VERSION_IN_STEM = re.compile(r"-v(\d+)-")

_UNSET = object()


@contextlib.contextmanager
def _stage(stages, name, benchmark):
    """Time a pipeline stage into ``stages`` and span it when enabled.

    The wall clock always runs (the run manifest wants per-stage
    seconds whether or not telemetry is on); the span — and thus the
    event stream — engages only when telemetry is enabled.
    """
    with TELEMETRY.span("runner." + name, benchmark=benchmark):
        start = time.perf_counter()
        try:
            yield
        finally:
            stages[name] = stages.get(name, 0.0) + (
                time.perf_counter() - start)

SLOT_COUNTS = (1, 2, 4, 8)  # the k + l values of Table 5

SCHEMES = ("SBTB", "CBTB", "FS")


class BenchmarkRun:
    """All measured artifacts for one benchmark at one scale."""

    def __init__(self, name, spec, program, layout, profile, trace,
                 scale, runs, manifest=None, engine="auto"):
        self.name = name
        self.spec = spec
        self.program = program          # base compiled program
        self.layout = layout            # LayoutResult (FS program inside)
        self.profile = profile
        self.trace = trace              # merged evaluation trace
        self.scale = scale
        self.runs = runs
        self.manifest = manifest        # RunManifest (None when uncached)
        self.engine = engine            # simulation engine for predictions
        self._stats = None
        self._predictions = None
        self._expansions = None

    @property
    def fs_program(self):
        return self.layout.program

    @property
    def stats(self):
        """Trace statistics (Tables 1 and 2)."""
        if self._stats is None:
            self._stats = self.trace.stats()
        return self._stats

    @property
    def source_lines(self):
        return self.spec.source_lines()

    def predictions(self, entries=256, associativity=None,
                    counter_bits=2, threshold=2):
        """PredictionStats per scheme over the evaluation trace.

        The default parameters are the paper's configuration; the
        result for that configuration is memoised.
        """
        default = (entries == 256 and associativity is None
                   and counter_bits == 2 and threshold == 2)
        if default and self._predictions is not None:
            return self._predictions
        with TELEMETRY.span("runner.predict", benchmark=self.name,
                            entries=entries):
            results = {
                "SBTB": simulate(SimpleBTB(entries, associativity),
                                 self.trace, engine=self.engine),
                "CBTB": simulate(
                    CounterBTB(entries, associativity, counter_bits,
                               threshold),
                    self.trace, engine=self.engine),
                "FS": simulate(
                    ForwardSemanticPredictor(program=self.fs_program),
                    self.trace, engine=self.engine),
            }
        if default:
            self._predictions = results
        return results

    def chunked_predictions(self, entries=256, associativity=None,
                            counter_bits=2, threshold=2, chunks=4,
                            workers=None, process=False, scratch=None):
        """:meth:`predictions`, computed by the segmented engine.

        Drop-in replacement: the buffer schemes (SBTB/CBTB) run
        through the two-phase chunked engine — optionally on a
        supervised process pool — while FS, which the segmented
        engine does not support, takes the ordinary path.  Results
        are bit-identical to :meth:`predictions`; this exists so a
        sweep can spread one huge trace across cores without anyone
        downstream being able to tell.
        """
        from repro.kernels.chunked import chunked_stats

        with TELEMETRY.span("runner.predict.chunked",
                            benchmark=self.name, entries=entries,
                            chunks=chunks):
            return {
                "SBTB": chunked_stats(
                    SimpleBTB(entries, associativity), self.trace,
                    chunks=chunks, workers=workers, process=process,
                    scratch=scratch),
                "CBTB": chunked_stats(
                    CounterBTB(entries, associativity, counter_bits,
                               threshold),
                    self.trace, chunks=chunks, workers=workers,
                    process=process, scratch=scratch),
                "FS": simulate(
                    ForwardSemanticPredictor(program=self.fs_program),
                    self.trace, engine=self.engine),
            }

    def expansions(self):
        """Table 5's code-size reports, one per slot count."""
        if self._expansions is None:
            with TELEMETRY.span("runner.expansions", benchmark=self.name):
                self._expansions = {
                    n_slots: fill_forward_slots(self.fs_program, n_slots)[1]
                    for n_slots in SLOT_COUNTS
                }
        return self._expansions


def default_cache_dir():
    """The trace cache location (REPRO_CACHE_DIR overrides)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".repro_cache"


def content_stem(name, scale=1.0, runs=None, profile_source="measured",
                 source=None):
    """The content-addressed cache stem of one benchmark's artifacts.

    Everything that can change the cached trace is baked in: the
    benchmark source hash, scale, effective run count, profile source,
    and the cache format version.  The campaign service keys its
    in-flight deduplication on this stem (plus the predictor config),
    so two requests share one computation exactly when their inputs
    are bit-identical — and a source edit or format bump changes the
    stem, so nothing stale is ever deduplicated against.

    ``source`` overrides the registry lookup (the runner passes the
    program text it is actually about to trace); without it the
    benchmark's registered source is hashed and ``runs`` is clamped to
    the spec's run count.
    """
    if source is None:
        from repro.benchmarksuite import get_benchmark

        spec = get_benchmark(name)
        n_runs = spec.runs if runs is None else min(runs, spec.runs)
        source = spec.source
    else:
        n_runs = 1 if runs is None else runs
    digest = hashlib.sha1(source.encode()).hexdigest()[:10]
    marker = "" if profile_source == "measured" else "+static"
    stem = "%s%s-s%s-r%d-v%d-%s" % (name, marker, repr(scale), n_runs,
                                    CACHE_FORMAT_VERSION, digest)
    return stem.replace(".", "_")


def _parses_as_json_object(path):
    """True when ``path`` holds a JSON object (however unfamiliar).

    Distinguishes a manifest from a *newer schema* — valid JSON whose
    structure this version cannot interpret, which is staleness — from
    a torn or bit-rotted file, which is corruption.
    """
    try:
        return isinstance(json.loads(Path(path).read_text()), dict)
    except (OSError, ValueError):
        return False


def list_cache_entries(cache_dir=None):
    """Inventory of the trace cache for ``repro-branches cache``.

    Groups the ``.npz`` trace, ``.json`` profile, and
    ``.manifest.json`` of each cache stem; returns a list of dicts
    (sorted by stem) with sizes, the current-version flag, a
    ``status`` field, and the parsed manifest when one parses.

    Damage never raises, and damage is distinguished from mere age: a
    torn or non-JSON manifest reports ``status: "corrupt"`` (manifest
    ``None``); a manifest that is valid JSON but from another era — a
    future schema this code cannot parse, a ``format_version`` other
    than the current one, or an unknown recorded engine — reports
    ``status: "stale"`` (the entry is intact, just unusable by this
    version); a missing manifest reports ``status: "no-manifest"`` —
    so the listing works on a damaged cache directory instead of
    crashing on it.
    """
    cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
    entries = []
    if not cache_dir.is_dir():
        return entries
    for trace_path in sorted(cache_dir.glob("*.npz")):
        stem = trace_path.stem
        profile_path = trace_path.with_suffix(".json")
        manifest_path = manifest_path_for(trace_path)
        size = 0
        for path in (trace_path, profile_path, manifest_path):
            try:
                size += path.stat().st_size
            except OSError:
                pass
        manifest = None
        status = "ok"
        if manifest_path.exists():
            try:
                manifest = RunManifest.load(manifest_path)
            except ManifestError:
                status = ("stale" if _parses_as_json_object(manifest_path)
                          else "corrupt")
            else:
                if (manifest.format_version != CACHE_FORMAT_VERSION
                        or manifest.config.get("engine", "auto")
                        not in ENGINES):
                    status = "stale"
        else:
            status = "no-manifest"
        match = _VERSION_IN_STEM.search(trace_path.name)
        version = int(match.group(1)) if match else None
        entries.append({
            "stem": stem,
            "path": str(trace_path),
            "size_bytes": size,
            "format_version": version,
            "current": version == CACHE_FORMAT_VERSION,
            "status": status,
            "manifest": manifest,
        })
    return entries


class SuiteRunner:
    """Runs benchmarks and caches their traces and profiles.

    Args:
        scale: input size multiplier (1.0 = paper-scale).
        runs: cap on profiling runs per benchmark (None = the spec's
            full suite).
        cache_dir: trace cache directory; None = default; False
            disables caching entirely.
        max_instructions: per-run execution budget.
        verify: run the IR verifier on every laid-out program (the
            default; ``--no-verify`` on the CLI turns it off).
        event_log: path of the telemetry JSONL event log this run
            writes to (recorded in run manifests); None when telemetry
            is off or in-memory.
        warm_timeout: per-benchmark wall-clock limit for supervised
            warm workers (a hung worker is killed and retried).
        warm_retries: extra attempts a warm worker gets after dying.
        lock_timeout: how long to wait on another process's stem lock
            before degrading to an uncached in-process compute.
        engine: simulation engine (``auto``/``scalar``/``vector``) the
            runs' predictions use; recorded in run manifests so cached
            tables are traceable to the engine that produced them.
        profile_source: ``"measured"`` (default) profiles each
            benchmark on its input suite; ``"static"`` estimates the
            profile from the IR alone — the profiler is never invoked,
            cache stems carry a ``+static`` marker, and the source is
            recorded in run manifests.

    After a parallel ``run_all``, :attr:`last_warm_report` holds the
    supervised warm's :class:`~repro.resilience.supervisor.RunReport`
    (succeeded / retried / failed per benchmark).
    """

    def __init__(self, scale=1.0, runs=None, cache_dir=None,
                 max_instructions=500_000_000, verify=True,
                 event_log=None, warm_timeout=600.0, warm_retries=2,
                 lock_timeout=600.0, engine="auto",
                 profile_source="measured"):
        if engine not in ENGINES:
            raise ValueError("unknown engine %r (expected one of %s)"
                             % (engine, ", ".join(ENGINES)))
        if profile_source not in PROFILE_SOURCES:
            raise ValueError(
                "unknown profile source %r (expected one of %s)"
                % (profile_source, ", ".join(PROFILE_SOURCES)))
        self.scale = scale
        self.runs = runs
        self.engine = engine
        self.profile_source = profile_source
        if cache_dir is False:
            self.cache_dir = None
        else:
            self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.max_instructions = max_instructions
        self.verify = verify
        self.event_log = str(event_log) if event_log else None
        self.warm_timeout = warm_timeout
        self.warm_retries = warm_retries
        self.lock_timeout = lock_timeout
        self.last_warm_report = None
        self._memo = {}
        self._git_sha = _UNSET

    # -- cache plumbing ------------------------------------------------------

    def _cache_paths(self, name, n_runs, source):
        if self.cache_dir is None:
            return None, None
        # The source hash invalidates cached traces whenever the
        # benchmark program (or the compiler output feeding it)
        # changes; the stem derivation is shared with the campaign
        # service's dedup keys (see content_stem).
        stem = content_stem(name, scale=self.scale, runs=n_runs,
                            profile_source=self.profile_source,
                            source=source)
        return (self.cache_dir / (stem + ".npz"),
                self.cache_dir / (stem + ".json"))

    def _stem_marker(self):
        """Cache-stem discriminator for non-default profile sources.

        Static-profile entries carry different traces (the layout they
        trace was driven by estimated counts), so they must never
        collide with measured entries of the same benchmark.
        """
        return "" if self.profile_source == "measured" else "+static"

    def _report_stale_versions(self, name, n_runs, source):
        """Detect cache entries written under another format version.

        The format version is baked into the cache file name, so a
        bump silently turns every old entry into dead weight; this
        surfaces each one as a structured ``cache.invalidated`` event
        (and counter) instead of leaving the staleness invisible.
        """
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return []
        digest = hashlib.sha1(source.encode()).hexdigest()[:10]
        stem = ("%s%s-s%s-r%d-v*-%s"
                % (name, self._stem_marker(), repr(self.scale), n_runs,
                   digest))
        pattern = stem.replace(".", "_") + ".npz"
        stale = []
        for path in sorted(self.cache_dir.glob(pattern)):
            match = _VERSION_IN_STEM.search(path.name)
            if match is None:
                continue
            found = int(match.group(1))
            if found == CACHE_FORMAT_VERSION:
                continue
            stale.append(path)
            TELEMETRY.count("runner.cache.invalidated")
            TELEMETRY.event(
                "cache.invalidated", benchmark=name, path=str(path),
                found_version=found,
                expected_version=CACHE_FORMAT_VERSION)
        return stale

    def _repo_git_sha(self):
        if self._git_sha is _UNSET:
            self._git_sha = git_sha(Path(__file__).resolve().parents[3])
        return self._git_sha

    # -- crash-safe cache load/store ----------------------------------------

    def _load_cache_entry(self, name, trace_path, profile_path):
        """(profile, trace, manifest) from disk, or (None, None, None).

        An entry is a **miss** when none of its three files exist; it
        is **corrupt** — quarantined and reported, then treated as a
        miss — when the files are incomplete, the manifest does not
        parse, a checksum disagrees, or an artifact fails to parse.
        Only the typed taxonomy is caught here; a genuine bug still
        raises.
        """
        manifest_path = manifest_path_for(trace_path)
        paths = (trace_path, profile_path, manifest_path)
        if not any(path.exists() for path in paths):
            return None, None, None
        try:
            for path in paths:
                if not path.exists():
                    raise CacheCorruptError(
                        str(trace_path),
                        "incomplete entry: %s missing" % path.name)
            manifest = RunManifest.load(manifest_path)
            for key, path in (("trace", trace_path),
                              ("profile", profile_path)):
                expected = manifest.checksums.get(key)
                if not expected:
                    raise CacheCorruptError(
                        str(path), "no recorded checksum for %r" % key)
                if not verify_checksum(path, expected):
                    raise CacheCorruptError(
                        str(path),
                        "checksum mismatch (expected %s)" % expected)
            try:
                with np.load(trace_path) as arrays:
                    trace = BranchTrace.from_arrays(arrays)
                profile = Profile.from_dict(
                    json.loads(profile_path.read_text()))
            except (OSError, ValueError, KeyError,
                    zipfile.BadZipFile) as error:
                raise CacheCorruptError(
                    str(trace_path),
                    "artifact parse failed: %s" % error) from error
        except (CacheCorruptError, ManifestError) as error:
            self._quarantine_entry(name, paths, error)
            return None, None, None
        return profile, trace, manifest

    def _quarantine_entry(self, name, paths, error):
        """Move a damaged entry aside so it is recomputed exactly once."""
        TELEMETRY.count("runner.cache.corrupt")
        TELEMETRY.event("cache.corrupt", benchmark=name,
                        path=str(paths[0]),
                        error=type(error).__name__,
                        reason=str(error))
        for path in paths:
            quarantine(path, reason=str(error), benchmark=name)

    def _store_cache_entry(self, name, n_runs, trace_path, profile_path,
                           profile, trace, stages):
        """Atomically persist an entry; returns its manifest.

        All three files are written via the crash-safe store; the
        manifest carries the artifact checksums.  An ``OSError`` (full
        disk, permissions) degrades gracefully: the partial entry is
        removed so nothing torn survives, a ``cache.store_failed``
        event records why, and the caller keeps the in-memory result.
        """
        manifest_path = manifest_path_for(trace_path)
        try:
            with _stage(stages, "cache_store", name):
                checksums = {
                    "trace": atomic_write_npz(trace_path,
                                              trace.to_arrays()),
                    "profile": atomic_write_text(
                        profile_path, json.dumps(profile.to_dict())),
                }
            manifest = self._build_manifest(name, n_runs, trace_path,
                                            profile_path, stages,
                                            checksums=checksums)
            manifest.write(manifest_path)
            return manifest
        except OSError as error:
            for path in (trace_path, profile_path, manifest_path):
                try:
                    path.unlink()
                except OSError:
                    pass
            TELEMETRY.count("runner.cache.store_failed")
            TELEMETRY.event("cache.store_failed", benchmark=name,
                            path=str(trace_path), error=str(error))
            return self._build_manifest(name, n_runs, trace_path,
                                        profile_path, stages)

    # -- execution ------------------------------------------------------------

    def run(self, name):
        """Produce (and memoise) the :class:`BenchmarkRun` for ``name``."""
        if name in self._memo:
            return self._memo[name]

        stages = {}
        spec = get_benchmark(name)
        n_runs = spec.runs if self.runs is None else min(self.runs, spec.runs)
        with _stage(stages, "compile", name):
            program = compile_source(spec.source, name=name)

        self._report_stale_versions(name, n_runs, spec.source)
        trace_path, profile_path = self._cache_paths(name, n_runs,
                                                     spec.source)
        profile = None
        trace = None
        manifest = None
        if trace_path is not None:
            with _stage(stages, "cache_load", name):
                profile, trace, manifest = self._load_cache_entry(
                    name, trace_path, profile_path)

        cache_hit = trace is not None and profile is not None
        TELEMETRY.count("runner.cache.hit" if cache_hit
                        else "runner.cache.miss")
        if cache_hit:
            TELEMETRY.event("cache.hit", benchmark=name,
                            path=str(trace_path))
        elif trace_path is None:
            TELEMETRY.event("cache.miss", benchmark=name, path=None)
            profile, trace = self._execute(spec, program, n_runs, stages)
        else:
            TELEMETRY.event("cache.miss", benchmark=name,
                            path=str(trace_path))
            profile, trace, manifest = self._compute_locked(
                spec, program, n_runs, trace_path, profile_path, stages)

        with _stage(stages, "layout", name):
            layout = build_fs_program(program, profile, verify=self.verify)

        if manifest is None:
            manifest = self._build_manifest(name, n_runs, trace_path,
                                            profile_path, stages)

        run = BenchmarkRun(name, spec, program, layout, profile, trace,
                           self.scale, n_runs, manifest=manifest,
                           engine=self.engine)
        self._memo[name] = run
        return run

    def _compute_locked(self, spec, program, n_runs, trace_path,
                        profile_path, stages):
        """Compute + store one entry under its inter-process stem lock.

        The lock serialises concurrent warmers of the *same* benchmark
        (different stems proceed in parallel): the first holder
        computes and stores; later holders find the finished entry on
        re-check and load it, so the work happens once and the entry
        is written exactly once.  A lock that cannot be acquired
        within ``lock_timeout`` (a wedged peer) degrades to an
        uncached in-process compute instead of blocking the campaign.
        """
        name = spec.name
        lock = StemLock(self.cache_dir, trace_path.stem,
                        timeout=self.lock_timeout)
        try:
            with lock:
                profile, trace, manifest = self._load_cache_entry(
                    name, trace_path, profile_path)
                if trace is not None:
                    TELEMETRY.event("cache.hit", benchmark=name,
                                    path=str(trace_path),
                                    after_lock_wait=True)
                    return profile, trace, manifest
                profile, trace = self._execute(spec, program, n_runs,
                                               stages)
                manifest = self._store_cache_entry(
                    name, n_runs, trace_path, profile_path, profile,
                    trace, stages)
                return profile, trace, manifest
        except LockTimeout:
            profile, trace = self._execute(spec, program, n_runs,
                                           stages)
            return profile, trace, None

    def _build_manifest(self, name, n_runs, trace_path, profile_path,
                        stages, checksums=None):
        """The provenance record written beside the cache artifacts."""
        cache_key = trace_path.stem if trace_path is not None else None
        artifacts = {}
        if trace_path is not None:
            artifacts = {"trace": trace_path.name,
                         "profile": profile_path.name}
        return RunManifest(
            benchmark=name,
            cache_key=cache_key,
            format_version=CACHE_FORMAT_VERSION,
            config={"scale": self.scale, "runs": n_runs,
                    "max_instructions": self.max_instructions,
                    "verify": self.verify, "engine": self.engine,
                    "profile_source": self.profile_source},
            git_sha=self._repo_git_sha(),
            stages=stages,
            event_log=self.event_log,
            artifacts=artifacts,
            checksums=checksums,
        )

    def _execute(self, spec, program, n_runs, stages=None):
        """The two VM passes: profile the base program, trace the laid-out
        program, verifying output equality along the way.

        With ``profile_source="static"`` the first pass never invokes
        the profiler: the profile is estimated from the IR, and the
        baseline outputs come from plain (untraced, unprobed) runs of
        the base program.
        """
        if stages is None:
            stages = {}
        suite = spec.input_suite(scale=self.scale, runs=n_runs)
        if self.profile_source == "static":
            from repro.analysis.staticpred import estimate_profile

            with _stage(stages, "staticpred", spec.name):
                profile = estimate_profile(program)
            with _stage(stages, "baseline", spec.name):
                base_outputs = [
                    run_program(program, inputs=streams,
                                max_instructions=self.max_instructions
                                ).output
                    for streams in suite
                ]
        else:
            with _stage(stages, "profile", spec.name):
                profile, base_outputs = profile_program(
                    program, suite,
                    max_instructions=self.max_instructions)
        with _stage(stages, "layout", spec.name):
            layout = build_fs_program(program, profile,
                                      verify=self.verify)

        merged = None
        with _stage(stages, "trace", spec.name):
            for index, streams in enumerate(suite):
                result = run_program(layout.program, inputs=streams,
                                     trace=True,
                                     max_instructions=self.max_instructions)
                if result.output != base_outputs[index]:
                    raise RuntimeError(
                        "layout changed the output of %s run %d"
                        % (spec.name, index))
                if merged is None:
                    merged = result.trace
                else:
                    merged.extend(result.trace)
        return profile, merged

    def run_all(self, names=None, workers=None):
        """Run every benchmark (or ``names``); returns name -> run.

        Args:
            workers: when > 1 and the disk cache is enabled, warm the
                cache with supervised worker processes (per-benchmark
                timeout, bounded retries), then load everything in
                this process.  Serial otherwise.

        Warm failures never abort the sweep: a benchmark whose workers
        kept dying is simply recomputed serially in-process here, and
        :attr:`last_warm_report` says who needed retries or fell
        through.
        """
        from repro.benchmarksuite import BENCHMARK_NAMES
        names = list(names or BENCHMARK_NAMES)
        if workers and workers > 1 and self.cache_dir is not None:
            self._warm_parallel(names, workers)
        return {name: self.run(name) for name in names}

    def _warm_parallel(self, names, workers):
        from repro.resilience.supervisor import run_supervised

        pending = [name for name in names if name not in self._memo]
        if not pending:
            return None
        tasks = [
            (name, (name, self.scale, self.runs, str(self.cache_dir),
                    self.max_instructions, self.profile_source))
            for name in pending
        ]
        # Telemetry-enabled warms are traced across the process
        # boundary: each attempt writes a JSONL shard under
        # <cache>/traces that the merger (and `repro-branches top`)
        # stitches under this runner.warm span.
        trace_dir = None
        if TELEMETRY.enabled:
            from repro.telemetry.tracing import ensure_trace

            ensure_trace(TELEMETRY)   # before the span, so it has an id
            trace_dir = self.cache_dir / "traces"
        with TELEMETRY.span("runner.warm", benchmarks=len(pending),
                            workers=workers):
            report = run_supervised(
                tasks, _warm_cache_entry,
                workers=min(workers, len(pending)),
                timeout=self.warm_timeout, retries=self.warm_retries,
                backoff=0.25, trace_dir=trace_dir)
        self.last_warm_report = report
        if not report.ok:
            TELEMETRY.count("runner.warm.partial_failures")
            TELEMETRY.event("warm.partial_failure",
                            failed=report.failed,
                            degraded=report.degraded)
        return report


def _warm_cache_entry(arguments):
    """Worker: execute one benchmark so its trace cache exists."""
    (name, scale, runs, cache_dir, max_instructions,
     profile_source) = arguments
    runner = SuiteRunner(scale=scale, runs=runs, cache_dir=cache_dir,
                         max_instructions=max_instructions,
                         profile_source=profile_source)
    runner.run(name)
    return name
