"""Benchmark execution and caching for the experiment harness.

For each benchmark the runner performs the paper's methodology:

1. compile the Minic source (the "executable intermediate form"),
2. profile it over the input suite with basic-block probes,
3. recompile with trace selection + layout, setting likely bits,
4. run the laid-out program over the same input suite, collecting the
   evaluation branch trace (the paper profiles and measures on the
   same inputs, which it notes explicitly),
5. simulate the predictors over the trace and size the forward-slot
   expansions.

Steps 2 and 4 dominate the cost, so their outputs (profile JSON and
trace arrays) are cached on disk keyed by benchmark, scale, run count,
and a format version.  Everything else is recomputed deterministically
from those artifacts.
"""

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.benchmarksuite import get_benchmark
from repro.lang import compile_source
from repro.profiling import Profile, profile_program
from repro.traceopt import build_fs_program, fill_forward_slots
from repro.predictors import (
    CounterBTB,
    ForwardSemanticPredictor,
    SimpleBTB,
    simulate,
)
from repro.vm import BranchTrace, run_program

CACHE_FORMAT_VERSION = 1

SLOT_COUNTS = (1, 2, 4, 8)  # the k + l values of Table 5

SCHEMES = ("SBTB", "CBTB", "FS")


class BenchmarkRun:
    """All measured artifacts for one benchmark at one scale."""

    def __init__(self, name, spec, program, layout, profile, trace,
                 scale, runs):
        self.name = name
        self.spec = spec
        self.program = program          # base compiled program
        self.layout = layout            # LayoutResult (FS program inside)
        self.profile = profile
        self.trace = trace              # merged evaluation trace
        self.scale = scale
        self.runs = runs
        self._stats = None
        self._predictions = None
        self._expansions = None

    @property
    def fs_program(self):
        return self.layout.program

    @property
    def stats(self):
        """Trace statistics (Tables 1 and 2)."""
        if self._stats is None:
            self._stats = self.trace.stats()
        return self._stats

    @property
    def source_lines(self):
        return self.spec.source_lines()

    def predictions(self, entries=256, associativity=None,
                    counter_bits=2, threshold=2):
        """PredictionStats per scheme over the evaluation trace.

        The default parameters are the paper's configuration; the
        result for that configuration is memoised.
        """
        default = (entries == 256 and associativity is None
                   and counter_bits == 2 and threshold == 2)
        if default and self._predictions is not None:
            return self._predictions
        results = {
            "SBTB": simulate(SimpleBTB(entries, associativity), self.trace),
            "CBTB": simulate(
                CounterBTB(entries, associativity, counter_bits, threshold),
                self.trace),
            "FS": simulate(
                ForwardSemanticPredictor(program=self.fs_program), self.trace),
        }
        if default:
            self._predictions = results
        return results

    def expansions(self):
        """Table 5's code-size reports, one per slot count."""
        if self._expansions is None:
            self._expansions = {
                n_slots: fill_forward_slots(self.fs_program, n_slots)[1]
                for n_slots in SLOT_COUNTS
            }
        return self._expansions


def default_cache_dir():
    """The trace cache location (REPRO_CACHE_DIR overrides)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".repro_cache"


class SuiteRunner:
    """Runs benchmarks and caches their traces and profiles.

    Args:
        scale: input size multiplier (1.0 = paper-scale).
        runs: cap on profiling runs per benchmark (None = the spec's
            full suite).
        cache_dir: trace cache directory; None = default; False
            disables caching entirely.
        max_instructions: per-run execution budget.
        verify: run the IR verifier on every laid-out program (the
            default; ``--no-verify`` on the CLI turns it off).
    """

    def __init__(self, scale=1.0, runs=None, cache_dir=None,
                 max_instructions=500_000_000, verify=True):
        self.scale = scale
        self.runs = runs
        if cache_dir is False:
            self.cache_dir = None
        else:
            self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.max_instructions = max_instructions
        self.verify = verify
        self._memo = {}

    # -- cache plumbing ------------------------------------------------------

    def _cache_paths(self, name, n_runs, source):
        if self.cache_dir is None:
            return None, None
        # The source hash invalidates cached traces whenever the
        # benchmark program (or the compiler output feeding it) changes.
        digest = hashlib.sha1(source.encode()).hexdigest()[:10]
        stem = "%s-s%s-r%d-v%d-%s" % (name, repr(self.scale), n_runs,
                                      CACHE_FORMAT_VERSION, digest)
        stem = stem.replace(".", "_")
        return (self.cache_dir / (stem + ".npz"),
                self.cache_dir / (stem + ".json"))

    # -- execution ------------------------------------------------------------

    def run(self, name):
        """Produce (and memoise) the :class:`BenchmarkRun` for ``name``."""
        if name in self._memo:
            return self._memo[name]

        spec = get_benchmark(name)
        n_runs = spec.runs if self.runs is None else min(self.runs, spec.runs)
        program = compile_source(spec.source, name=name)

        trace_path, profile_path = self._cache_paths(name, n_runs,
                                                     spec.source)
        profile = None
        trace = None
        if trace_path is not None and trace_path.exists() and profile_path.exists():
            try:
                with np.load(trace_path) as arrays:
                    trace = BranchTrace.from_arrays(arrays)
                profile = Profile.from_dict(
                    json.loads(profile_path.read_text()))
            except Exception:
                trace = None
                profile = None

        if trace is None or profile is None:
            profile, trace = self._execute(spec, program, n_runs)
            if trace_path is not None:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
                np.savez_compressed(trace_path, **trace.to_arrays())
                profile_path.write_text(json.dumps(profile.to_dict()))

        layout = build_fs_program(program, profile, verify=self.verify)
        run = BenchmarkRun(name, spec, program, layout, profile, trace,
                           self.scale, n_runs)
        self._memo[name] = run
        return run

    def _execute(self, spec, program, n_runs):
        """The two VM passes: profile the base program, trace the laid-out
        program, verifying output equality along the way."""
        suite = spec.input_suite(scale=self.scale, runs=n_runs)
        profile, base_outputs = profile_program(
            program, suite, max_instructions=self.max_instructions)
        layout = build_fs_program(program, profile, verify=self.verify)

        merged = None
        for index, streams in enumerate(suite):
            result = run_program(layout.program, inputs=streams, trace=True,
                                 max_instructions=self.max_instructions)
            if result.output != base_outputs[index]:
                raise RuntimeError(
                    "layout changed the output of %s run %d"
                    % (spec.name, index))
            if merged is None:
                merged = result.trace
            else:
                merged.extend(result.trace)
        return profile, merged

    def run_all(self, names=None, workers=None):
        """Run every benchmark (or ``names``); returns name -> run.

        Args:
            workers: when > 1 and the disk cache is enabled, warm the
                cache with a process pool (each worker executes a
                subset of benchmarks and writes its trace files), then
                load everything in this process.  Serial otherwise.
        """
        from repro.benchmarksuite import BENCHMARK_NAMES
        names = list(names or BENCHMARK_NAMES)
        if workers and workers > 1 and self.cache_dir is not None:
            self._warm_parallel(names, workers)
        return {name: self.run(name) for name in names}

    def _warm_parallel(self, names, workers):
        import concurrent.futures

        pending = [name for name in names if name not in self._memo]
        if not pending:
            return
        arguments = [
            (name, self.scale, self.runs, str(self.cache_dir),
             self.max_instructions)
            for name in pending
        ]
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(pending))) as pool:
            # Any worker failure propagates here.
            list(pool.map(_warm_cache_entry, arguments))


def _warm_cache_entry(arguments):
    """Worker: execute one benchmark so its trace cache exists."""
    name, scale, runs, cache_dir, max_instructions = arguments
    runner = SuiteRunner(scale=scale, runs=runs, cache_dir=cache_dir,
                         max_instructions=max_instructions)
    runner.run(name)
    return name
