"""Table 4: branch cost for k + l_bar = 2 and 3, m_bar = 1.

Computed exactly as the paper computes it: the cost equation applied
to each benchmark's measured accuracy per scheme.
"""

from repro.experiments import paper_values
from repro.experiments.report import TableData, mean, std_dev
from repro.pipeline import branch_cost_batch

SCHEMES = ("SBTB", "CBTB", "FS")


def costs_for(run, k_plus_l_bar, m_bar=1.0):
    """(SBTB, CBTB, FS) costs for one benchmark at one pipeline point."""
    predictions = run.predictions()
    return tuple(branch_cost_batch(
        (predictions[scheme].accuracy for scheme in SCHEMES),
        k=k_plus_l_bar, l_bar=0.0, m_bar=m_bar))


def compute(runner, names=None):
    names = names or paper_values.BENCHMARKS
    rows = []
    measured = {2: {s: [] for s in SCHEMES}, 3: {s: [] for s in SCHEMES}}
    for name in names:
        run = runner.run(name)
        kl2 = costs_for(run, 2)
        kl3 = costs_for(run, 3)
        for scheme, value in zip(SCHEMES, kl2):
            measured[2][scheme].append(value)
        for scheme, value in zip(SCHEMES, kl3):
            measured[3][scheme].append(value)
        paper2 = paper_values.TABLE4_KL2[name]
        paper3 = paper_values.TABLE4_KL3[name]
        rows.append([name]
                    + [round(value, 2) for value in kl2 + kl3]
                    + list(paper2) + list(paper3))

    def summary(label, reducer, paper2, paper3):
        return ([label]
                + [round(reducer(measured[2][s]), 2) for s in SCHEMES]
                + [round(reducer(measured[3][s]), 2) for s in SCHEMES]
                + list(paper2) + list(paper3))

    rows.append(summary("Average", mean,
                        paper_values.TABLE4_KL2_AVERAGE,
                        paper_values.TABLE4_KL3_AVERAGE))
    rows.append(summary("Std. dev.", std_dev,
                        ("", "", ""), ("", "", "")))
    return TableData(
        "Table 4: branch cost for k+l_bar = 2 and 3, m_bar = 1 "
        "(measured | paper)",
        ["Benchmark",
         "S@2", "C@2", "FS@2", "S@3", "C@3", "FS@3",
         "pS@2", "pC@2", "pFS@2", "pS@3", "pC@3", "pFS@3"],
        rows,
    )


def scaling_increase(runner, names=None):
    """Average %% cost increase from k+l=2 to k+l=3 per scheme.

    The paper reports 7.7%% (SBTB), 6.9%% (CBTB), 5.3%% (FS) and
    concludes the Forward Semantic scales best.
    """
    names = names or paper_values.BENCHMARKS
    increases = {scheme: [] for scheme in SCHEMES}
    for name in names:
        run = runner.run(name)
        kl2 = costs_for(run, 2)
        kl3 = costs_for(run, 3)
        for scheme, low, high in zip(SCHEMES, kl2, kl3):
            increases[scheme].append(100.0 * (high - low) / low)
    return {scheme: mean(values) for scheme, values in increases.items()}


def render(runner, names=None):
    from repro.experiments.report import render_table
    text = render_table(compute(runner, names))
    increases = scaling_increase(runner, names)
    text += ("\nAverage cost increase from k+l=2 to k+l=3: "
             "SBTB %.1f%%, CBTB %.1f%%, FS %.1f%% "
             "(paper: 7.7%%, 6.9%%, 5.3%%)\n"
             % (increases["SBTB"], increases["CBTB"], increases["FS"]))
    return text
