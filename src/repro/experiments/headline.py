"""The abstract's headline comparison.

"The software-based scheme has a cost of 1.65 cycles/branch vs. 1.68
for the best hardware scheme for a highly pipelined processor
(11-stage pipeline); 1.19 vs. 1.23 for a moderately pipelined
processor (5-stage pipeline)."

Working back from the published numbers and the Table 3 averages, the
two design points correspond to flush penalties k + l_bar + m_bar = 3
(moderate) and 10 (deep).
"""

from repro.experiments import paper_values, table3
from repro.pipeline import branch_cost


def compute(runner, names=None):
    accuracies = table3.average_accuracies(runner, names)
    results = {}
    for label, paper in paper_values.HEADLINE.items():
        flush = paper["flush"]
        fs_cost = branch_cost(accuracies["FS"], k=flush, l_bar=0, m_bar=0)
        hardware = {
            scheme: branch_cost(accuracies[scheme], k=flush, l_bar=0, m_bar=0)
            for scheme in ("SBTB", "CBTB")
        }
        best_scheme = min(hardware, key=hardware.get)
        results[label] = {
            "flush": flush,
            "FS": fs_cost,
            "best-hardware": hardware[best_scheme],
            "best-hardware-scheme": best_scheme,
            "paper-FS": paper["FS"],
            "paper-best-hardware": paper["best-hardware"],
        }
    return results


def render(runner, names=None):
    results = compute(runner, names)
    lines = ["Headline comparison (cycles/branch, suite-average A)",
             "====================================================="]
    for label, row in results.items():
        lines.append(
            "%-9s (flush=%2d): FS %.2f vs best hardware (%s) %.2f   "
            "[paper: %.2f vs %.2f]"
            % (label, row["flush"], row["FS"],
               row["best-hardware-scheme"], row["best-hardware"],
               row["paper-FS"], row["paper-best-hardware"]))
    return "\n".join(lines) + "\n"
