"""Full-report generation: every table and figure in one document."""

from repro.experiments import (
    figures,
    headline,
    storage,
    table1,
    table2,
    table3,
    table4,
    table5,
)

_SECTIONS = (
    ("Table 1 — benchmark characteristics", table1),
    ("Table 2 — branch statistics", table2),
    ("Table 3 — branch prediction performance", table3),
    ("Table 4 — branch cost at k+l_bar = 2 and 3", table4),
    ("Table 5 — forward-slot code expansion", table5),
    ("Figures 3 and 4 — cost vs pipeline depth", figures),
    ("Headline — the abstract's comparison", headline),
    ("Storage — the silicon argument", storage),
)


def generate(runner, names=None):
    """Render the complete reproduction report as markdown text."""
    parts = [
        "# Reproduction report",
        "",
        "Hwu, Conte & Chang, *Comparing Software and Hardware Schemes "
        "For Reducing the Cost of Branches* (ISCA 1989).",
        "",
        "Input scale %s, %s benchmark runs per spec." % (
            runner.scale,
            "default" if runner.runs is None else runner.runs),
        "",
    ]
    for title, module in _SECTIONS:
        parts.append("## %s" % title)
        parts.append("")
        parts.append("```")
        parts.append(module.render(runner, names).rstrip())
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def render(runner, names=None):
    return generate(runner, names)
