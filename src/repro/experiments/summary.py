"""Full-report generation: every table and figure in one document."""

from repro.experiments import (
    figures,
    headline,
    storage,
    table1,
    table2,
    table3,
    table4,
    table5,
)

SECTIONS = (
    ("Table 1 — benchmark characteristics", table1),
    ("Table 2 — branch statistics", table2),
    ("Table 3 — branch prediction performance", table3),
    ("Table 4 — branch cost at k+l_bar = 2 and 3", table4),
    ("Table 5 — forward-slot code expansion", table5),
    ("Figures 3 and 4 — cost vs pipeline depth", figures),
    ("Headline — the abstract's comparison", headline),
    ("Storage — the silicon argument", storage),
)


def generate(runner, names=None, checkpoint=None):
    """Render the complete reproduction report as markdown text.

    With a :class:`~repro.resilience.checkpoint.SweepCheckpoint`, each
    section's rendered body is persisted as soon as it is computed and
    replayed from disk on the next attempt, so a killed campaign
    resumes at the first incomplete section.
    """
    parts = [
        "# Reproduction report",
        "",
        "Hwu, Conte & Chang, *Comparing Software and Hardware Schemes "
        "For Reducing the Cost of Branches* (ISCA 1989).",
        "",
        "Input scale %s, %s benchmark runs per spec." % (
            runner.scale,
            "default" if runner.runs is None else runner.runs),
        "",
    ]
    done = checkpoint.load() if checkpoint is not None else {}
    for title, module in SECTIONS:
        if title in done:
            body = done[title]
        else:
            body = module.render(runner, names).rstrip()
            if checkpoint is not None:
                checkpoint.record(title, body)
        parts.append("## %s" % title)
        parts.append("")
        parts.append("```")
        parts.append(body)
        parts.append("```")
        parts.append("")
    if checkpoint is not None:
        checkpoint.clear()
    return "\n".join(parts)


def render(runner, names=None):
    return generate(runner, names)
