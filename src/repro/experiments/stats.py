"""Observability reports: ``stats``, ``profile``, and ``cache``.

Three CLI-facing renderers built on :mod:`repro.telemetry`:

* :func:`render_stats` — the mispredict attribution report: per-scheme,
  per-static-site prediction accuracy ranked worst-first with source
  lines (``repro-branches stats <benchmark>``; ``--json`` for the
  machine-readable payload);
* :func:`render_profile` — per-stage wall-clock and throughput for a
  benchmark run, read from the run manifest and the live telemetry
  registry (``repro-branches profile <benchmark>``);
* :func:`render_cache` — the trace-cache inventory with artifact sizes
  and manifest provenance (``repro-branches cache``).
"""

import json

from repro.telemetry.attribution import (
    attribution_report,
    render_attribution,
)
from repro.telemetry.core import TELEMETRY


def _target_names(names):
    """The benchmarks a site-level report covers (default: wc)."""
    return list(names) if names else ["wc"]


def render_stats(runner, names=None, limit=25, as_json=False):
    """Mispredict attribution for one (or several) benchmarks.

    With ``--telemetry --json`` the payload is wrapped with the live
    registry snapshot, whose histograms carry the reservoir
    percentiles (p50/p95/p99) — plain ``--json`` keeps the bare
    attribution shape.
    """
    payloads = [attribution_report(runner.run(name))
                for name in _target_names(names)]
    if as_json:
        data = payloads[0] if len(payloads) == 1 else payloads
        if TELEMETRY.enabled:
            data = {"report": data, "telemetry": TELEMETRY.snapshot()}
        return json.dumps(data, indent=2, sort_keys=True) + "\n"
    return "\n".join(render_attribution(payload, limit=limit)
                     for payload in payloads)


def _format_bytes(size):
    for unit in ("B", "KiB", "MiB"):
        if size < 1024 or unit == "MiB":
            return ("%d %s" % (size, unit) if unit == "B"
                    else "%.1f %s" % (size, unit))
        size /= 1024.0
    return "%d B" % size  # pragma: no cover - loop always returns


def render_cache(cache_dir=None, as_json=False):
    """Inventory of cached artifacts with manifest metadata.

    Tolerates a damaged cache directory: entries whose manifest is
    malformed or missing are listed with their ``status`` instead of
    crashing the listing, and quarantined ``*.corrupt`` artifacts are
    counted in the footer.
    """
    from repro.experiments.runner import default_cache_dir, list_cache_entries
    from repro.resilience.store import list_quarantined

    entries = list_cache_entries(cache_dir)
    quarantined = list_quarantined(cache_dir or default_cache_dir())
    if as_json:
        payload = {
            "entries": [dict(entry,
                             manifest=(entry["manifest"].to_dict()
                                       if entry["manifest"] else None))
                        for entry in entries],
            "quarantined": [str(path) for path in quarantined],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if not entries and not quarantined:
        return "trace cache is empty\n"
    lines = ["%-42s %10s %4s  %-10s %s"
             % ("cache entry", "size", "ver", "created", "run")]
    total = 0
    for entry in entries:
        total += entry["size_bytes"]
        manifest = entry["manifest"]
        created = ""
        run_summary = "(%s)" % entry["status"] \
            if entry["status"] != "ok" else "(no manifest)"
        if manifest is not None:
            created = (manifest.created or "")[:10]
            sha = (manifest.git_sha or "")[:8] or "no-git"
            run_summary = "scale %s, %s runs, %s, %.2fs, %s" % (
                manifest.config.get("scale", "?"),
                manifest.config.get("runs", "?"),
                manifest.config.get("engine", "auto"),
                manifest.total_stage_seconds, sha)
            if entry["status"] != "ok":
                run_summary = "(%s) %s" % (entry["status"], run_summary)
        version = ("v%d" % entry["format_version"]
                   if entry["format_version"] is not None else "?")
        if not entry["current"]:
            version += "!"
        lines.append("%-42s %10s %4s  %-10s %s" % (
            entry["stem"], _format_bytes(entry["size_bytes"]), version,
            created, run_summary))
    footer = ("%d entr%s, %s total ('!' marks stale format versions)"
              % (len(entries), "y" if len(entries) == 1 else "ies",
                 _format_bytes(total)))
    if quarantined:
        footer += ", %d quarantined artifact%s" % (
            len(quarantined), "" if len(quarantined) == 1 else "s")
    lines.append(footer)
    return "\n".join(lines) + "\n"


def render_profile(runner, names=None):
    """Per-stage wall-clock of benchmark runs, plus live counters.

    Forces the run (cached stages are near-zero and say so), then
    reports the manifest's stage seconds; when the telemetry registry
    is enabled its span histograms and counters are appended, covering
    prediction/expansion work the manifest does not time.
    """
    lines = []
    for name in _target_names(names):
        run = runner.run(name)
        run.predictions()
        run.expansions()
        lines.append("profile of %s (scale %s, %d runs)"
                     % (name, run.scale, run.runs))
        manifest = run.manifest
        if manifest is None or not manifest.stages:
            lines.append("  (no stage timings: caching disabled)")
        else:
            total = manifest.total_stage_seconds
            for stage, seconds in sorted(manifest.stages.items(),
                                         key=lambda item: -item[1]):
                share = 100.0 * seconds / total if total else 0.0
                lines.append("  %-12s %9.4fs  %5.1f%%"
                             % (stage, seconds, share))
            lines.append("  %-12s %9.4fs" % ("total", total))
            if manifest.event_log:
                lines.append("  event log: %s" % manifest.event_log)
        lines.append("")

    if TELEMETRY.enabled:
        snapshot = TELEMETRY.snapshot()
        spans = {name[len("span."):]: data
                 for name, data in snapshot["histograms"].items()
                 if name.startswith("span.")}
        if spans:
            lines.append("telemetry spans (this process):")
            for name, data in sorted(spans.items(),
                                     key=lambda item: -item[1]["total"]):
                lines.append("  %-20s n=%-4d total %8.4fs  mean %8.4fs"
                             % (name, data["count"], data["total"],
                                data["mean"]))
        if snapshot["counters"]:
            lines.append("telemetry counters:")
            for name, value in sorted(snapshot["counters"].items()):
                lines.append("  %-28s %d" % (name, value))
    return "\n".join(lines) + "\n"
