"""Table 5: code-size increase from forward slots, k + l = 1, 2, 4, 8."""

from repro.experiments import paper_values
from repro.experiments.report import TableData, mean, std_dev
from repro.experiments.runner import SLOT_COUNTS


def compute(runner, names=None):
    names = names or paper_values.TABLE5_BENCHMARKS
    rows = []
    measured = {n: [] for n in SLOT_COUNTS}
    for name in names:
        run = runner.run(name)
        expansions = run.expansions()
        values = [100.0 * expansions[n].expansion_fraction
                  for n in SLOT_COUNTS]
        for n, value in zip(SLOT_COUNTS, values):
            measured[n].append(value)
        rows.append([name]
                    + [round(value, 2) for value in values]
                    + list(paper_values.TABLE5[name]))
    rows.append(["Average"]
                + [round(mean(measured[n]), 2) for n in SLOT_COUNTS]
                + list(paper_values.TABLE5_AVERAGE))
    rows.append(["Std. dev."]
                + [round(std_dev(measured[n]), 2) for n in SLOT_COUNTS]
                + ["", "", "", ""])
    return TableData(
        "Table 5: % code-size increase vs k+l (measured | paper)",
        ["Benchmark", "k+l=1", "k+l=2", "k+l=4", "k+l=8",
         "p.1", "p.2", "p.4", "p.8"],
        rows,
    )


def render(runner, names=None):
    from repro.experiments.report import render_table
    return render_table(compute(runner, names))
