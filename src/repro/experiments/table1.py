"""Table 1: benchmark characteristics."""

from repro.experiments import paper_values
from repro.experiments.report import TableData


def compute(runner, names=None):
    """Measured benchmark characteristics next to the paper's."""
    names = names or paper_values.BENCHMARKS
    rows = []
    for name in names:
        run = runner.run(name)
        paper = paper_values.TABLE1[name]
        stats = run.stats
        rows.append([
            name,
            run.source_lines,
            run.runs,
            stats.total_instructions,
            round(100.0 * stats.control_fraction, 1),
            paper[0], paper[1],
            "%.2gM" % paper[2],
            paper[3],
        ])
    return TableData(
        "Table 1: benchmark characteristics (measured | paper)",
        ["Benchmark", "Lines", "Runs", "Inst.", "Control%",
         "p.Lines", "p.Runs", "p.Inst", "p.Ctl%"],
        rows,
        notes=[
            "measured Lines are Minic source lines; the paper counts C lines",
            "measured Inst. are scaled down (interpreted VM); see DESIGN.md",
        ],
    )


def render(runner, names=None):
    from repro.experiments.report import render_table
    return render_table(compute(runner, names))
