"""The paper's published numbers, transcribed from Tables 1-5.

Used to print measured-vs-paper columns and by the shape-check
benchmarks (we compare orderings and magnitudes, not absolute values —
the substrate differs, as DESIGN.md explains).
"""

BENCHMARKS = ("cccp", "cmp", "compress", "grep", "lex", "make", "tar",
              "tee", "wc", "yacc")

# Table 1: Lines, Runs, dynamic instructions (millions), Control %.
TABLE1 = {
    "cccp": (4660, 20, 11.7, 19),
    "cmp": (371, 16, 2.2, 22),
    "compress": (1941, 20, 19.6, 16),
    "grep": (1302, 20, 47.1, 36),
    "lex": (3251, 4, 3052.6, 37),
    "make": (7043, 20, 152.6, 21),
    "tee": (1063, 18, 0.43, 40),
    "tar": (3186, 14, 11.0, 14),
    "wc": (345, 20, 7.8, 28),
    "yacc": (3333, 8, 313.4, 25),
}

# Table 2: conditional taken %, not-taken %, unconditional known %,
# unknown %.
TABLE2 = {
    "cccp": (31, 69, 81, 19),
    "cmp": (20, 80, 100, 0),
    "compress": (37, 63, 100, 0),
    "grep": (5, 95, 100, 0),
    "lex": (49, 51, 100, 0),
    "make": (49, 51, 100, 0),
    "tar": (89, 11, 100, 0),
    "tee": (44, 56, 100, 0),
    "wc": (24, 76, 100, 0),
    "yacc": (47, 53, 100, 0),
}
TABLE2_AVERAGE = (40, 61, 98, 1.9)

# Table 3: rho_SBTB, A_SBTB %, rho_CBTB, A_CBTB %, A_FS %.
TABLE3 = {
    "cccp": (0.57, 90.7, 0.018, 91.5, 89.6),
    "cmp": (0.70, 97.1, 0.0032, 98.0, 98.6),
    "compress": (0.49, 87.8, 0.0053, 86.1, 89.1),
    "grep": (0.76, 93.7, 0.0006, 95.9, 96.0),
    "lex": (0.36, 98.2, 0.0002, 97.7, 98.0),
    "make": (0.42, 90.5, 0.012, 92.5, 94.4),
    "tar": (0.11, 97.9, 0.005, 98.4, 98.7),
    "tee": (0.39, 84.4, 0.0058, 88.7, 92.2),
    "wc": (0.54, 85.4, 0.0008, 85.7, 90.4),
    "yacc": (0.46, 88.9, 0.0012, 89.1, 88.3),
}
TABLE3_AVERAGE = (0.48, 91.5, 0.0053, 92.4, 93.5)
TABLE3_STD = (0.18, 5.06, 0.0058, 4.92, 4.13)

# Table 4: branch cost triples (SBTB, CBTB, FS) at k+l_bar = 2 and 3
# (m_bar = 1).
TABLE4_KL2 = {
    "cccp": (1.19, 1.17, 1.21),
    "cmp": (1.06, 1.04, 1.03),
    "compress": (1.24, 1.28, 1.22),
    "grep": (1.13, 1.08, 1.08),
    "lex": (1.04, 1.06, 1.04),
    "make": (1.19, 1.15, 1.11),
    "tar": (1.04, 1.03, 1.03),
    "tee": (1.31, 1.23, 1.16),
    "wc": (1.29, 1.29, 1.19),
    "yacc": (1.22, 1.22, 1.23),
}
TABLE4_KL3 = {
    "cccp": (1.28, 1.26, 1.31),
    "cmp": (1.09, 1.06, 1.04),
    "compress": (1.37, 1.42, 1.33),
    "grep": (1.19, 1.12, 1.12),
    "lex": (1.06, 1.07, 1.06),
    "make": (1.29, 1.23, 1.17),
    "tar": (1.06, 1.05, 1.04),
    "tee": (1.47, 1.34, 1.23),
    "wc": (1.44, 1.43, 1.29),
    "yacc": (1.33, 1.33, 1.35),
}
TABLE4_KL2_AVERAGE = (1.17, 1.15, 1.13)
TABLE4_KL3_AVERAGE = (1.26, 1.23, 1.19)
# The average cost increase from k+l=2 to k+l=3, per scheme (Section 3).
SCALING_INCREASE = {"SBTB": 7.7, "CBTB": 6.9, "FS": 5.3}

# Table 5: % code-size increase at k+l = 1, 2, 4, 8.  Unlike Tables
# 1-4, the paper's Table 5 also lists eqn and espresso.
TABLE5_BENCHMARKS = ("cccp", "cmp", "compress", "eqn", "espresso",
                     "grep", "lex", "make", "tar", "tee", "wc", "yacc")
TABLE5 = {
    "eqn": (3.50, 7.44, 14.87, 44.26),
    "espresso": (4.19, 8.51, 17.82, 39.28),
    "cccp": (2.79, 5.80, 11.75, 29.57),
    "cmp": (1.87, 3.74, 7.48, 14.96),
    "compress": (2.10, 4.15, 8.82, 20.26),
    "grep": (1.55, 3.36, 6.96, 15.81),
    "lex": (5.68, 11.34, 24.08, 53.73),
    "make": (3.93, 7.96, 16.35, 37.76),
    "tar": (2.82, 5.89, 12.18, 27.17),
    "tee": (1.29, 2.52, 5.34, 10.75),
    "wc": (1.70, 3.41, 8.52, 19.00),
    "yacc": (7.41, 15.43, 35.21, 82.92),
}
TABLE5_AVERAGE = (3.24, 6.61, 14.12, 32.96)  # includes eqn + espresso

# Abstract headline: cycles/branch, software scheme vs best hardware
# scheme, for a moderately (5-stage) and highly (11-stage) pipelined
# processor.
HEADLINE = {
    "5-stage": {"FS": 1.19, "best-hardware": 1.23, "flush": 3},
    "11-stage": {"FS": 1.65, "best-hardware": 1.68, "flush": 10},
}
