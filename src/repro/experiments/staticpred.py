"""Profile-free prediction quality: static vs measured profiles.

Renders the agreement of the Ball-Larus/Wu-Larus static predictor
with the measured profiles the paper's software schemes normally use:
per-benchmark execution-weighted direction and taken-rate agreement,
plus pooled per-heuristic hit rates.  Run it with

    repro-branches staticpred

The measured side reuses the runner's cached profiles, so the only
extra work is the (cheap) static analysis.
"""

from repro.analysis.staticpred import compare_to_profile, predict_branches
from repro.experiments.report import TableData, render_table


def compute(runner, names=None):
    """(per-benchmark TableData, per-heuristic TableData, overall)."""
    from repro.analysis.staticpred.evaluate import AgreementReport
    from repro.benchmarksuite import BENCHMARK_NAMES

    names = names or BENCHMARK_NAMES
    rows = []
    pooled = []
    for name in names:
        run = runner.run(name)
        report = compare_to_profile(run.program, run.profile, name,
                                    predict_branches(run.program))
        pooled.extend(report.sites)
        rows.append([
            name,
            len(report.sites),
            report.total_execs,
            round(100.0 * report.direction_agreement, 1),
            round(100.0 * report.taken_rate_agreement, 1),
        ])
    overall = AgreementReport("overall", pooled)
    rows.append([
        "overall",
        len(overall.sites),
        overall.total_execs,
        round(100.0 * overall.direction_agreement, 1),
        round(100.0 * overall.taken_rate_agreement, 1),
    ])
    benchmarks = TableData(
        "Static prediction vs measured profiles "
        "(execution-weighted agreement)",
        ["Benchmark", "Sites", "Execs", "Direction%", "TakenRate%"],
        rows,
        notes=[
            "Direction%: predicted direction matches the measured "
            "majority direction",
            "TakenRate%: 100 * (1 - |p_static - p_measured|); the "
            "profile-free gate needs overall >= 70",
        ],
    )

    heuristic_rows = [
        [heuristic, sites, round(100.0 * rate, 1)]
        for heuristic, (sites, rate)
        in overall.heuristic_hit_rates().items()
    ]
    heuristics = TableData(
        "Per-heuristic hit rates (pooled over the suite)",
        ["Heuristic", "Sites", "Hit%"],
        heuristic_rows,
        notes=["hit: the heuristic's vote matches the measured "
               "majority direction, weighted by executions"],
    )
    return benchmarks, heuristics, overall


def render(runner, names=None):
    benchmarks, heuristics, _ = compute(runner, names)
    return render_table(benchmarks) + "\n" + render_table(heuristics)
