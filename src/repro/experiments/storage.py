"""Storage comparison: the conclusion's silicon argument as a table.

Not a numbered table in the paper, but the closing argument: BTB
schemes consume on-chip area that grows linearly with k, while the
Forward Semantic spends only instruction memory (its forward slots).
"""

from repro.experiments import paper_values
from repro.experiments.report import TableData, mean
from repro.pipeline import compare_storage

KS = (1, 2, 4, 8)


def compute(runner, names=None):
    names = names or paper_values.BENCHMARKS
    rows = []
    for k in KS:
        fs_bits = []
        sbtb_bits = cbtb_bits = None
        for name in names:
            run = runner.run(name)
            expansions = run.expansions()
            costs = compare_storage(expansions[k], entries=256, k=k)
            sbtb_bits = costs["SBTB"].on_chip_bits
            cbtb_bits = costs["CBTB"].on_chip_bits
            fs_bits.append(costs["FS"].instruction_memory_bits)
        rows.append([
            "k+l=%d" % k,
            round(sbtb_bits / 1024, 1),
            round(cbtb_bits / 1024, 1),
            round(mean(fs_bits) / 1024, 2),
            round(max(fs_bits) / 1024, 2),
        ])
    return TableData(
        "Storage cost of each scheme (256-entry BTBs, 32-bit words)",
        ["Design point", "SBTB on-chip Kb", "CBTB on-chip Kb",
         "FS instr-mem Kb (avg)", "FS (max)"],
        rows,
        notes=[
            "BTB entries hold tag + target + k target instructions "
            "(+ counter for the CBTB)",
            "the Forward Semantic needs no on-chip prediction storage; "
            "its cost is the forward-slot code expansion",
        ],
    )


def render(runner, names=None):
    from repro.experiments.report import render_table
    return render_table(compute(runner, names))
