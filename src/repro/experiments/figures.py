"""Figures 3 and 4: branch cost vs l_bar + m_bar for k = 1, 2, 4, 8.

Each figure plots three curves (SBTB, CBTB, FS) of the cost equation
evaluated at the suite-average accuracy of Table 3, over the range of
decode+execute flush penalties.  The paper's qualitative claims:

* cost grows linearly in l_bar + m_bar for every scheme;
* deeper fetch pipelines (larger k) raise cost and widen the gaps;
* the scheme order is FS <= CBTB <= SBTB throughout (at the averages).
"""

from repro.experiments import table3
from repro.experiments.report import render_series_plot
from repro.pipeline import branch_cost

FIGURE_KS = (1, 2, 4, 8)
LM_RANGE = tuple(range(0, 10))


def compute(runner, names=None, ks=FIGURE_KS, lm_values=LM_RANGE):
    """Series per k: {k: {scheme: [(l_bar+m_bar, cost), ...]}}."""
    accuracies = table3.average_accuracies(runner, names)
    figures = {}
    for k in ks:
        figures[k] = {
            scheme: [(lm, branch_cost(accuracy, k=k, l_bar=lm, m_bar=0.0))
                     for lm in lm_values]
            for scheme, accuracy in accuracies.items()
        }
    return figures


def render(runner, names=None):
    figures = compute(runner, names)
    parts = []
    for k, series in figures.items():
        figure = "Figure 3" if k in (1, 2) else "Figure 4"
        title = "%s: branch cost vs l_bar+m_bar, k = %d" % (figure, k)
        # Stable legend order matching the paper's line styles.
        ordered = {"SBTB": series["SBTB"], "CBTB": series["CBTB"],
                   "FS": series["FS"]}
        parts.append(render_series_plot(
            ordered, x_label="l_bar + m_bar", y_label="cycles/branch",
            title=title))
        rows = ["  l+m " + "".join("%9s" % scheme for scheme in ordered)]
        for index, lm in enumerate(LM_RANGE):
            rows.append("  %3d " + "".join(
                "%9.3f" % ordered[scheme][index][1] for scheme in ordered))
            rows[-1] = rows[-1] % lm
        parts.append("\n".join(rows) + "\n")
    return "\n".join(parts)
