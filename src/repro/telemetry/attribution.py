"""Mispredict attribution: which static branch sites cost each scheme.

Table 3 reports one accuracy number per scheme per benchmark; this
module breaks that number apart.  For every static branch site in the
laid-out (Forward Semantic) program it simulates all three schemes over
the evaluation trace and reports per-site accuracy, ranked worst-first
by total mispredictions — the view that explains *why* one scheme beats
another on a benchmark (a handful of unstable conditionals usually
carry the whole gap).

Sites map back to Minic source lines through the line table the code
generator records on the program and the layout pass carries through
block reordering (:attr:`repro.isa.program.Program.lines`), so each row
names the function and source line responsible.

Exposed on the CLI as ``repro-branches stats <benchmark>`` (text) and
``--json`` (machine-readable).
"""

from repro.predictors.base import site_statistics
from repro.vm.tracing import BranchClass

#: The scheme order used in every report row.
SCHEMES = ("SBTB", "CBTB", "FS")


def _paper_predictors(fs_program, entries=256, associativity=None,
                      counter_bits=2, threshold=2):
    """Fresh predictor instances in the paper's configuration."""
    from repro.predictors import (
        CounterBTB,
        ForwardSemanticPredictor,
        SimpleBTB,
    )

    return {
        "SBTB": SimpleBTB(entries, associativity),
        "CBTB": CounterBTB(entries, associativity, counter_bits, threshold),
        "FS": ForwardSemanticPredictor(program=fs_program),
    }


def attribute_trace(trace, fs_program, predictors=None,
                    old_address_of=None, base_program=None):
    """Per-site, per-scheme accuracy over ``trace``.

    Args:
        trace: the evaluation :class:`~repro.vm.tracing.BranchTrace`.
        fs_program: the laid-out program the trace was collected on
            (sites index into it; its line table supplies source
            lines).
        predictors: optional mapping scheme name -> fresh predictor;
            defaults to the paper's configuration.
        old_address_of: the layout pass's new-address -> old-address
            table.  Function names are resolved on ``base_program``
            through it when both are given: trace layout interleaves
            functions, so :meth:`Program.function_of` is only reliable
            on the pre-layout program, whose emission order is
            contiguous per function.
        base_program: the pre-layout program matching
            ``old_address_of``.

    Returns:
        list of site dicts ranked worst-first (most total
        mispredictions across schemes), each::

            {"site": int, "function": str|None, "line": int|None,
             "class": str, "executions": int, "taken_fraction": float,
             "accuracy": {scheme: float}, "mispredictions": {scheme: int},
             "worst_scheme": str}
    """
    if predictors is None:
        predictors = _paper_predictors(fs_program)

    per_scheme = {name: site_statistics(predictor, trace)
                  for name, predictor in predictors.items()}

    # One pass over the trace for site metadata (class, taken mix).
    classes = {}
    taken_counts = {}
    executions = {}
    for site, branch_class, taken, _, _ in trace.records():
        if branch_class == BranchClass.RETURN:
            continue
        classes.setdefault(site, branch_class)
        executions[site] = executions.get(site, 0) + 1
        if taken:
            taken_counts[site] = taken_counts.get(site, 0) + 1

    def function_of(site):
        if old_address_of is not None and base_program is not None:
            old_address = (old_address_of[site]
                           if site < len(old_address_of) else None)
            if old_address is None:
                return None
            return base_program.function_of(old_address)
        return fs_program.function_of(site)

    lines = getattr(fs_program, "lines", {})
    rows = []
    for site, execs in executions.items():
        accuracy = {}
        mispredictions = {}
        for name in predictors:
            entry = per_scheme[name].get(site)
            if entry is None:
                accuracy[name] = None
                mispredictions[name] = 0
            else:
                accuracy[name] = entry[1] / entry[0]
                mispredictions[name] = entry[0] - entry[1]
        worst = max(mispredictions, key=lambda name: mispredictions[name])
        rows.append({
            "site": site,
            "function": function_of(site),
            "line": lines.get(site),
            "class": BranchClass.NAMES[classes[site]],
            "executions": execs,
            "taken_fraction": taken_counts.get(site, 0) / execs,
            "accuracy": accuracy,
            "mispredictions": mispredictions,
            "worst_scheme": worst,
        })
    rows.sort(key=lambda row: (-sum(row["mispredictions"].values()),
                               row["site"]))
    return rows


def attribution_report(run, predictors=None):
    """The full attribution payload for one benchmark run.

    ``run`` is a :class:`repro.experiments.runner.BenchmarkRun`; the
    returned dict is the machine-readable (``--json``) form.
    """
    sites = attribute_trace(run.trace, run.fs_program,
                            predictors=predictors,
                            old_address_of=run.layout.old_address_of,
                            base_program=run.program)
    totals = {
        scheme: {
            "mispredictions": sum(row["mispredictions"].get(scheme, 0)
                                  for row in sites),
            "executions": sum(row["executions"] for row in sites
                              if row["accuracy"].get(scheme) is not None),
        }
        for scheme in SCHEMES
    }
    for scheme, entry in totals.items():
        executions = entry["executions"]
        entry["accuracy"] = (
            (executions - entry["mispredictions"]) / executions
            if executions else 0.0)
    return {
        "benchmark": run.name,
        "scale": run.scale,
        "runs": run.runs,
        "records": len(run.trace),
        "schemes": list(SCHEMES),
        "totals": totals,
        "sites": sites,
    }


def _format_accuracy(value):
    return "     -" if value is None else "%6.2f" % (100.0 * value)


def render_attribution(data, limit=25):
    """ASCII rendering of an :func:`attribution_report` payload."""
    lines = [
        "Mispredict attribution — %s (%d records, scale %s, %d runs)"
        % (data["benchmark"], data["records"], data["scale"],
           data["runs"]),
        "per-scheme accuracy (%): " + "  ".join(
            "%s %.2f" % (scheme, 100.0 * data["totals"][scheme]["accuracy"])
            for scheme in data["schemes"]),
        "",
        "%8s  %-16s %6s  %-22s %9s %7s  %s  %s" % (
            "site", "function", "line", "class", "execs", "taken%",
            "  ".join("%6s" % scheme for scheme in data["schemes"]),
            "worst"),
    ]
    shown = data["sites"][:limit]
    for row in shown:
        lines.append("%8d  %-16s %6s  %-22s %9d %6.1f%%  %s  %s" % (
            row["site"],
            (row["function"] or "?")[:16],
            row["line"] if row["line"] is not None else "?",
            row["class"],
            row["executions"],
            100.0 * row["taken_fraction"],
            "  ".join(_format_accuracy(row["accuracy"].get(scheme))
                      for scheme in data["schemes"]),
            row["worst_scheme"],
        ))
    remaining = len(data["sites"]) - len(shown)
    if remaining > 0:
        lines.append("... %d more sites" % remaining)
    lines.append("")
    lines.append("ranked worst-first by total mispredictions across "
                 "schemes; accuracy columns are per-scheme percent "
                 "correct at that site")
    return "\n".join(lines) + "\n"
