"""Event sinks for the telemetry registry.

Two implementations cover the two consumers:

* :class:`InMemoryAggregator` keeps events in a list — tests and the
  ``profile`` CLI subcommand inspect it directly;
* :class:`JsonlSink` appends one JSON object per line to an event log —
  the durable record a run manifest points at.

Sinks receive plain dicts (already carrying ``type``/``name``) and
stamp a wall-clock ``ts`` so logs from different stages interleave
meaningfully.
"""

import json
import threading
import time


class Sink:
    """Event consumer protocol.

    Sinks are context managers: ``with JsonlSink(path) as sink: ...``
    guarantees :meth:`close` runs however the block exits, which is
    how the CLI and worker children register cleanup.
    """

    def emit(self, event):
        raise NotImplementedError

    def flush(self):
        """Push buffered events to durable storage (no-op by default)."""

    def close(self):
        """Flush and release resources (no-op by default)."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False


class InMemoryAggregator(Sink):
    """Collects events in memory; the test and `profile` sink."""

    def __init__(self):
        self._lock = threading.Lock()
        self.events = []

    def emit(self, event):
        with self._lock:
            self.events.append(dict(event))

    def named(self, name):
        """All events with the given ``name``, in emission order."""
        with self._lock:
            return [event for event in self.events
                    if event.get("name") == name]

    def of_type(self, event_type):
        with self._lock:
            return [event for event in self.events
                    if event.get("type") == event_type]

    def clear(self):
        with self._lock:
            self.events = []

    def __len__(self):
        with self._lock:
            return len(self.events)

    def __repr__(self):
        return "InMemoryAggregator(%d events)" % len(self)


class JsonlSink(Sink):
    """Appends events to a JSON-lines file, one object per line.

    The file is opened lazily on the first event (so enabling telemetry
    without emitting anything leaves no empty file) and parent
    directories are created as needed.

    The sink is crash-safe: the file is opened **line-buffered**, so
    every complete event reaches the OS as soon as its line is
    written, and span events additionally :meth:`flush` explicitly on
    emission.  A worker SIGKILLed mid-write therefore loses at most
    the one partial trailing line, which
    :func:`read_jsonl_tolerant` (and the shard merger built on it)
    skips instead of crashing on.
    """

    def __init__(self, path):
        from pathlib import Path

        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = None

    def emit(self, event):
        line = json.dumps(dict(event, ts=time.time()), sort_keys=True)
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", buffering=1)
            self._handle.write(line + "\n")
            if event.get("type") == "span":
                self._handle.flush()

    def flush(self):
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self):
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __repr__(self):
        return "JsonlSink(%r)" % str(self.path)


def read_jsonl(path):
    """Parse an event log written by :class:`JsonlSink`."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def read_jsonl_tolerant(path):
    """Parse an event log, skipping torn lines.

    Returns ``(events, torn)``: the events that parsed, and the number
    of lines that did not — a killed writer leaves at most one partial
    trailing line, but the reader tolerates damage anywhere so a
    merged view over many shards never dies on one bad shard.
    A missing file reads as empty (a worker may have been killed
    before its lazily-opened shard ever existed).
    """
    events = []
    torn = 0
    try:
        with open(path) as handle:
            lines = handle.read().splitlines()
    except OSError:
        return events, torn
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            torn += 1
            continue
        if isinstance(event, dict):
            events.append(event)
        else:
            torn += 1
    return events, torn
