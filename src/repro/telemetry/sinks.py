"""Event sinks for the telemetry registry.

Two implementations cover the two consumers:

* :class:`InMemoryAggregator` keeps events in a list — tests and the
  ``profile`` CLI subcommand inspect it directly;
* :class:`JsonlSink` appends one JSON object per line to an event log —
  the durable record a run manifest points at.

Sinks receive plain dicts (already carrying ``type``/``name``) and
stamp a wall-clock ``ts`` so logs from different stages interleave
meaningfully.
"""

import json
import threading
import time


class Sink:
    """Event consumer protocol."""

    def emit(self, event):
        raise NotImplementedError

    def close(self):
        """Flush and release resources (no-op by default)."""


class InMemoryAggregator(Sink):
    """Collects events in memory; the test and `profile` sink."""

    def __init__(self):
        self._lock = threading.Lock()
        self.events = []

    def emit(self, event):
        with self._lock:
            self.events.append(dict(event))

    def named(self, name):
        """All events with the given ``name``, in emission order."""
        with self._lock:
            return [event for event in self.events
                    if event.get("name") == name]

    def of_type(self, event_type):
        with self._lock:
            return [event for event in self.events
                    if event.get("type") == event_type]

    def clear(self):
        with self._lock:
            self.events = []

    def __len__(self):
        with self._lock:
            return len(self.events)

    def __repr__(self):
        return "InMemoryAggregator(%d events)" % len(self)


class JsonlSink(Sink):
    """Appends events to a JSON-lines file, one object per line.

    The file is opened lazily on the first event (so enabling telemetry
    without emitting anything leaves no empty file) and parent
    directories are created as needed.
    """

    def __init__(self, path):
        from pathlib import Path

        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = None

    def emit(self, event):
        line = json.dumps(dict(event, ts=time.time()), sort_keys=True)
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a")
            self._handle.write(line + "\n")

    def close(self):
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __repr__(self):
        return "JsonlSink(%r)" % str(self.path)


def read_jsonl(path):
    """Parse an event log written by :class:`JsonlSink`."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
