"""Cross-process trace propagation and the shard merger.

Observability used to die at the process boundary: spans and counters
emitted inside supervised worker children went nowhere.  This module
carries a trace across that boundary and stitches the pieces back
together:

* a :class:`TraceContext` — a trace id plus the parent span id new
  top-level spans should attach under — travels *in the payload* the
  supervisor ships to each worker attempt (no ambient environment
  state, so two concurrent sweeps never cross wires);
* every worker attempt writes its own JSONL **shard** next to the
  trace cache (``<cache>/traces/shard-<trace>-<task>-aN.jsonl``),
  line-buffered so a killed attempt loses at most one partial line;
* the supervisor emits one synthetic ``supervisor.shard`` span per
  attempt — retries and timeouts included — naming the shard file it
  owns;
* :func:`merge_trace` reads the supervisor's own event log plus all
  shards (tolerating torn trailing lines) and builds a
  :class:`TraceTree` in which every worker attempt parents under its
  shard span.  Spans whose parent never made it to disk (the attempt
  was killed mid-flight) are *adopted* by their shard span rather
  than dropped, so a tree over a crashed sweep is still complete.

The scripts/check.sh trace gate and ``repro-branches top --replay``
are both clients of the merger; `docs/OBSERVABILITY.md
<../../../docs/OBSERVABILITY.md>`_ shows a worked example.
"""

import os
import re
import uuid
from pathlib import Path

from repro.telemetry.sinks import read_jsonl_tolerant

#: Span-event name the supervisor emits once per worker attempt.
SHARD_SPAN = "supervisor.shard"

#: Span name a worker's child process wraps its whole attempt in.
ATTEMPT_SPAN = "worker.attempt"

_UNSAFE = re.compile(r"[^A-Za-z0-9_.-]")


class TraceContext:
    """Identity a process traces under: a trace id and a parent span.

    ``span_id`` is the *cross-process parent*: the id under which this
    process's top-level spans (and top-level events) attach.  It is
    None in the originating process — its top-level spans are the
    trace's roots — and the shard span id inside a worker attempt.

    ``node`` prefixes every span id this process allocates, keeping
    ids unique across the processes of one trace; it deliberately does
    **not** travel in :meth:`to_dict` — each receiving process derives
    its own from its pid.
    """

    __slots__ = ("trace_id", "span_id", "node")

    def __init__(self, trace_id, span_id=None, node=None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.node = node if node is not None else "p%d" % os.getpid()

    def to_dict(self):
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data):
        return cls(data["trace_id"], span_id=data.get("span_id"))

    def __repr__(self):
        return "TraceContext(%r, span_id=%r, node=%r)" % (
            self.trace_id, self.span_id, self.node)


def new_trace_id():
    """A fresh 16-hex-digit trace id."""
    return uuid.uuid4().hex[:16]


def start_trace(registry, trace_id=None):
    """Install a fresh root context on ``registry``; returns it."""
    context = TraceContext(trace_id if trace_id else new_trace_id())
    registry.set_trace_context(context)
    return context


def ensure_trace(registry):
    """The registry's trace context, creating a root one if absent."""
    return registry.trace if registry.trace is not None \
        else start_trace(registry)


def shard_filename(trace_id, label, attempt):
    """The shard file name for one worker attempt (filesystem-safe)."""
    return "shard-%s-%s-a%d.jsonl" % (
        trace_id, _UNSAFE.sub("_", str(label)), attempt)


def shard_path(trace_dir, trace_id, label, attempt):
    return Path(trace_dir) / shard_filename(trace_id, label, attempt)


def trace_shards(trace_dir, trace_id):
    """All shard files of one trace, sorted by name."""
    return sorted(Path(trace_dir).glob("shard-%s-*.jsonl" % trace_id))


def emit_shard_span(registry, span_id, label, attempt, status,
                    duration, shard):
    """Emit the synthetic span covering one worker attempt's shard.

    Attempts overlap in time, so the supervisor cannot model them with
    the thread-stack span API; instead it allocates the id up front
    (the child parents under it) and emits the completed span event
    directly once the attempt resolves — ok, crash, hang, or error
    alike, so a trace accounts for every attempt that ever started.
    """
    if not registry.enabled or registry.sink is None \
            or registry.trace is None:
        return
    registry.record("span." + SHARD_SPAN, duration)
    registry.sink.emit({
        "type": "span", "name": SHARD_SPAN, "duration_s": duration,
        "depth": len(registry._stack()),
        "trace_id": registry.trace.trace_id,
        "span_id": span_id,
        "parent_span_id": registry.current_span_id(),
        "task": str(label), "attempt": attempt, "status": status,
        "shard": shard,
    })


class TraceNode:
    """One span in a merged trace tree."""

    __slots__ = ("span_id", "name", "parent_span_id", "duration",
                 "ts", "attrs", "children", "events", "adopted",
                 "source")

    def __init__(self, span_id, name, parent_span_id, duration, ts,
                 attrs, source):
        self.span_id = span_id
        self.name = name
        self.parent_span_id = parent_span_id
        self.duration = duration
        self.ts = ts
        self.attrs = attrs
        self.children = []
        self.events = []
        self.adopted = False
        self.source = source

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self):
        return "TraceNode(%r, %r, %d children)" % (
            self.span_id, self.name, len(self.children))


_SPAN_EVENT_META = frozenset((
    "type", "name", "duration_s", "depth", "ts", "trace_id",
    "span_id", "parent_span_id"))


class TraceTree:
    """The stitched view of one trace across all its processes."""

    def __init__(self, trace_id, roots, orphans, torn_lines, nodes):
        self.trace_id = trace_id
        self.roots = roots
        #: Spans whose parent id is unknown *and* that could not be
        #: adopted by a shard span — a complete trace has none.
        self.orphans = orphans
        self.torn_lines = torn_lines
        self._nodes = nodes

    @property
    def complete(self):
        return not self.orphans

    @property
    def span_count(self):
        return len(self._nodes)

    def node(self, span_id):
        return self._nodes.get(span_id)

    def named(self, name):
        """All nodes with span name ``name``, in timestamp order."""
        found = [node for node in self._nodes.values()
                 if node.name == name]
        found.sort(key=lambda node: (node.ts, node.span_id))
        return found

    def attempts(self):
        """The worker-attempt nodes, one per attempt that ran code."""
        return self.named(ATTEMPT_SPAN)

    def shards(self):
        """The supervisor's per-attempt shard spans."""
        return self.named(SHARD_SPAN)

    def render(self):
        """Deterministic ASCII rendering of the tree."""
        lines = ["trace %s: %d spans, %d roots%s%s" % (
            self.trace_id, self.span_count, len(self.roots),
            ", %d ORPHANS" % len(self.orphans) if self.orphans else "",
            ", %d torn lines skipped" % self.torn_lines
            if self.torn_lines else "")]

        def emit(node, indent):
            extras = ["%s=%s" % (key, node.attrs[key])
                      for key in sorted(node.attrs)
                      if key in ("task", "attempt", "status",
                                 "benchmark", "failed")]
            lines.append("%s%s%s  %.3fs%s%s" % (
                "  " * indent, node.name,
                " [%s]" % " ".join(extras) if extras else "",
                node.duration,
                " (adopted)" if node.adopted else "",
                "  +%d events" % len(node.events)
                if node.events else ""))
            for child in node.children:
                emit(child, indent + 1)

        for root in self.roots:
            emit(root, 1)
        for orphan in self.orphans:
            lines.append("  ORPHAN %s (%s) parent=%s" % (
                orphan.name, orphan.span_id, orphan.parent_span_id))
        return "\n".join(lines) + "\n"

    def __repr__(self):
        return "TraceTree(%r, %d spans, %d roots, %d orphans)" % (
            self.trace_id, self.span_count, len(self.roots),
            len(self.orphans))


def merge_trace(paths, trace_id=None):
    """Stitch span shards into one :class:`TraceTree`.

    Args:
        paths: JSONL files to merge — the supervisor's own event log
            plus the attempt shards (or a directory, which merges
            every ``*.jsonl`` inside it).
        trace_id: restrict to this trace; default is the first trace
            id seen (one sweep writes one trace, so that is the
            common case).

    Span events without a ``span_id`` (telemetry without tracing) are
    ignored.  Structured events attach to their parent node as
    annotations.  A span whose parent id is absent from the merged set
    is adopted by the shard span owning its file when that is known
    (the attempt was killed before its root span closed), and is an
    orphan otherwise.
    """
    files = []
    for path in (paths if isinstance(paths, (list, tuple)) else [paths]):
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.glob("*.jsonl")))
        else:
            files.append(path)

    torn_total = 0
    spans = []
    loose_events = []
    for path in files:
        events, torn = read_jsonl_tolerant(path)
        torn_total += torn
        for event in events:
            if trace_id is None and event.get("trace_id"):
                trace_id = event["trace_id"]
            if event.get("trace_id") != trace_id:
                continue
            if event.get("type") == "span" and event.get("span_id"):
                spans.append((event, path.name))
            elif event.get("type") == "event":
                loose_events.append(event)

    nodes = {}
    shard_owner = {}            # shard file name -> shard span id
    for event, source in spans:
        node = TraceNode(
            span_id=event["span_id"], name=event.get("name", "?"),
            parent_span_id=event.get("parent_span_id"),
            duration=event.get("duration_s", 0.0),
            ts=event.get("ts", 0.0),
            attrs={key: value for key, value in event.items()
                   if key not in _SPAN_EVENT_META},
            source=source)
        nodes[node.span_id] = node
        if node.name == SHARD_SPAN and "shard" in node.attrs:
            shard_owner[node.attrs["shard"]] = node.span_id

    roots = []
    orphans = []
    for node in nodes.values():
        if node.parent_span_id is None:
            roots.append(node)
            continue
        parent = nodes.get(node.parent_span_id)
        if parent is None:
            adopter = shard_owner.get(node.source)
            if adopter is not None and adopter != node.span_id:
                node.adopted = True
                nodes[adopter].children.append(node)
            else:
                orphans.append(node)
            continue
        parent.children.append(node)

    for event in loose_events:
        parent = nodes.get(event.get("parent_span_id"))
        if parent is not None:
            parent.events.append(event)

    for node in nodes.values():
        node.children.sort(key=lambda child: (child.ts, child.span_id))
        node.events.sort(key=lambda item: item.get("ts", 0.0))
    roots.sort(key=lambda node: (node.ts, node.span_id))
    orphans.sort(key=lambda node: (node.ts, node.span_id))
    return TraceTree(trace_id, roots, orphans, torn_total, nodes)
