"""Spans, counters, and histograms: the in-process telemetry registry.

The registry is a process-wide singleton (:data:`TELEMETRY`) that is
**disabled by default**.  Instrumented code pays one attribute check on
the disabled path (``TELEMETRY.enabled``); spans collapse to a shared
no-op context manager and counters/events return immediately, so the
experiment pipeline runs at full speed unless a run opts in with
``--telemetry`` (or a test calls :meth:`Telemetry.enable`).

Design points:

* spans nest: each thread keeps its own span stack (``threading.local``)
  so nested ``with telemetry.span(...)`` blocks report their depth and
  parent without cross-thread interference;
* timing uses ``time.perf_counter`` (monotonic, highest resolution);
* aggregation is in-registry: every finished span feeds a duration
  histogram keyed by span name, so a sink is optional for profiling;
* all registry mutation happens under one lock — the experiment
  harness's parallel cache warmers run in separate *processes*, but the
  API stays safe for in-process threads too;
* tracing is opt-in on top of telemetry: installing a
  :class:`~repro.telemetry.tracing.TraceContext` (via
  :meth:`Telemetry.set_trace_context`) makes every span carry a
  ``trace_id``/``span_id``/``parent_span_id`` triple in its sink
  event, which is what lets the shard merger stitch events from many
  worker processes into one tree.  Without a context, span events look
  exactly as they always did.
"""

import math
import random
import threading
import time


class Counter:
    """A named monotonically growing value."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def __repr__(self):
        return "Counter(%r, %d)" % (self.name, self.value)


class Histogram:
    """Streaming summary of observed values.

    Alongside count/total/min/max it keeps a bounded reservoir sample
    (Vitter's algorithm R with a fixed-seed generator, so the same
    observation sequence always yields the same sample), from which
    :meth:`percentile` answers p50/p95/p99 by nearest rank.  Up to
    ``RESERVOIR_SIZE`` observations the percentiles are exact.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum",
                 "_samples", "_rng")

    RESERVOIR_SIZE = 1024

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None
        self._samples = []
        self._rng = random.Random(0)

    def record(self, value):
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self._samples) < self.RESERVOIR_SIZE:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.RESERVOIR_SIZE:
                self._samples[slot] = value

    @property
    def mean(self):
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, q):
        """The q-th percentile (0-100) by nearest rank, or None.

        Nearest rank is ``ceil(q/100 * n)`` clamped to ``[1, n]`` — an
        empty reservoir answers ``None``, a single-sample reservoir
        answers its sample for every q (the short-run probe-latency
        histograms hit both).  The previous round-half-up rank
        under-reported high percentiles on small reservoirs (p95 of 11
        samples returned the 10th sample instead of the maximum).
        """
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = math.ceil((q / 100.0) * len(ordered))
        return ordered[min(max(rank, 1), len(ordered)) - 1]

    def to_dict(self):
        return {"count": self.count, "total": self.total,
                "min": self.minimum, "max": self.maximum,
                "mean": self.mean,
                "p50": self.percentile(50),
                "p95": self.percentile(95),
                "p99": self.percentile(99)}

    def __repr__(self):
        return "Histogram(%r, n=%d, total=%.6f)" % (
            self.name, self.count, self.total)


class Span:
    """A timed region; use via ``with telemetry.span("name"):``.

    On exit the duration is recorded into the registry's histogram for
    the span name and a ``span`` event is emitted to the sink (if any).
    Extra keyword attributes given at creation ride along on the event;
    :meth:`annotate` adds more mid-flight.

    When the registry carries a trace context, the span is assigned a
    process-unique ``span_id`` on entry and remembers its parent (the
    enclosing span on this thread, or the context's cross-process
    parent at the top level); both ride on the completion event.
    """

    __slots__ = ("registry", "name", "attrs", "start", "duration",
                 "span_id", "parent_span_id")

    def __init__(self, registry, name, attrs):
        self.registry = registry
        self.name = name
        self.attrs = attrs
        self.start = None
        self.duration = None
        self.span_id = None
        self.parent_span_id = None

    def annotate(self, **attrs):
        """Attach attributes to the span's completion event."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        if self.registry._trace is not None:
            self.parent_span_id = self.registry.current_span_id()
            self.span_id = self.registry.allocate_span_id()
        self.registry._push(self.name, self.span_id)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.duration = time.perf_counter() - self.start
        depth = self.registry._pop()
        self.registry._finish_span(self, depth,
                                   failed=exc_type is not None)
        return False


class _NullSpan:
    """The disabled path: a shared, stateless no-op span."""

    __slots__ = ()

    def annotate(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        return False


NULL_SPAN = _NullSpan()


class Telemetry:
    """The span/counter registry with a pluggable sink.

    Args:
        sink: optional event sink (see :mod:`repro.telemetry.sinks`);
            spans and counters aggregate in-registry even without one.
        enabled: start enabled (tests); the process singleton starts
            disabled.
    """

    def __init__(self, sink=None, enabled=False):
        self._lock = threading.Lock()
        self._local = threading.local()
        self.sink = sink
        self.enabled = enabled
        self._counters = {}
        self._histograms = {}
        self._trace = None
        self._span_seq = 0

    # -- lifecycle ---------------------------------------------------------

    def enable(self, sink=None):
        """Turn instrumentation on, optionally replacing the sink."""
        if sink is not None:
            self.sink = sink
        self.enabled = True
        return self

    def disable(self):
        """Turn instrumentation off (the sink is kept but unused)."""
        self.enabled = False
        return self

    def reset(self):
        """Clear all aggregates; detach the sink and trace context.

        The span stack is dropped too: a forked worker inherits its
        parent's open spans on the main thread, and without clearing
        them the child's top-level spans would parent under the
        supervisor's spans instead of its own shard span.
        """
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
            self._span_seq = 0
        self._local = threading.local()
        self.sink = None
        self._trace = None
        return self

    # -- trace context -----------------------------------------------------

    def set_trace_context(self, context):
        """Install (or with None, clear) the cross-process trace context.

        While a context is installed, spans carry
        ``trace_id``/``span_id``/``parent_span_id`` on their sink
        events and structured events are stamped with the trace id and
        the enclosing span — see :mod:`repro.telemetry.tracing`.
        """
        self._trace = context
        return self

    @property
    def trace(self):
        """The installed trace context, or None."""
        return self._trace

    def allocate_span_id(self):
        """A new process-unique span id under the trace context."""
        with self._lock:
            self._span_seq += 1
            sequence = self._span_seq
        node = self._trace.node if self._trace is not None else "s"
        return "%s-%d" % (node, sequence)

    def current_span_id(self):
        """Id of the innermost open span on this thread.

        Falls back to the trace context's cross-process parent span
        when no span is open (so top-level events in a worker process
        attach under the shard span its supervisor allocated); None
        without a context.
        """
        stack = self._stack()
        if stack:
            return stack[-1][1]
        return self._trace.span_id if self._trace is not None else None

    # -- span stack (per thread) -------------------------------------------

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, name, span_id=None):
        self._stack().append((name, span_id))

    def _pop(self):
        stack = self._stack()
        stack.pop()
        return len(stack)

    def current_span_name(self):
        """Name of the innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1][0] if stack else None

    # -- recording ---------------------------------------------------------

    def span(self, name, **attrs):
        """A timed context manager; a shared no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def _finish_span(self, span, depth, failed=False):
        self.record("span." + span.name, span.duration)
        if self.sink is not None:
            event = {"type": "span", "name": span.name,
                     "duration_s": span.duration, "depth": depth}
            if failed:
                event["failed"] = True
            if span.span_id is not None and self._trace is not None:
                event["trace_id"] = self._trace.trace_id
                event["span_id"] = span.span_id
                event["parent_span_id"] = span.parent_span_id
            if span.attrs:
                event.update(span.attrs)
            self.sink.emit(event)

    def count(self, name, amount=1):
        """Add ``amount`` to the counter ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            counter.value += amount

    def record(self, name, value):
        """Record ``value`` into histogram ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name)
            histogram.record(value)

    def event(self, name, **fields):
        """Emit a structured event to the sink (no-op when disabled)."""
        if not self.enabled or self.sink is None:
            return
        event = {"type": "event", "name": name}
        if self._trace is not None:
            event["trace_id"] = self._trace.trace_id
            event["parent_span_id"] = self.current_span_id()
        event.update(fields)
        self.sink.emit(event)

    # -- introspection ------------------------------------------------------

    def counter_value(self, name):
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter is not None else 0

    def histogram(self, name):
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self):
        """All aggregates as one JSON-serialisable dict."""
        with self._lock:
            return {
                "counters": {name: counter.value
                             for name, counter in self._counters.items()},
                "histograms": {name: histogram.to_dict()
                               for name, histogram
                               in self._histograms.items()},
            }

    def __repr__(self):
        return "Telemetry(enabled=%s, %d counters, %d histograms)" % (
            self.enabled, len(self._counters), len(self._histograms))


#: The process-wide registry.  Disabled by default: instrumentation in
#: the VM, predictors, and runner costs one attribute check per call
#: site until someone enables it.
TELEMETRY = Telemetry()
