"""Spans, counters, and histograms: the in-process telemetry registry.

The registry is a process-wide singleton (:data:`TELEMETRY`) that is
**disabled by default**.  Instrumented code pays one attribute check on
the disabled path (``TELEMETRY.enabled``); spans collapse to a shared
no-op context manager and counters/events return immediately, so the
experiment pipeline runs at full speed unless a run opts in with
``--telemetry`` (or a test calls :meth:`Telemetry.enable`).

Design points:

* spans nest: each thread keeps its own span stack (``threading.local``)
  so nested ``with telemetry.span(...)`` blocks report their depth and
  parent without cross-thread interference;
* timing uses ``time.perf_counter`` (monotonic, highest resolution);
* aggregation is in-registry: every finished span feeds a duration
  histogram keyed by span name, so a sink is optional for profiling;
* all registry mutation happens under one lock — the experiment
  harness's parallel cache warmers run in separate *processes*, but the
  API stays safe for in-process threads too.
"""

import threading
import time


class Counter:
    """A named monotonically growing value."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def __repr__(self):
        return "Counter(%r, %d)" % (self.name, self.value)


class Histogram:
    """Streaming summary of observed values (count/total/min/max)."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None

    def record(self, value):
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self):
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def to_dict(self):
        return {"count": self.count, "total": self.total,
                "min": self.minimum, "max": self.maximum,
                "mean": self.mean}

    def __repr__(self):
        return "Histogram(%r, n=%d, total=%.6f)" % (
            self.name, self.count, self.total)


class Span:
    """A timed region; use via ``with telemetry.span("name"):``.

    On exit the duration is recorded into the registry's histogram for
    the span name and a ``span`` event is emitted to the sink (if any).
    Extra keyword attributes given at creation ride along on the event;
    :meth:`annotate` adds more mid-flight.
    """

    __slots__ = ("registry", "name", "attrs", "start", "duration")

    def __init__(self, registry, name, attrs):
        self.registry = registry
        self.name = name
        self.attrs = attrs
        self.start = None
        self.duration = None

    def annotate(self, **attrs):
        """Attach attributes to the span's completion event."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        self.registry._push(self.name)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.duration = time.perf_counter() - self.start
        depth = self.registry._pop()
        self.registry._finish_span(self, depth,
                                   failed=exc_type is not None)
        return False


class _NullSpan:
    """The disabled path: a shared, stateless no-op span."""

    __slots__ = ()

    def annotate(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        return False


NULL_SPAN = _NullSpan()


class Telemetry:
    """The span/counter registry with a pluggable sink.

    Args:
        sink: optional event sink (see :mod:`repro.telemetry.sinks`);
            spans and counters aggregate in-registry even without one.
        enabled: start enabled (tests); the process singleton starts
            disabled.
    """

    def __init__(self, sink=None, enabled=False):
        self._lock = threading.Lock()
        self._local = threading.local()
        self.sink = sink
        self.enabled = enabled
        self._counters = {}
        self._histograms = {}

    # -- lifecycle ---------------------------------------------------------

    def enable(self, sink=None):
        """Turn instrumentation on, optionally replacing the sink."""
        if sink is not None:
            self.sink = sink
        self.enabled = True
        return self

    def disable(self):
        """Turn instrumentation off (the sink is kept but unused)."""
        self.enabled = False
        return self

    def reset(self):
        """Clear all aggregates; detach the sink."""
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
        self.sink = None
        return self

    # -- span stack (per thread) -------------------------------------------

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, name):
        self._stack().append(name)

    def _pop(self):
        stack = self._stack()
        stack.pop()
        return len(stack)

    def current_span_name(self):
        """Name of the innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- recording ---------------------------------------------------------

    def span(self, name, **attrs):
        """A timed context manager; a shared no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def _finish_span(self, span, depth, failed=False):
        self.record("span." + span.name, span.duration)
        if self.sink is not None:
            event = {"type": "span", "name": span.name,
                     "duration_s": span.duration, "depth": depth}
            if failed:
                event["failed"] = True
            if span.attrs:
                event.update(span.attrs)
            self.sink.emit(event)

    def count(self, name, amount=1):
        """Add ``amount`` to the counter ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            counter.value += amount

    def record(self, name, value):
        """Record ``value`` into histogram ``name`` (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name)
            histogram.record(value)

    def event(self, name, **fields):
        """Emit a structured event to the sink (no-op when disabled)."""
        if not self.enabled or self.sink is None:
            return
        event = {"type": "event", "name": name}
        event.update(fields)
        self.sink.emit(event)

    # -- introspection ------------------------------------------------------

    def counter_value(self, name):
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter is not None else 0

    def histogram(self, name):
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self):
        """All aggregates as one JSON-serialisable dict."""
        with self._lock:
            return {
                "counters": {name: counter.value
                             for name, counter in self._counters.items()},
                "histograms": {name: histogram.to_dict()
                               for name, histogram
                               in self._histograms.items()},
            }

    def __repr__(self):
        return "Telemetry(enabled=%s, %d counters, %d histograms)" % (
            self.enabled, len(self._counters), len(self._histograms))


#: The process-wide registry.  Disabled by default: instrumentation in
#: the VM, predictors, and runner costs one attribute check per call
#: site until someone enables it.
TELEMETRY = Telemetry()
