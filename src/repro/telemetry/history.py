"""Longitudinal perf history: BENCH_history.jsonl and its report.

``BENCH_telemetry.json`` and ``BENCH_kernels.json`` are
overwrite-in-place snapshots — useful for "what is it now", useless
for "when did it get slow".  This module gives the benchmark gates a
**trajectory**: every gate run appends one record (git sha, UTC
timestamp, bench scale, and every BENCH_* rate, flattened) to an
append-only ``BENCH_history.jsonl`` at the repo root, and
``repro-branches bench-history`` reports the latest record against a
**rolling-median baseline** over the preceding window, flagging any
rate that dropped more than the threshold (default 20%) below its
median.  All recorded metrics are rates or speedups, so "higher is
better" holds uniformly and a drop is always a regression.

The file is JSONL on purpose: appends are atomic at the line level,
two concurrent gate runs interleave instead of clobbering, and a torn
trailing line (killed gate) is skipped by the tolerant reader rather
than poisoning the history.
"""

import datetime
import json
from pathlib import Path

from repro.telemetry.sinks import read_jsonl_tolerant

HISTORY_SCHEMA = 1

HISTORY_FILENAME = "BENCH_history.jsonl"

#: Fractional drop below the rolling median that flags a regression.
DEFAULT_THRESHOLD = 0.2

#: Records of rolling history the baseline median is computed over.
DEFAULT_WINDOW = 8

#: Baselines need at least this many prior observations of a metric;
#: below it the median is too noisy to flag against.
MIN_BASELINE = 3


def history_path(root):
    return Path(root) / HISTORY_FILENAME


def flatten_bench_reports(telemetry=None, kernels=None):
    """One flat ``metric -> rate`` dict from the BENCH_* payloads.

    ``telemetry`` is the BENCH_telemetry.json shape (``rates`` dict);
    ``kernels`` the BENCH_kernels.json shape (per-scheme and headline
    records/second + speedups, prefixed ``kernel_``).
    """
    metrics = {}
    for name, value in ((telemetry or {}).get("rates") or {}).items():
        metrics[name] = value
    kernels = kernels or {}
    for scheme, data in (kernels.get("schemes") or {}).items():
        for key, value in data.items():
            metrics["kernel_%s_%s" % (scheme, key)] = value
    for key, value in (kernels.get("headline") or {}).items():
        metrics["kernel_headline_%s" % key] = value
    return metrics


def append_record(path, metrics, git_sha=None, scale=None, ts=None):
    """Append one history record; returns the record dict.

    The write is a single ``O_APPEND`` line, so concurrent gate runs
    interleave whole records rather than tearing each other.
    """
    record = {
        "schema": HISTORY_SCHEMA,
        "ts": ts if ts is not None else datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "git_sha": git_sha,
        "scale": scale,
        "metrics": dict(metrics),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_history(path):
    """All parseable records, oldest first; torn lines are skipped."""
    events, _torn = read_jsonl_tolerant(path)
    return [event for event in events
            if isinstance(event.get("metrics"), dict)]


def rolling_baseline(records, metric, window=DEFAULT_WINDOW):
    """Median of the metric over the last ``window`` records."""
    records = records[-window:]
    values = sorted(record["metrics"][metric] for record in records
                    if metric in record["metrics"]
                    and isinstance(record["metrics"][metric],
                                   (int, float)))
    if not values:
        return None
    middle = len(values) // 2
    if len(values) % 2:
        return values[middle]
    return (values[middle - 1] + values[middle]) / 2.0


def find_regressions(records, threshold=DEFAULT_THRESHOLD,
                     window=DEFAULT_WINDOW):
    """Regressions of the latest record against its rolling baseline.

    For every metric in the newest record with at least
    ``MIN_BASELINE`` observations in the preceding ``window`` records,
    compare against the median of those observations; a drop of more
    than ``threshold`` (fractional) is flagged.  Returns a list of
    dicts sorted by severity (largest drop first).
    """
    if len(records) < 2:
        return []
    latest = records[-1]
    baseline_window = records[-1 - window:-1]
    flagged = []
    for metric, value in sorted(latest["metrics"].items()):
        if not isinstance(value, (int, float)):
            continue
        observed = [record["metrics"][metric]
                    for record in baseline_window
                    if isinstance(record["metrics"].get(metric),
                                  (int, float))]
        if len(observed) < MIN_BASELINE:
            continue
        baseline = rolling_baseline(baseline_window, metric,
                                    window=window)
        if not baseline or baseline <= 0:
            continue
        drop = 1.0 - (value / baseline)
        if drop > threshold:
            flagged.append({"metric": metric, "baseline": baseline,
                            "latest": value, "drop": drop})
    flagged.sort(key=lambda item: -item["drop"])
    return flagged


def render_history(records, threshold=DEFAULT_THRESHOLD,
                   window=DEFAULT_WINDOW, limit=25):
    """(report text, regressions) for ``bench-history``."""
    if not records:
        return ("no benchmark history yet (run the benchmark gates "
                "to append to %s)\n" % HISTORY_FILENAME), []
    latest = records[-1]
    regressions = find_regressions(records, threshold=threshold,
                                   window=window)
    lines = ["bench history: %d record%s, latest %s (git %s)"
             % (len(records), "" if len(records) == 1 else "s",
                latest.get("ts", "?"),
                (latest.get("git_sha") or "unknown")[:12])]
    baseline_window = records[-1 - window:-1]
    lines.append("%-44s %12s %12s %7s" % ("metric", "baseline",
                                          "latest", "delta"))
    shown = 0
    flagged_names = {item["metric"] for item in regressions}
    for metric, value in sorted(latest["metrics"].items()):
        if shown >= limit:
            lines.append("... %d more metrics"
                         % (len(latest["metrics"]) - shown))
            break
        shown += 1
        baseline = rolling_baseline(baseline_window, metric,
                                    window=window)
        if not isinstance(value, (int, float)) or not baseline:
            lines.append("%-44s %12s %12s %7s"
                         % (metric, "-", _rate(value), "-"))
            continue
        delta = 100.0 * (value / baseline - 1.0)
        lines.append("%-44s %12s %12s %+6.1f%%%s"
                     % (metric, _rate(baseline), _rate(value), delta,
                        "  REGRESSION" if metric in flagged_names
                        else ""))
    for item in regressions:
        lines.append("REGRESSION: %s dropped %.0f%% below its "
                     "rolling median (%s -> %s; threshold %.0f%%)"
                     % (item["metric"], 100.0 * item["drop"],
                        _rate(item["baseline"]), _rate(item["latest"]),
                        100.0 * threshold))
    if not regressions:
        lines.append("no regressions against the rolling-median "
                     "baseline (threshold %.0f%%, window %d)"
                     % (100.0 * threshold, window))
    return "\n".join(lines) + "\n", regressions


def _rate(value):
    if not isinstance(value, (int, float)):
        return str(value)
    if value >= 1000:
        return "%.3g" % value
    return "%.3f" % value
