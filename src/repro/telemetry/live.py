"""The live event bus: tail sharded JSONL streams, monitor a sweep.

Two pieces power ``repro-branches top``:

* :class:`EventTail` — an incremental reader over a growing set of
  JSONL files (the supervisor's event log plus the per-attempt shards
  appearing under the trace directory).  It remembers a byte offset
  per file, consumes only complete lines (a half-written trailing
  line stays unread until its newline lands), and never raises on a
  vanished or torn file — the writers are being SIGKILLed on purpose
  in the fault matrix.
* :class:`SweepMonitor` — folds the event stream into the state a
  human watching a sweep wants: shards in flight / done / retried /
  failed, per-stage wall clock, cross-process cache hit rate (from
  the ``telemetry.snapshot`` counters each worker emits on exit), and
  an ETA extrapolated from completed tasks.

Both are timestamp-driven (the ``ts`` every sink stamps), so
``repro-branches top --replay <log-or-dir>`` renders a recorded sweep
byte-for-byte deterministically — which is how the tests pin the
renderer down.
"""

import json
from pathlib import Path


class EventTail:
    """Incremental JSONL reader over a growing set of files.

    Args:
        paths: seed files to follow (may not exist yet).
        directory: optional directory whose ``*.jsonl`` members are
            (re)discovered on every poll — how shards of newly spawned
            attempts join the stream mid-flight.
    """

    def __init__(self, paths=(), directory=None):
        self._offsets = {}
        self._paths = [Path(path) for path in paths]
        self._directory = Path(directory) if directory else None

    def _files(self):
        files = list(self._paths)
        if self._directory is not None and self._directory.is_dir():
            files.extend(sorted(self._directory.glob("*.jsonl")))
        seen = set()
        unique = []
        for path in files:
            if path not in seen:
                seen.add(path)
                unique.append(path)
        return unique

    def poll(self):
        """All complete, parseable events appended since the last poll."""
        events = []
        for path in self._files():
            offset = self._offsets.get(path, 0)
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
            except OSError:
                continue
            if not chunk:
                continue
            complete, _, partial = chunk.rpartition(b"\n")
            if not complete and partial:
                continue            # only a torn fragment so far
            self._offsets[path] = offset + len(complete) + 1
            for line in complete.split(b"\n"):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    continue
                if isinstance(event, dict):
                    events.append(event)
        events.sort(key=lambda event: event.get("ts", 0.0))
        return events


class SweepMonitor:
    """Folds a sweep's event stream into a renderable snapshot."""

    def __init__(self):
        self.first_ts = None
        self.last_ts = None
        self.total_tasks = None
        self.workers = None
        self.done = False
        self.degraded = False
        self._spawned = {}          # (task, attempt) -> spawn ts
        self._attempts = []         # finished shard spans, in order
        self._tasks_ok = set()
        self._tasks_failed = set()
        self._retried = set()
        self._stages = {}           # runner stage -> [count, total_s]
        self._counters = {}         # summed cross-process counters

    # -- folding -----------------------------------------------------------

    def observe_all(self, events):
        for event in events:
            self.observe(event)
        return self

    def observe(self, event):
        ts = event.get("ts")
        if ts is not None:
            if self.first_ts is None:
                self.first_ts = ts
            self.last_ts = max(self.last_ts or ts, ts)
        name = event.get("name")
        kind = event.get("type")
        if kind == "span":
            if name == "supervisor.shard":
                self._observe_shard(event)
            elif name and name.startswith("runner."):
                stage = name[len("runner."):]
                bucket = self._stages.setdefault(stage, [0, 0.0])
                bucket[0] += 1
                bucket[1] += event.get("duration_s", 0.0)
            return
        if name == "supervisor.start":
            self.total_tasks = event.get("tasks")
            self.workers = event.get("workers")
        elif name == "supervisor.done":
            self.done = True
            self.degraded = bool(event.get("degraded"))
        elif name == "worker.spawn":
            key = (event.get("task"), event.get("attempt"))
            self._spawned[key] = event.get("ts", 0.0)
        elif name == "worker.retry":
            self._retried.add(event.get("task"))
        elif name == "telemetry.snapshot":
            for counter, value in (event.get("counters") or {}).items():
                self._counters[counter] = \
                    self._counters.get(counter, 0) + value

    def _observe_shard(self, event):
        task = event.get("task")
        attempt = event.get("attempt")
        status = event.get("status")
        self._spawned.pop((task, attempt), None)
        self._attempts.append({
            "task": task, "attempt": attempt, "status": status,
            "seconds": event.get("duration_s", 0.0)})
        if status == "ok":
            self._tasks_ok.add(task)
            self._tasks_failed.discard(task)
        else:
            if task not in self._tasks_ok:
                self._tasks_failed.add(task)

    # -- derived state -----------------------------------------------------

    @property
    def in_flight(self):
        """(task, attempt, spawn ts) of attempts not yet resolved."""
        return sorted((task, attempt, ts) for (task, attempt), ts
                      in self._spawned.items())

    @property
    def attempts(self):
        return list(self._attempts)

    @property
    def elapsed(self):
        if self.first_ts is None or self.last_ts is None:
            return 0.0
        return self.last_ts - self.first_ts

    def counter(self, name):
        return self._counters.get(name, 0)

    @property
    def cache_hit_rate(self):
        hits = self.counter("runner.cache.hit")
        misses = self.counter("runner.cache.miss")
        if hits + misses == 0:
            return None
        return hits / (hits + misses)

    @property
    def eta_seconds(self):
        """Remaining-work estimate from completed tasks; None if unknown."""
        if not self.total_tasks or self.done:
            return None
        finished = len(self._tasks_ok) + len(self._tasks_failed)
        if finished == 0 or finished >= self.total_tasks:
            return None
        return (self.elapsed / finished
                * (self.total_tasks - finished))

    # -- rendering ---------------------------------------------------------

    def render(self):
        """Deterministic text snapshot of the sweep."""
        finished = len(self._tasks_ok) + len(self._tasks_failed)
        total = self.total_tasks if self.total_tasks is not None else "?"
        header = "sweep: %d/%s tasks finished" % (finished, total)
        if self.workers:
            header += ", %d workers" % self.workers
        if self.done:
            header += ", DONE (degraded)" if self.degraded else ", DONE"
        lines = [header]

        for task, attempt, ts in self.in_flight:
            age = ((self.last_ts - ts)
                   if self.last_ts is not None and ts else 0.0)
            lines.append("  in flight: %s (attempt %d, %.1fs)"
                         % (task, attempt, age))
        for item in self._attempts:
            marker = {"ok": "done"}.get(item["status"],
                                        item["status"].upper())
            lines.append("  %-8s %s (attempt %d, %.2fs)"
                         % (marker, item["task"], item["attempt"],
                            item["seconds"]))
        if self._retried:
            lines.append("  retried: %s"
                         % ", ".join(sorted(self._retried)))
        if self._tasks_failed:
            lines.append("  failed: %s"
                         % ", ".join(sorted(self._tasks_failed)))

        if self._stages:
            total_s = sum(bucket[1]
                          for bucket in self._stages.values())
            lines.append("  stages:")
            for stage, (count, seconds) in sorted(
                    self._stages.items(), key=lambda kv: -kv[1][1]):
                share = 100.0 * seconds / total_s if total_s else 0.0
                lines.append("    %-12s %9.4fs  %5.1f%%  (n=%d)"
                             % (stage, seconds, share, count))

        rate = self.cache_hit_rate
        if rate is not None:
            lines.append("  cache: %d hits / %d misses (%.1f%% hit "
                         "rate)" % (self.counter("runner.cache.hit"),
                                    self.counter("runner.cache.miss"),
                                    100.0 * rate))
        records = self.counter("predictor.records")
        if records:
            lines.append("  predictor records: %d" % records)

        footer = "  elapsed %.1fs" % self.elapsed
        eta = self.eta_seconds
        if eta is not None:
            footer += ", ETA %.1fs" % eta
        lines.append(footer)
        return "\n".join(lines) + "\n"
