"""Observability for the experiment pipeline.

The pieces (see docs/OBSERVABILITY.md for the full guide):

* :mod:`repro.telemetry.core` — the span/counter/histogram registry and
  its process-wide singleton :data:`TELEMETRY` (disabled by default;
  instrumented hot paths pay one attribute check until enabled);
* :mod:`repro.telemetry.sinks` — event sinks: an in-memory aggregator
  for tests/`profile`, a crash-safe line-buffered JSONL event log for
  runs, plus a torn-line-tolerant reader;
* :mod:`repro.telemetry.tracing` — cross-process trace propagation:
  trace contexts shipped into supervised workers, per-attempt JSONL
  shards, and the merger that stitches them into one trace tree;
* :mod:`repro.telemetry.live` — the tailing event bus and sweep
  monitor behind ``repro-branches top``;
* :mod:`repro.telemetry.exposition` — Prometheus text-format
  exposition (``repro-branches metrics``) and the stdlib HTTP
  exporter;
* :mod:`repro.telemetry.history` — the append-only BENCH_history.jsonl
  perf trajectory and its regression report
  (``repro-branches bench-history``);
* :mod:`repro.telemetry.manifest` — run manifests, the provenance
  records written next to cached artifacts;
* :mod:`repro.telemetry.attribution` — per-site mispredict attribution
  (the ``repro-branches stats`` report).

``attribution`` imports the predictors (which are themselves
instrumented with this package), so it is deliberately *not* imported
here — import it as ``repro.telemetry.attribution``.
"""

from repro.telemetry.core import (
    NULL_SPAN,
    Counter,
    Histogram,
    Span,
    TELEMETRY,
    Telemetry,
)
from repro.telemetry.manifest import (
    MANIFEST_VERSION,
    RunManifest,
    git_sha,
    manifest_path_for,
)
from repro.telemetry.sinks import (
    InMemoryAggregator,
    JsonlSink,
    Sink,
    read_jsonl,
    read_jsonl_tolerant,
)
from repro.telemetry.tracing import (
    TraceContext,
    TraceTree,
    merge_trace,
    new_trace_id,
    start_trace,
)

__all__ = [
    "NULL_SPAN",
    "Counter",
    "Histogram",
    "Span",
    "TELEMETRY",
    "Telemetry",
    "MANIFEST_VERSION",
    "RunManifest",
    "git_sha",
    "manifest_path_for",
    "InMemoryAggregator",
    "JsonlSink",
    "Sink",
    "read_jsonl",
    "read_jsonl_tolerant",
    "TraceContext",
    "TraceTree",
    "merge_trace",
    "new_trace_id",
    "start_trace",
]
