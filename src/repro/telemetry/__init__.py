"""Observability for the experiment pipeline.

Five pieces (see docs/OBSERVABILITY.md for the full guide):

* :mod:`repro.telemetry.core` — the span/counter/histogram registry and
  its process-wide singleton :data:`TELEMETRY` (disabled by default;
  instrumented hot paths pay one attribute check until enabled);
* :mod:`repro.telemetry.sinks` — event sinks: an in-memory aggregator
  for tests/`profile`, a JSONL event log for runs;
* :mod:`repro.telemetry.manifest` — run manifests, the provenance
  records written next to cached artifacts;
* :mod:`repro.telemetry.attribution` — per-site mispredict attribution
  (the ``repro-branches stats`` report).

``attribution`` imports the predictors (which are themselves
instrumented with this package), so it is deliberately *not* imported
here — import it as ``repro.telemetry.attribution``.
"""

from repro.telemetry.core import (
    NULL_SPAN,
    Counter,
    Histogram,
    Span,
    TELEMETRY,
    Telemetry,
)
from repro.telemetry.manifest import (
    MANIFEST_VERSION,
    RunManifest,
    git_sha,
    manifest_path_for,
)
from repro.telemetry.sinks import (
    InMemoryAggregator,
    JsonlSink,
    Sink,
    read_jsonl,
)

__all__ = [
    "NULL_SPAN",
    "Counter",
    "Histogram",
    "Span",
    "TELEMETRY",
    "Telemetry",
    "MANIFEST_VERSION",
    "RunManifest",
    "git_sha",
    "manifest_path_for",
    "InMemoryAggregator",
    "JsonlSink",
    "Sink",
    "read_jsonl",
]
