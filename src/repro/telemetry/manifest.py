"""Run manifests: provenance records written next to cached artifacts.

Every time the suite runner executes a benchmark and writes its trace
cache, it also writes ``<cache stem>.manifest.json`` describing *how*
those artifacts were produced: the runner configuration, the cache key
and format version, the git commit of the working tree (when
available), per-stage wall-clock seconds, and the telemetry event-log
path (when a run had one).  Any table or figure computed from the
cache is thereby traceable to the run that produced it.

The schema (``MANIFEST_VERSION`` 2)::

    {
      "manifest_version": 2,
      "benchmark": "wc",
      "cache_key": "wc-s0_1-r2-v3-a1b2c3d4e5",
      "format_version": 3,
      "config": {"scale": 0.1, "runs": 2, "max_instructions": ...,
                 "verify": true, "engine": "auto"},
      "git_sha": "..." | null,
      "stages": {"compile": 0.012, "profile": 1.4, ...},
      "event_log": "path/to/telemetry.jsonl" | null,
      "artifacts": {"trace": "....npz", "profile": "....json"},
      "checksums": {"trace": "sha256:...", "profile": "sha256:..."},
      "created": "2026-08-06T12:34:56+00:00"
    }

Version 2 added ``checksums``: the sha256 of each artifact as written,
verified on every cache load by the resilience layer (see
docs/RESILIENCE.md) so torn writes and bit rot are caught and
quarantined instead of silently poisoning later runs.
"""

import datetime
import json
import subprocess

MANIFEST_VERSION = 2


def git_sha(root=None):
    """The working tree's HEAD commit, or None outside a git checkout."""
    command = ["git"]
    if root is not None:
        command += ["-C", str(root)]
    command += ["rev-parse", "HEAD"]
    try:
        output = subprocess.run(command, capture_output=True, text=True,
                                timeout=5)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if output.returncode != 0:
        return None
    return output.stdout.strip() or None


def manifest_path_for(artifact_path):
    """The manifest path sitting next to a cache artifact.

    Both the ``.npz`` trace and the ``.json`` profile of one cache
    entry share a stem, and so share one manifest.
    """
    from pathlib import Path

    artifact_path = Path(artifact_path)
    return artifact_path.with_name(artifact_path.stem + ".manifest.json")


class RunManifest:
    """Provenance for one benchmark execution (see module docstring)."""

    __slots__ = ("benchmark", "cache_key", "format_version", "config",
                 "git_sha", "stages", "event_log", "artifacts",
                 "checksums", "created")

    def __init__(self, benchmark, cache_key, format_version, config,
                 git_sha=None, stages=None, event_log=None,
                 artifacts=None, checksums=None, created=None):
        self.benchmark = benchmark
        self.cache_key = cache_key
        self.format_version = format_version
        self.config = dict(config)
        self.git_sha = git_sha
        self.stages = dict(stages or {})
        self.event_log = event_log
        self.artifacts = dict(artifacts or {})
        self.checksums = dict(checksums or {})
        if created is None:
            created = datetime.datetime.now(
                datetime.timezone.utc).isoformat(timespec="seconds")
        self.created = created

    # -- serialisation -----------------------------------------------------

    def to_dict(self):
        return {
            "manifest_version": MANIFEST_VERSION,
            "benchmark": self.benchmark,
            "cache_key": self.cache_key,
            "format_version": self.format_version,
            "config": self.config,
            "git_sha": self.git_sha,
            "stages": self.stages,
            "event_log": self.event_log,
            "artifacts": self.artifacts,
            "checksums": self.checksums,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            benchmark=data["benchmark"],
            cache_key=data["cache_key"],
            format_version=data["format_version"],
            config=data.get("config", {}),
            git_sha=data.get("git_sha"),
            stages=data.get("stages", {}),
            event_log=data.get("event_log"),
            artifacts=data.get("artifacts", {}),
            checksums=data.get("checksums", {}),
            created=data.get("created"),
        )

    def write(self, path):
        """Serialise to ``path`` atomically; returns the path.

        Uses the crash-safe store (temp + fsync + ``os.replace``) so a
        manifest is never observed half-written.
        """
        from pathlib import Path

        from repro.resilience.store import atomic_write_json

        path = Path(path)
        atomic_write_json(path, self.to_dict())
        return path

    @classmethod
    def load(cls, path):
        """Parse a manifest file written by :meth:`write`.

        Raises :class:`~repro.resilience.errors.ManifestError` when
        the file is unreadable, not JSON, or structurally wrong —
        callers quarantine instead of crashing.
        """
        from pathlib import Path

        from repro.resilience.errors import ManifestError

        try:
            data = json.loads(Path(path).read_text())
            if not isinstance(data, dict):
                raise ValueError("manifest is not a JSON object")
            return cls.from_dict(data)
        except OSError as error:
            raise ManifestError(str(path),
                                "unreadable: %s" % error) from error
        except (ValueError, KeyError, TypeError) as error:
            raise ManifestError(str(path),
                                "malformed: %s" % error) from error

    @property
    def total_stage_seconds(self):
        return sum(self.stages.values())

    def __eq__(self, other):
        if not isinstance(other, RunManifest):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self):
        return "RunManifest(%r, key=%r, %d stages)" % (
            self.benchmark, self.cache_key, len(self.stages))
