"""Prometheus text-format exposition over the telemetry registry.

:func:`prometheus_text` renders a registry snapshot in the Prometheus
text exposition format (version 0.0.4): counters become ``_total``
counters, histograms become summaries with ``quantile`` labels from
the reservoir percentiles plus ``_sum``/``_count``.  Metric names are
sanitised (``runner.cache.hit`` -> ``repro_runner_cache_hit_total``).

Two ways to consume it:

* ``repro-branches metrics --replay <log>`` rebuilds a registry from
  a recorded JSONL event log (span durations feed the histograms; the
  final ``telemetry.snapshot`` event each run appends restores the
  counters) and prints the exposition — scrape-by-cron over artifact
  logs;
* ``repro-branches metrics --serve`` (or :func:`serve_metrics` in
  code) exposes ``/metrics`` over a stdlib ``http.server`` — no
  third-party client library, by design.
"""

import re

_INVALID = re.compile(r"[^a-zA-Z0-9_]")

#: Reservoir percentiles exported as summary quantiles.
_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def metric_name(name, prefix="repro"):
    """A Prometheus-safe metric name for a registry entry."""
    return "%s_%s" % (prefix, _INVALID.sub("_", name))


def prometheus_text(snapshot, prefix="repro"):
    """Render a ``Telemetry.snapshot()`` dict as exposition text."""
    lines = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = metric_name(name, prefix) + "_total"
        lines.append("# TYPE %s counter" % metric)
        lines.append("%s %s" % (metric, _format(value)))
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        metric = metric_name(name, prefix)
        lines.append("# TYPE %s summary" % metric)
        for quantile, key in _QUANTILES:
            value = data.get(key)
            if value is None:
                continue
            lines.append('%s{quantile="%s"} %s'
                         % (metric, quantile, _format(value)))
        lines.append("%s_sum %s" % (metric, _format(data["total"])))
        lines.append("%s_count %d" % (metric, data["count"]))
    return "\n".join(lines) + "\n" if lines else ""


def _format(value):
    if isinstance(value, float):
        return repr(value)
    return str(value)


def replay_into(registry, events):
    """Rebuild registry aggregates from a recorded event log.

    Span events feed the ``span.<name>`` duration histograms exactly
    as live spans would; ``telemetry.snapshot`` events (the counter
    dump every traced run and worker attempt appends on exit) restore
    counters, summing across processes.  Returns the registry.
    """
    for event in events:
        kind = event.get("type")
        if kind == "span":
            registry.record("span." + event.get("name", "?"),
                            event.get("duration_s", 0.0))
        elif (kind == "event"
              and event.get("name") == "telemetry.snapshot"):
            for counter, value in (event.get("counters") or {}).items():
                registry.count(counter, value)
    return registry


def serve_metrics(registry, host="127.0.0.1", port=9464):
    """A stdlib HTTP server exposing ``/metrics`` for ``registry``.

    Returns the prepared ``http.server.ThreadingHTTPServer`` —
    call ``serve_forever()`` on it (the CLI does), or drive
    ``handle_request()`` from a test.  No third-party dependency.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self):
            if self.path.rstrip("/") not in ("", "/metrics"):
                self.send_error(404)
                return
            body = prometheus_text(registry.snapshot()).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; "
                             "charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):    # noqa: A002 - stdlib API
            pass                                 # keep scrapes silent

    return ThreadingHTTPServer((host, port), MetricsHandler)
