"""The unit of service work: one (benchmark x scheme x config) shard.

A campaign is a grid of shards; a shard is the smallest thing the
dispatcher schedules, retries, deduplicates, and journals.  Two shard
kinds exist:

``sweep``
    Run one benchmark through the suite runner (hitting the
    content-addressed trace cache) and simulate one predictor
    configuration over its evaluation trace.  This is the paper's
    Tables 1-5 workload, sharded.
``probe``
    Simulate one predictor configuration over one synthetic probe
    trace (a :mod:`repro.characterize.probes` kernel, or explicit
    records shipped by the client).  This is the characterization
    harness's bursty many-small-requests traffic.

Every shard has a **content-addressed key**: for sweep shards it is
derived from the runner's cache stem (which already encodes benchmark
source hash, scale, runs, profile source, and cache format version)
plus the canonical scheme configuration; for probe shards it digests
the trace itself.  Identical requests — from one client or many —
therefore collapse to one key, which is what the dispatcher's
in-flight deduplication and result cache key on.

Shard execution is a pure function of the spec (given the cache
directory), so a shard can run in this process, in a worker process,
or after a service restart and produce bit-identical results.
"""

import hashlib
import json

from repro.service.errors import SpecError

#: Scheme names a shard config may request.  SBTB/CBTB/FS are the
#: paper's three schemes; the rest are the modern zoo, exposed so
#: clients can sweep them through the same service.
SCHEME_NAMES = ("SBTB", "CBTB", "FS", "GShare", "Bimodal",
                "AlwaysTaken", "AlwaysNotTaken")

#: Per-scheme config fields (name -> default).  ``None`` defaults are
#: "constructor decides"; unknown fields are rejected loudly.
_SCHEME_FIELDS = {
    "SBTB": {"entries": 256, "associativity": None},
    "CBTB": {"entries": 256, "associativity": None,
             "counter_bits": 2, "threshold": 2},
    "FS": {},
    "GShare": {"history_bits": 4, "table_bits": 10,
               "entries": 32, "associativity": None},
    "Bimodal": {"table_bits": 10, "entries": 32, "associativity": None},
    "AlwaysTaken": {},
    "AlwaysNotTaken": {},
}

#: Probe trace families a probe shard may name, mapped to the
#: characterize generators' required parameters.
_PROBE_FIELDS = {
    "chain": ("m", "stride", "laps"),
    "step": ("takens", "not_takens", "takens_again"),
    "ladder": ("k", "periods"),
    "victim": ("ways", "stride", "probe"),
    "disagree": ("periods",),
}


def canonical_config(config):
    """Validate a scheme config dict; returns its canonical form.

    The canonical form has every field present (defaults filled in)
    and sorted keys, so equal configurations always serialise — and
    therefore hash — identically.
    """
    if not isinstance(config, dict):
        raise SpecError("scheme config must be an object, got %r"
                        % type(config).__name__)
    scheme = config.get("scheme")
    if scheme not in _SCHEME_FIELDS:
        raise SpecError("unknown scheme %r (expected one of %s)"
                        % (scheme, ", ".join(SCHEME_NAMES)))
    fields = _SCHEME_FIELDS[scheme]
    unknown = set(config) - set(fields) - {"scheme", "label"}
    if unknown:
        raise SpecError("unknown %s config field(s): %s"
                        % (scheme, ", ".join(sorted(unknown))))
    canonical = {"scheme": scheme}
    for field, default in fields.items():
        value = config.get(field, default)
        if value is not None and (not isinstance(value, int)
                                  or isinstance(value, bool)):
            raise SpecError("%s.%s must be an integer, got %r"
                            % (scheme, field, value))
        canonical[field] = value
    if "label" in config:
        if not isinstance(config["label"], str) or not config["label"]:
            raise SpecError("scheme label must be a non-empty string")
        canonical["label"] = config["label"]
    return canonical


def scheme_label(config):
    """Column heading for one canonical scheme config."""
    if "label" in config:
        return config["label"]
    scheme = config["scheme"]
    if scheme in ("SBTB", "CBTB") and config.get("entries") != 256:
        return "%s[%s]" % (scheme, config["entries"])
    return scheme


def make_predictor(config, program=None):
    """Instantiate the predictor a canonical config describes.

    ``program`` supplies the laid-out FS program for sweep shards;
    probe shards run the FS scheme with an empty likely-bit map (the
    characterization roster's convention).
    """
    from repro.predictors import (
        AlwaysNotTaken,
        AlwaysTaken,
        Bimodal,
        CounterBTB,
        ForwardSemanticPredictor,
        GShare,
        SimpleBTB,
    )

    scheme = config["scheme"]
    if scheme == "SBTB":
        return SimpleBTB(config["entries"], config["associativity"])
    if scheme == "CBTB":
        return CounterBTB(config["entries"], config["associativity"],
                          config["counter_bits"], config["threshold"])
    if scheme == "FS":
        if program is not None:
            return ForwardSemanticPredictor(program=program)
        return ForwardSemanticPredictor(likely_sites={})
    if scheme == "GShare":
        return GShare(history_bits=config["history_bits"],
                      table_bits=config["table_bits"],
                      entries=config["entries"],
                      associativity=config["associativity"])
    if scheme == "Bimodal":
        return Bimodal(table_bits=config["table_bits"],
                       entries=config["entries"],
                       associativity=config["associativity"])
    if scheme == "AlwaysTaken":
        return AlwaysTaken()
    return AlwaysNotTaken()


# -- probe traces ------------------------------------------------------------


def trace_to_payload(trace):
    """Serialise a BranchTrace into a JSON-shippable payload."""
    return {
        "records": [list(record) for record in trace.records()],
        "total_instructions": trace.total_instructions,
    }


def trace_from_payload(payload):
    """Rebuild a BranchTrace from :func:`trace_to_payload` output."""
    from repro.vm.tracing import BranchTrace

    trace = BranchTrace()
    for record in payload["records"]:
        site, branch_class, taken, target, gap = record
        trace.append(int(site), int(branch_class), bool(taken),
                     int(target), int(gap))
    trace.total_instructions = int(payload["total_instructions"])
    return trace


def validate_probe(probe):
    """Validate one probe spec; returns its canonical dict form.

    A probe is either a named generator family with its parameters
    (``{"family": "chain", "m": 4, "stride": 1, "laps": 6}``) or
    explicit records (``{"records": [...], "total_instructions": n}``).
    """
    if not isinstance(probe, dict):
        raise SpecError("probe must be an object, got %r"
                        % type(probe).__name__)
    if "records" in probe:
        records = probe["records"]
        if not isinstance(records, list) or not records:
            raise SpecError("probe records must be a non-empty list")
        for record in records:
            if not isinstance(record, (list, tuple)) or len(record) != 5:
                raise SpecError("each probe record must be "
                                "[site, class, taken, target, gap]")
        return {"records": [list(record) for record in records],
                "total_instructions": int(
                    probe.get("total_instructions", len(records)))}
    family = probe.get("family")
    if family not in _PROBE_FIELDS:
        raise SpecError("unknown probe family %r (expected one of %s "
                        "or explicit 'records')"
                        % (family, ", ".join(sorted(_PROBE_FIELDS))))
    canonical = {"family": family}
    for field in _PROBE_FIELDS[family]:
        if field not in probe:
            raise SpecError("probe family %r needs field %r"
                            % (family, field))
        value = probe[field]
        if field == "probe":
            canonical[field] = bool(value)
        elif not isinstance(value, int) or isinstance(value, bool):
            raise SpecError("probe field %r must be an integer, got %r"
                            % (field, value))
        else:
            canonical[field] = value
    return canonical


def build_probe_trace(probe):
    """The BranchTrace a canonical probe spec describes."""
    from repro.characterize.probes import (
        chain_trace,
        disagree_trace,
        ladder_trace,
        step_trace,
        victim_trace,
    )

    if "records" in probe:
        return trace_from_payload(probe)
    family = probe["family"]
    if family == "chain":
        return chain_trace(probe["m"], probe["stride"], probe["laps"])
    if family == "step":
        return step_trace(probe["takens"], probe["not_takens"],
                          probe["takens_again"])
    if family == "ladder":
        return ladder_trace(probe["k"], probe["periods"])
    if family == "victim":
        return victim_trace(probe["ways"], probe["stride"],
                            probe=probe["probe"])
    return disagree_trace(probe["periods"])


def probe_label(probe):
    """Row heading for one canonical probe spec."""
    if "records" in probe:
        digest = hashlib.sha1(
            json.dumps(probe, sort_keys=True).encode()).hexdigest()
        return "records-%s" % digest[:8]
    parts = ["%s=%s" % (field, probe[field])
             for field in sorted(probe) if field != "family"]
    return "%s(%s)" % (probe["family"], ", ".join(parts))


# -- the shard ---------------------------------------------------------------


class ShardSpec:
    """One schedulable unit of campaign work.

    Attributes:
        kind: ``"sweep"`` or ``"probe"``.
        benchmark: benchmark name (sweep shards).
        probe: canonical probe dict (probe shards).
        config: canonical scheme config dict.
        scale / runs / profile_source: runner parameters (sweep).
        flush_interval: optional flush cadence (probe).
        engine: simulation engine the shard runs with
            (``auto``/``scalar``/``vector``, or ``chunked`` to route
            chunkable predictors through the two-phase segmented
            engine — bit-identical either way).
    """

    __slots__ = ("kind", "benchmark", "probe", "config", "scale",
                 "runs", "profile_source", "flush_interval", "engine",
                 "_key")

    def __init__(self, kind, config, benchmark=None, probe=None,
                 scale=1.0, runs=None, profile_source="measured",
                 flush_interval=None, engine="auto"):
        self.kind = kind
        self.benchmark = benchmark
        self.probe = probe
        self.config = config
        self.scale = scale
        self.runs = runs
        self.profile_source = profile_source
        self.flush_interval = flush_interval
        self.engine = engine
        self._key = None

    @property
    def row(self):
        """The table row this shard's result lands in."""
        if self.kind == "sweep":
            return self.benchmark
        return probe_label(self.probe)

    @property
    def column(self):
        """The table column this shard's result lands in."""
        return scheme_label(self.config)

    @property
    def breaker_group(self):
        """Which circuit breaker guards this shard.

        Sweep shards break per benchmark (one misbehaving workload
        must not shed the others); probe shards share one group per
        scheme (they are cheap and homogeneous).
        """
        if self.kind == "sweep":
            return "benchmark:%s" % self.benchmark
        return "probe:%s" % self.config["scheme"]

    def content_stem(self):
        """The content-addressed identity of this shard's *input*.

        Sweep shards reuse the runner's cache stem — benchmark source
        hash, scale, runs, profile source, and cache format version
        are all baked into it, so a source edit or format bump changes
        the key and nothing stale is ever deduplicated against.
        Probe shards digest the canonical probe spec.
        """
        if self.kind == "sweep":
            from repro.experiments.runner import content_stem

            return content_stem(self.benchmark, scale=self.scale,
                                runs=self.runs,
                                profile_source=self.profile_source)
        digest = hashlib.sha1(
            json.dumps(self.probe, sort_keys=True).encode()).hexdigest()
        return "probe-%s" % digest[:16]

    @property
    def key(self):
        """Content-addressed deduplication key (memoised)."""
        if self._key is None:
            payload = json.dumps({
                "stem": self.content_stem(),
                "config": self.config,
                "flush_interval": self.flush_interval,
            }, sort_keys=True)
            self._key = hashlib.sha1(payload.encode()).hexdigest()[:16]
        return self._key

    def to_dict(self):
        return {
            "kind": self.kind,
            "benchmark": self.benchmark,
            "probe": self.probe,
            "config": self.config,
            "scale": self.scale,
            "runs": self.runs,
            "profile_source": self.profile_source,
            "flush_interval": self.flush_interval,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(data["kind"], data["config"],
                   benchmark=data.get("benchmark"),
                   probe=data.get("probe"),
                   scale=data.get("scale", 1.0),
                   runs=data.get("runs"),
                   profile_source=data.get("profile_source", "measured"),
                   flush_interval=data.get("flush_interval"),
                   engine=data.get("engine", "auto"))

    def __repr__(self):
        return "ShardSpec(%s, %s x %s)" % (self.kind, self.row,
                                           self.column)


def stats_from_dict(data):
    """Rebuild a PredictionStats from its ``as_dict`` payload."""
    from repro.predictors.base import PredictionStats

    stats = PredictionStats()
    stats.total = data["total"]
    stats.correct = data["correct"]
    stats.buffer_accesses = data["buffer_accesses"]
    stats.buffer_misses = data["buffer_misses"]
    stats.by_class_total = {int(key): value for key, value
                            in data["by_class_total"].items()}
    stats.by_class_correct = {int(key): value for key, value
                              in data["by_class_correct"].items()}
    return stats


def _shard_stats(predictor, trace, chunked, engine):
    """Simulate one shard's predictor, honouring the chunked request.

    Chunked execution runs in-process here (the shard itself may
    already be inside a supervised worker; nesting process pools
    would fight the dispatcher for cores) and only for predictors the
    segmented engine supports — the rest take the ordinary path.
    """
    from repro.predictors.base import simulate

    if chunked:
        from repro.kernels.chunked import chunked_stats, supports_chunked

        if supports_chunked(predictor):
            return chunked_stats(predictor, trace)
    return simulate(predictor, trace, engine=engine)


def execute_shard(spec, cache_dir=None):
    """Run one shard to completion; returns its JSON-safe result dict.

    Pure given the spec and the (content-addressed, crash-safe) cache
    directory: a shard re-executed after a crash, in another process,
    or on another day produces a bit-identical result — which is what
    lets the chaos gate demand byte-equal tables across a SIGKILL.
    """
    from repro.predictors.base import simulate
    from repro.telemetry.core import TELEMETRY

    if isinstance(spec, dict):
        spec = ShardSpec.from_dict(spec)
    # "chunked" routes chunkable predictors through the two-phase
    # segmented engine; everything else (FS, static schemes, flushed
    # probe runs) falls back to the vector/scalar path.  Either way
    # the result is bit-identical, so the shard stays a pure function
    # of its spec and the dedup/result-cache contract holds.
    chunked = spec.engine == "chunked"
    engine = "auto" if chunked else spec.engine
    with TELEMETRY.span("service.shard", kind=spec.kind, row=spec.row,
                        column=spec.column):
        if spec.kind == "sweep":
            from repro.experiments.runner import SuiteRunner

            runner = SuiteRunner(scale=spec.scale, runs=spec.runs,
                                 cache_dir=cache_dir,
                                 engine=engine,
                                 profile_source=spec.profile_source)
            run = runner.run(spec.benchmark)
            predictor = make_predictor(spec.config,
                                       program=run.fs_program)
            stats = _shard_stats(predictor, run.trace, chunked, engine)
        else:
            trace = build_probe_trace(spec.probe)
            predictor = make_predictor(spec.config)
            if chunked and spec.flush_interval is None:
                stats = _shard_stats(predictor, trace, chunked, engine)
            else:
                stats = simulate(predictor, trace,
                                 flush_interval=spec.flush_interval,
                                 engine=engine)
    return {
        "key": spec.key,
        "kind": spec.kind,
        "row": spec.row,
        "column": spec.column,
        "accuracy": stats.accuracy,
        "miss_ratio": stats.miss_ratio,
        "stats": stats.as_dict(),
    }
