"""Crash-safe campaign journal: restart and resume, never re-run.

The dispatcher journals every campaign to
``<cache_dir>/service/campaign-<id>.json`` via the resilience layer's
atomic writes, and appends every *completed* shard execution to
``<cache_dir>/service/executions.jsonl``.  The ordering is the whole
crash-recovery story:

1. a shard's result is first folded into the campaign journal
   (atomic replace, fsynced), and only **then**
2. appended to the executions log.

A SIGKILL between the two leaves a journal that already owns the
result — the restarted service resumes the campaign with that cell
done and never re-dispatches it — so a shard key can appear at most
once per execution in the log, which is exactly what the chaos gate
asserts.  The reverse order would log an execution whose result died
with the process, forcing a re-run that the log would then count as a
duplicate.

Unreadable journals are quarantined (``*.corrupt``), never deleted.
"""

import json
import os

from repro.resilience.store import atomic_write_json, quarantine
from repro.service.campaign import Campaign
from repro.telemetry.core import TELEMETRY

EXECUTIONS_LOG = "executions.jsonl"


class CampaignJournal:
    """Durable record of campaigns and shard executions."""

    def __init__(self, directory):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._executions_path = os.path.join(directory, EXECUTIONS_LOG)

    # -- campaigns -----------------------------------------------------------

    def _campaign_path(self, campaign_id):
        return os.path.join(self.directory,
                            "campaign-%s.json" % campaign_id)

    def write_campaign(self, campaign):
        """Persist a campaign snapshot atomically."""
        atomic_write_json(self._campaign_path(campaign.id),
                          campaign.to_journal_dict())

    def load_campaigns(self):
        """Restore all journalled campaigns; quarantine bad records."""
        campaigns = []
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return campaigns
        for name in names:
            if not (name.startswith("campaign-")
                    and name.endswith(".json")):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, encoding="utf-8") as handle:
                    data = json.load(handle)
                campaigns.append(Campaign.from_journal_dict(data))
            except (ValueError, KeyError, OSError) as error:
                quarantine(path, "unreadable campaign journal: %s"
                           % error)
                TELEMETRY.count("service.journal.quarantined")
        return campaigns

    # -- executions log ------------------------------------------------------

    def record_execution(self, key, instance, attempt):
        """Append one completed shard execution (called after the
        campaign journal write — see module docstring)."""
        line = json.dumps({"key": key, "instance": instance,
                           "attempt": attempt}, sort_keys=True)
        with open(self._executions_path, "a", encoding="utf-8") as log:
            log.write(line + "\n")
            log.flush()
            os.fsync(log.fileno())

    def executions(self):
        """All logged executions (tolerant of a torn final line)."""
        entries = []
        try:
            with open(self._executions_path, encoding="utf-8") as log:
                for line in log:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entries.append(json.loads(line))
                    except ValueError:
                        continue    # torn tail from a crash mid-append
        except OSError:
            pass
        return entries

    def __repr__(self):
        return "CampaignJournal(%r)" % self.directory
