"""The sharded sweep-campaign service.

The serving layer on top of the reproduction pipeline: campaigns are
validated into grids of content-addressed shards, admitted against a
bounded queue with explicit backpressure, dispatched to a multiprocess
worker pool with in-flight deduplication, bounded by per-campaign
deadlines, degraded per-benchmark by circuit breakers, and journalled
so a SIGKILLed service resumes exactly where it died.  See
``docs/SERVICE.md`` for the operational contract.
"""

from repro.service.admission import AdmissionQueue
from repro.service.breaker import CircuitBreaker
from repro.service.campaign import Campaign, CampaignSpec
from repro.service.client import CampaignFailed, ServiceClient
from repro.service.dispatcher import CampaignService
from repro.service.errors import (
    AdmissionError,
    ServiceError,
    ServiceUnavailable,
    SpecError,
    UnknownCampaign,
)
from repro.service.http import ServiceServer
from repro.service.journal import CampaignJournal
from repro.service.shards import ShardSpec, execute_shard

__all__ = [
    "AdmissionError",
    "AdmissionQueue",
    "Campaign",
    "CampaignFailed",
    "CampaignJournal",
    "CampaignService",
    "CampaignSpec",
    "CircuitBreaker",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceUnavailable",
    "ShardSpec",
    "SpecError",
    "UnknownCampaign",
    "execute_shard",
]
