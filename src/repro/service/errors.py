"""Typed error taxonomy of the campaign service.

Every rejection a client can trigger has its own class, and every
class carries the data the client needs to act on it — the admission
queue does not just say "no", it says *when to come back*.  Service
bugs keep raising plain exceptions; only these types map to HTTP
status codes in :mod:`repro.service.http`.
"""


class ServiceError(Exception):
    """Base class for everything the service deliberately raises."""


class SpecError(ServiceError):
    """A campaign specification that cannot be expanded into shards.

    Maps to HTTP 400; the message is the entire diagnosis, so it names
    the offending field and the accepted values.
    """


class AdmissionError(ServiceError):
    """Backpressure: the bounded queue cannot take the new shards.

    Carries ``retry_after_s`` — the service's estimate of when enough
    of the queue will have drained — so clients back off for a useful
    amount of time instead of hammering.  Maps to HTTP 429 with a
    ``Retry-After`` header.
    """

    def __init__(self, needed, free, depth, capacity, retry_after_s):
        self.needed = needed
        self.free = free
        self.depth = depth
        self.capacity = capacity
        self.retry_after_s = retry_after_s
        super().__init__(
            "queue full: %d shard%s needed, %d slot%s free "
            "(depth %d/%d); retry after %.1fs"
            % (needed, "" if needed == 1 else "s", free,
               "" if free == 1 else "s", depth, capacity, retry_after_s))


class UnknownCampaign(ServiceError):
    """A campaign id the service has never seen (HTTP 404)."""

    def __init__(self, campaign_id):
        self.campaign_id = campaign_id
        super().__init__("unknown campaign %r" % campaign_id)


class ServiceUnavailable(ServiceError):
    """The service is shutting down and not accepting work (HTTP 503)."""
