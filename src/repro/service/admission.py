"""Admission control: a bounded shard queue with explicit backpressure.

The service never buffers unbounded work.  The queue holds at most
``capacity`` distinct shard keys; a campaign whose *new* shards (after
deduplication against cached results and in-flight work) do not fit is
rejected at submission time with :class:`~repro.service.errors.
AdmissionError` carrying a retry-after estimate, instead of being
accepted and silently growing memory.  Rejection is cheap and honest:
the client learns the queue depth and a drain estimate computed from
the recent shard-latency EWMA, so a well-behaved client backs off for
roughly the right time.

Entries carry a ``not_before`` timestamp so retried shards re-enter
with jittered backoff without blocking fresh work behind them.
"""

import time

from repro.service.errors import AdmissionError
from repro.telemetry.core import TELEMETRY

#: Fallback per-shard seconds before any shard has completed.
_DEFAULT_SHARD_SECONDS = 1.0

#: EWMA smoothing for the shard-latency estimate.
_EWMA_ALPHA = 0.3


class AdmissionQueue:
    """Bounded FIFO of shard keys with backoff-aware scheduling.

    Not thread-safe on its own; the dispatcher serialises access under
    its lock.
    """

    def __init__(self, capacity=64, clock=time.monotonic):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1 (got %r)"
                             % capacity)
        self.capacity = capacity
        self._clock = clock
        self._entries = []          # (not_before, sequence, key)
        self._keys = set()
        self._sequence = 0
        self._shard_seconds = None  # EWMA of completed shard latency

    # -- sizing --------------------------------------------------------------

    @property
    def depth(self):
        return len(self._entries)

    @property
    def free(self):
        return self.capacity - len(self._entries)

    def __contains__(self, key):
        return key in self._keys

    # -- latency model -------------------------------------------------------

    def observe_latency(self, seconds):
        """Feed one completed shard's wall-clock into the EWMA."""
        if self._shard_seconds is None:
            self._shard_seconds = seconds
        else:
            self._shard_seconds += _EWMA_ALPHA * (
                seconds - self._shard_seconds)

    @property
    def shard_seconds(self):
        return (self._shard_seconds if self._shard_seconds is not None
                else _DEFAULT_SHARD_SECONDS)

    def retry_after(self, needed, workers):
        """Seconds until ``needed`` slots should have drained."""
        backlog = max(self.depth + needed - self.capacity, 1)
        estimate = backlog * self.shard_seconds / max(workers, 1)
        return max(round(estimate, 2), 0.1)

    # -- admission -----------------------------------------------------------

    def admit(self, keys, workers=1):
        """Enqueue ``keys`` or raise :class:`AdmissionError`.

        All-or-nothing: a campaign is either fully admitted or fully
        rejected — partial admission would leave the client owning a
        half-queued campaign it can neither poll to completion nor
        cleanly retry.
        """
        new = [key for key in keys if key not in self._keys]
        if len(new) > self.free:
            retry_after = self.retry_after(len(new), workers)
            TELEMETRY.count("service.admission.rejected")
            TELEMETRY.event("service.admission.rejected",
                            needed=len(new), free=self.free,
                            depth=self.depth, capacity=self.capacity,
                            retry_after_s=retry_after)
            raise AdmissionError(len(new), self.free, self.depth,
                                 self.capacity, retry_after)
        for key in new:
            self._push(key, 0.0)
        if new:
            TELEMETRY.count("service.queue.enqueued", len(new))
            TELEMETRY.record("service.queue.depth", self.depth)
        return new

    def _push(self, key, not_before):
        self._sequence += 1
        self._entries.append((not_before, self._sequence, key))
        self._entries.sort()
        self._keys.add(key)

    def requeue(self, key, delay):
        """Re-admit a retried shard after ``delay`` seconds.

        Retries bypass the capacity check — the shard already holds
        its slot conceptually; rejecting a retry would turn a
        transient worker death into a lost shard.
        """
        if key not in self._keys:
            self._push(key, self._clock() + delay)

    def pop_ready(self):
        """The next runnable key, or None (empty or all backing off)."""
        if not self._entries:
            return None
        now = self._clock()
        for index, (not_before, _seq, key) in enumerate(self._entries):
            if not_before <= now:
                del self._entries[index]
                self._keys.discard(key)
                return key
        return None

    def discard(self, key):
        """Drop a key (its waiters all cancelled); True if present."""
        if key not in self._keys:
            return False
        self._keys.discard(key)
        self._entries = [entry for entry in self._entries
                         if entry[2] != key]
        return True

    def __repr__(self):
        return "AdmissionQueue(%d/%d)" % (self.depth, self.capacity)
