"""Stdlib HTTP/JSON front end for the campaign service.

Endpoints (all JSON unless noted):

``POST /campaigns``
    Submit a campaign spec.  202 with the campaign's status dict;
    400 on a :class:`SpecError`; 429 with a ``Retry-After`` header on
    :class:`AdmissionError`; 503 while shutting down.
``GET /campaigns/<id>``
    Campaign status (404 for an unknown id).
``GET /campaigns/<id>/results?since=N&wait=S``
    Stream completion events past cursor ``N``.  With ``wait``, long-
    polls up to ``S`` seconds (capped) for fresh events before
    answering.
``GET /campaigns/<id>/tables``
    The campaign's tables under the degraded contract (missing cells
    are ``null`` + listed with reasons, never fabricated).
``GET /healthz``
    Liveness: ``{"ok": true, "instance": ...}``.
``GET /stats``
    Service gauges: queue depth, inflight, breakers, campaign states,
    telemetry counters.
``GET /metrics``
    Prometheus text exposition of the telemetry registry (text/plain).

The server is a ``ThreadingHTTPServer`` of daemon threads — a stalled
(slow-client) connection occupies its own thread and never blocks the
dispatcher loop or other clients.
"""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.service.errors import (
    AdmissionError,
    ServiceUnavailable,
    SpecError,
    UnknownCampaign,
)
from repro.telemetry.core import TELEMETRY

#: Longest long-poll a single /results request may hold (seconds).
MAX_WAIT_S = 30.0

#: Largest request body accepted (a campaign spec with explicit probe
#: records stays well under this; anything bigger is hostile).
MAX_BODY_BYTES = 4 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the shared :class:`CampaignService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-branches-service"

    # BaseHTTPRequestHandler logs to stderr by default; the service
    # has telemetry for that.
    def log_message(self, format, *args):  # noqa: A002
        TELEMETRY.event("service.http", line=format % args)

    @property
    def service(self):
        return self.server.service

    # -- plumbing ------------------------------------------------------------

    def _send_json(self, code, payload, headers=None):
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code, text, content_type="text/plain"):
        body = text.encode()
        self.send_response(code)
        self.send_header("Content-Type",
                         content_type + "; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise SpecError("request body too large (%d bytes, limit "
                            "%d)" % (length, MAX_BODY_BYTES))
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SpecError("empty request body (expected a JSON "
                            "campaign spec)")
        try:
            return json.loads(raw)
        except ValueError as error:
            raise SpecError("request body is not valid JSON: %s"
                            % error) from error

    def _guarded(self, handler):
        """Run a route handler, mapping the error taxonomy to HTTP."""
        try:
            try:
                handler()
            except SpecError as error:
                self._send_json(400, {"error": str(error)})
            except AdmissionError as error:
                self._send_json(
                    429,
                    {"error": str(error),
                     "retry_after_s": error.retry_after_s,
                     "depth": error.depth, "capacity": error.capacity},
                    headers={"Retry-After": "%d"
                             % max(int(error.retry_after_s + 0.5), 1)})
            except UnknownCampaign as error:
                self._send_json(404, {"error": str(error)})
            except ServiceUnavailable as error:
                self._send_json(503, {"error": str(error) or
                                      "service unavailable"})
            except Exception as error:
                TELEMETRY.count("service.http.errors")
                TELEMETRY.event("service.http.error",
                                error="%s: %s"
                                % (type(error).__name__, error))
                self._send_json(500, {"error": "internal error"})
        except (BrokenPipeError, ConnectionResetError, OSError):
            # The client went away mid-request or mid-response (the
            # slow-client scenario ends exactly here); nothing to do.
            self.close_connection = True

    # -- routes --------------------------------------------------------------

    def do_POST(self):  # noqa: N802 (http.server naming)
        parsed = urlparse(self.path)
        if parsed.path == "/campaigns":
            self._guarded(self._post_campaign)
        else:
            self._send_json(404, {"error": "no such route %r"
                                  % parsed.path})

    def _post_campaign(self):
        payload = self._read_body()
        status = self.service.submit(payload)
        self._send_json(202, status)

    def do_GET(self):  # noqa: N802
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        query = parse_qs(parsed.query)
        if parts == ["healthz"]:
            self._send_json(200, {"ok": True,
                                  "instance":
                                  self.service.instance_id})
        elif parts == ["stats"]:
            self._guarded(lambda: self._send_json(
                200, self.service.stats()))
        elif parts == ["metrics"]:
            self._guarded(self._get_metrics)
        elif len(parts) == 2 and parts[0] == "campaigns":
            self._guarded(lambda: self._send_json(
                200, self.service.status(parts[1])))
        elif (len(parts) == 3 and parts[0] == "campaigns"
                and parts[2] == "results"):
            self._guarded(lambda: self._get_results(parts[1], query))
        elif (len(parts) == 3 and parts[0] == "campaigns"
                and parts[2] == "tables"):
            self._guarded(lambda: self._send_json(
                200, self.service.tables(parts[1])))
        else:
            self._send_json(404, {"error": "no such route %r"
                                  % parsed.path})

    def _get_metrics(self):
        from repro.telemetry.exposition import prometheus_text

        self._send_text(200, prometheus_text(TELEMETRY.snapshot()),
                        content_type="text/plain; version=0.0.4")

    def _get_results(self, campaign_id, query):
        try:
            since = int(query.get("since", ["0"])[0])
            wait = float(query.get("wait", ["0"])[0])
        except ValueError as error:
            raise SpecError("since/wait must be numeric: %s"
                            % error) from error
        wait = min(max(wait, 0.0), MAX_WAIT_S)
        deadline = time.monotonic() + wait
        while True:
            payload = self.service.events_since(campaign_id,
                                                since=since)
            if payload["events"] or payload["status"] != "running" \
                    or time.monotonic() >= deadline:
                self._send_json(200, payload)
                return
            time.sleep(0.05)


class _QuietThreadingServer(ThreadingHTTPServer):
    """Per-connection failures go to telemetry, not stderr."""

    def handle_error(self, request, client_address):
        import sys

        error = sys.exc_info()[1]
        TELEMETRY.event("service.http.connection_error",
                        client="%s:%s" % client_address[:2],
                        error="%s: %s" % (type(error).__name__, error))


class ServiceServer:
    """Owns the HTTP server + dispatcher pair for one service."""

    def __init__(self, service, host="127.0.0.1", port=0):
        self.service = service
        self.httpd = _QuietThreadingServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = service
        self._thread = None

    @property
    def address(self):
        host, port = self.httpd.server_address[:2]
        return "http://%s:%d" % (host, port)

    def start(self):
        """Start the dispatcher loop and serve requests (background)."""
        self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True,
            name="campaign-http")
        self._thread.start()
        return self

    def serve_forever(self):
        """Start the dispatcher loop and serve on this thread."""
        self.service.start()
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self):
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.stop()
