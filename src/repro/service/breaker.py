"""Per-benchmark circuit breakers: fail fast, serve degraded tables.

A benchmark whose shards keep dying (a pathological input, a
benchmark-specific simulator bug, a poisoned cache entry) must not
take the whole campaign down with it, and must not burn the worker
pool on retries that will not succeed.  Each breaker group (one per
benchmark, one per probe scheme) follows the classic three-state
machine:

* **closed** — normal operation; consecutive failures are counted,
  successes reset the count.
* **open** — tripped after ``threshold`` consecutive failures.  New
  shards in the group are *shed*: resolved immediately as degraded
  cells (marked missing in the tables, never fabricated) without
  touching a worker.
* **half-open** — after ``cooldown`` seconds one probe shard is let
  through.  Success closes the breaker; failure re-opens it for
  another cooldown.

Every transition emits a telemetry event and bumps a counter, so
``repro-branches top``/``metrics`` can watch breaker state live.
"""

import time

from repro.telemetry.core import TELEMETRY

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One breaker group's state machine."""

    __slots__ = ("group", "threshold", "cooldown", "_clock", "state",
                 "consecutive_failures", "opened_at", "_probing")

    def __init__(self, group, threshold=3, cooldown=30.0,
                 clock=time.monotonic):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.group = group
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = None
        self._probing = False

    def allow(self):
        """May a shard of this group be dispatched right now?

        In the open state, the first call after the cooldown expires
        transitions to half-open and admits exactly one probe; every
        other call sheds.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock() - self.opened_at >= self.cooldown:
                self.state = HALF_OPEN
                self._probing = False
                TELEMETRY.event("service.breaker.half_open",
                                group=self.group)
            else:
                return False
        if self.state == HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self):
        if self.state != CLOSED:
            TELEMETRY.count("service.breaker.closed")
            TELEMETRY.event("service.breaker.close", group=self.group)
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self):
        """Count a failure; returns True when this one trips the breaker."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
                self.state == CLOSED
                and self.consecutive_failures >= self.threshold):
            self.state = OPEN
            self.opened_at = self._clock()
            self._probing = False
            TELEMETRY.count("service.breaker.tripped")
            TELEMETRY.event("service.breaker.open", group=self.group,
                            consecutive_failures=(
                                self.consecutive_failures))
            return True
        return False

    def to_dict(self):
        return {"group": self.group, "state": self.state,
                "consecutive_failures": self.consecutive_failures}

    def __repr__(self):
        return "CircuitBreaker(%r, %s, failures=%d)" % (
            self.group, self.state, self.consecutive_failures)
