"""The campaign dispatcher: dedup, backpressure, deadlines, recovery.

:class:`CampaignService` is the long-lived heart of the serving layer.
It refactors the one-shot :mod:`repro.experiments.runner` flow into a
work queue of (benchmark x scheme x config) shards and pumps them
through a small multiprocess worker pool.  The invariants it holds:

**Deduplication.**  Shards are keyed by content-addressed identity
(:attr:`~repro.service.shards.ShardSpec.key`).  A shard requested by
two campaigns — or two clients, or the same client twice — runs once;
everyone waits on the same key and receives the same result.  Dedup
hits are counted (``service.dedup.inflight`` / ``service.dedup.
cached``) so tests and the chaos gate can *prove* nothing ran twice.

**Backpressure.**  Admission is all-or-nothing against a bounded
queue (:class:`~repro.service.admission.AdmissionQueue`); a campaign
that does not fit is rejected at submission with a retry-after
estimate.  The service never buffers unbounded work.

**Deadlines.**  A campaign's ``deadline_s`` propagates to its shards:
at expiry, queued shards are cancelled, running shards whose only
waiter expired are killed, and the campaign serves a degraded partial
table.  Shards other campaigns still want keep running.

**Degradation.**  A per-group circuit breaker
(:class:`~repro.service.breaker.CircuitBreaker`) sheds shards of a
repeatedly failing benchmark instead of burning the pool on them;
shed cells are marked in the tables, never fabricated.

**Crash recovery.**  Every accepted campaign and completed shard is
journalled (:class:`~repro.service.journal.CampaignJournal`,
journal-before-log ordering).  A SIGKILLed service restarted over the
same cache directory resumes every campaign with completed cells
intact and re-dispatches only the unfinished remainder.
"""

import multiprocessing
import os
import random
import threading
import time
import uuid

from repro.resilience.faults import FAULTS
from repro.resilience.supervisor import _backoff_seconds
from repro.service.admission import AdmissionQueue
from repro.service.breaker import CircuitBreaker
from repro.service.campaign import (
    CANCELLED,
    DONE,
    FAILED,
    SHED,
    Campaign,
    CampaignSpec,
)
from repro.service.errors import ServiceUnavailable, UnknownCampaign
from repro.service.journal import CampaignJournal
from repro.service.shards import execute_shard
from repro.telemetry.core import TELEMETRY

#: Test/chaos knob: seconds each shard worker sleeps before executing,
#: so a gate can reliably SIGKILL the service mid-campaign.
SHARD_DELAY_ENV = "REPRO_SERVICE_SHARD_DELAY"


def _shard_child(spec_dict, cache_dir, key, attempt, queue):
    """Worker-process entry point (module-level for picklability).

    Mirrors the supervisor's ``_child_main`` protocol: activate the
    fault plan from the environment, give the injector its shot at
    this attempt, then run the shard and report ``("ok", result)`` or
    ``("error", message)`` on the queue.  A crash (injected or real)
    reports nothing — the dispatcher reaps the exit code.
    """
    FAULTS.activate_from_env()
    FAULTS.on_worker_start(key, attempt)
    FAULTS.on_shard_start(key, attempt)
    delay = os.environ.get(SHARD_DELAY_ENV)
    if delay:
        time.sleep(float(delay))
    try:
        result = execute_shard(spec_dict, cache_dir=cache_dir)
    except Exception as error:
        queue.put(("error", "%s: %s" % (type(error).__name__, error)))
        os._exit(11)
    queue.put(("ok", result))


class _ShardWorker:
    """One in-flight shard process."""

    __slots__ = ("key", "attempt", "queue", "process", "started",
                 "deadline")

    def __init__(self, context, spec, cache_dir, key, attempt,
                 timeout):
        self.key = key
        self.attempt = attempt
        self.queue = context.SimpleQueue()
        self.process = context.Process(
            target=_shard_child,
            args=(spec.to_dict(),
                  None if cache_dir is None else str(cache_dir),
                  key, attempt, self.queue),
            daemon=True)
        self.started = time.monotonic()
        self.process.start()
        self.deadline = (self.started + timeout
                         if timeout is not None else None)

    @property
    def timed_out(self):
        return (self.deadline is not None
                and time.monotonic() >= self.deadline)

    def finish(self):
        """(status, result_or_detail) once the process has exited."""
        self.process.join()
        message = None
        if not self.queue.empty():
            try:
                message = self.queue.get()
            except Exception:
                message = None
        if message is not None and message[0] == "ok":
            return "ok", message[1]
        if message is not None and message[0] == "error":
            return "error", message[1]
        return "crash", ("worker exited with code %r"
                         % (self.process.exitcode,))

    def kill(self):
        if self.process.is_alive():
            self.process.kill()
        self.process.join()


class CampaignService:
    """The long-lived sharded campaign service.

    Args:
        cache_dir: content-addressed cache directory; the journal
            lives under ``<cache_dir>/service/``.
        workers: maximum concurrently running shard processes.
        queue_capacity: admission-queue bound (explicit backpressure
            beyond it).
        mode: ``"process"`` (real worker processes) or ``"inline"``
            (shards execute in the calling thread — deterministic, for
            tests and fault scenarios that need no real parallelism).
        shard_timeout: per-attempt wall-clock limit for a shard
            process (None = unlimited).
        retries: extra attempts after a shard's first failure.
        breaker_threshold / breaker_cooldown: circuit-breaker tuning
            per group.
        seed: seeds the retry-backoff jitter.
    """

    def __init__(self, cache_dir, workers=1, queue_capacity=64,
                 mode="process", shard_timeout=None, retries=2,
                 backoff=0.1, breaker_threshold=3,
                 breaker_cooldown=30.0, seed=0, context=None):
        if mode not in ("process", "inline"):
            raise ValueError("mode must be 'process' or 'inline'")
        self.cache_dir = cache_dir
        self.workers = max(int(workers), 1)
        self.mode = mode
        self.shard_timeout = shard_timeout
        self.retries = retries
        self.backoff = backoff
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.instance_id = uuid.uuid4().hex[:8]
        self._rng = random.Random(seed)
        self._context = (multiprocessing.get_context()
                         if context is None else context)
        self._lock = threading.RLock()
        self._closing = False
        self._thread = None

        self.queue = AdmissionQueue(capacity=queue_capacity)
        self.campaigns = {}     # id -> Campaign
        self.inflight = {}      # key -> _ShardWorker
        self.waiters = {}       # key -> set of campaign ids
        self.specs = {}         # key -> ShardSpec
        self.results = {}       # key -> result dict (in-memory cache)
        self.attempts = {}      # key -> attempts so far
        self.breakers = {}      # group -> CircuitBreaker
        self.journal = CampaignJournal(
            os.path.join(str(cache_dir), "service"))
        self._finalized = set()  # campaign ids already counted done
        self._recover()

    # -- recovery ------------------------------------------------------------

    def _recover(self):
        """Resume journalled campaigns after a restart (or crash)."""
        for campaign in self.journal.load_campaigns():
            self.campaigns[campaign.id] = campaign
            for cell in campaign.cells.values():
                if cell["status"] == DONE and cell["result"] is not None:
                    if cell["key"] not in self.results:
                        self.results[cell["key"]] = cell["result"]
                        TELEMETRY.count("service.shard.resumed")
            if campaign.finished:
                self._finalized.add(campaign.id)
                continue
            if campaign.past_deadline():
                self._expire_campaign(campaign)
                continue
            requeued = 0
            for shard in campaign.shards:
                key = shard.key
                cell = campaign.cells[(shard.row, shard.column)]
                if cell["status"] != "pending":
                    continue
                if key in self.results:
                    campaign.resolve(key, DONE,
                                     result=self.results[key])
                    continue
                self.specs.setdefault(key, shard)
                self.waiters.setdefault(key, set()).add(campaign.id)
                if key not in self.queue:
                    # recovery bypasses admission: the campaign was
                    # already admitted before the crash.
                    self.queue.requeue(key, 0.0)
                    requeued += 1
            self.journal.write_campaign(campaign)
            if requeued or campaign.finished:
                TELEMETRY.event("service.campaign.recovered",
                                campaign=campaign.id,
                                requeued=requeued)

    # -- submission ----------------------------------------------------------

    def submit(self, payload):
        """Validate, admit, and register one campaign.

        Raises :class:`SpecError` (invalid), :class:`AdmissionError`
        (queue full — nothing was registered), or
        :class:`ServiceUnavailable` (shutting down).  Returns the
        campaign's status dict.
        """
        with self._lock:
            if self._closing:
                raise ServiceUnavailable("service is shutting down")
            spec = CampaignSpec.from_payload(payload)
            campaign = Campaign(uuid.uuid4().hex[:12], spec)
            unique = {}
            for shard in campaign.shards:
                unique.setdefault(shard.key, shard)
            new_keys = []
            for key in unique:
                if key in self.results:
                    continue
                if key in self.queue or key in self.inflight:
                    TELEMETRY.count("service.dedup.inflight")
                    TELEMETRY.event("service.dedup",
                                    key=key, source="inflight",
                                    campaign=campaign.id)
                    continue
                new_keys.append(key)
            # May raise AdmissionError; the campaign is not yet
            # registered, so rejection leaves no trace to clean up.
            self.queue.admit(new_keys, workers=self.workers)

            self.campaigns[campaign.id] = campaign
            for key, shard in unique.items():
                if key in self.results:
                    TELEMETRY.count("service.dedup.cached")
                    campaign.resolve(key, DONE,
                                     result=self.results[key])
                    continue
                self.specs.setdefault(key, shard)
                self.waiters.setdefault(key, set()).add(campaign.id)
            self.journal.write_campaign(campaign)
            TELEMETRY.count("service.campaign.submitted")
            TELEMETRY.event("service.campaign.submitted",
                            campaign=campaign.id,
                            shards=len(unique),
                            enqueued=len(new_keys))
            return campaign.to_status_dict()

    # -- scheduling ----------------------------------------------------------

    def step(self):
        """One scheduling pass: deadlines, reap, spawn."""
        with self._lock:
            self._expire_deadlines()
            self._reap()
            self._spawn_ready()
            self._finalize()

    def _finalize(self):
        for campaign in self.campaigns.values():
            if campaign.finished \
                    and campaign.id not in self._finalized:
                self._finalized.add(campaign.id)
                TELEMETRY.count("service.campaign.%s"
                                % campaign.status)
                TELEMETRY.event("service.campaign.finished",
                                campaign=campaign.id,
                                status=campaign.status)

    def _breaker(self, group):
        breaker = self.breakers.get(group)
        if breaker is None:
            breaker = CircuitBreaker(
                group, threshold=self.breaker_threshold,
                cooldown=self.breaker_cooldown)
            self.breakers[group] = breaker
        return breaker

    def _drop_waiter(self, key, campaign_id):
        """Detach a campaign from a key; True if no waiters remain."""
        waiting = self.waiters.get(key)
        if waiting is not None:
            waiting.discard(campaign_id)
            if not waiting:
                del self.waiters[key]
                return True
        return False

    def _expire_campaign(self, campaign):
        campaign.expired = True
        cancelled = 0
        for shard in campaign.shards:
            cell = campaign.cells[(shard.row, shard.column)]
            if cell["status"] != "pending":
                continue
            key = shard.key
            orphaned = self._drop_waiter(key, campaign.id)
            if orphaned:
                self.queue.discard(key)
                worker = self.inflight.pop(key, None)
                if worker is not None:
                    worker.kill()
                    TELEMETRY.count("service.shard.killed")
                    TELEMETRY.event("service.shard.killed", key=key,
                                    reason="deadline-expired")
                self.specs.pop(key, None)
                self.attempts.pop(key, None)
            cancelled += campaign.resolve(
                shard.key, CANCELLED, reason="deadline-expired")
        if cancelled:
            TELEMETRY.count("service.deadline.cancelled", cancelled)
        TELEMETRY.count("service.campaign.expired")
        TELEMETRY.event("service.campaign.expired",
                        campaign=campaign.id, cancelled=cancelled)
        self.journal.write_campaign(campaign)

    def _expire_deadlines(self):
        now = time.time()
        for campaign in self.campaigns.values():
            if campaign.finished or campaign.expired:
                continue
            if campaign.past_deadline(now):
                self._expire_campaign(campaign)

    def _reap(self):
        for key in list(self.inflight):
            worker = self.inflight[key]
            if worker.timed_out:
                worker.kill()
                del self.inflight[key]
                self._fail(key, "timeout after %.1fs"
                           % self.shard_timeout)
                continue
            if worker.process.is_alive():
                continue
            del self.inflight[key]
            status, detail = worker.finish()
            if status == "ok":
                elapsed = time.monotonic() - worker.started
                self._complete(key, detail, worker.attempt, elapsed)
            else:
                self._fail(key, detail)

    def _complete(self, key, result, attempt, elapsed=None):
        """Fold one executed shard's result into every waiter.

        Journal-before-log: every waiter campaign's journal is
        persisted with the result *before* the execution is appended
        to the log (see :mod:`repro.service.journal`).
        """
        self.results[key] = result
        spec = self.specs.pop(key, None)
        self.attempts.pop(key, None)
        for campaign_id in sorted(self.waiters.pop(key, ())):
            campaign = self.campaigns[campaign_id]
            campaign.resolve(key, DONE, result=result)
            self.journal.write_campaign(campaign)
        self.journal.record_execution(key, self.instance_id, attempt)
        TELEMETRY.count("service.shard.executed")
        if elapsed is not None:
            TELEMETRY.record("service.shard.seconds", elapsed)
            self.queue.observe_latency(elapsed)
        if spec is not None:
            self._breaker(spec.breaker_group).record_success()

    def _fail(self, key, reason):
        attempt = self.attempts.get(key, 1)
        spec = self.specs.get(key)
        if spec is not None:
            tripped = self._breaker(spec.breaker_group).record_failure()
        else:
            tripped = False
        if attempt <= self.retries and not tripped:
            delay = _backoff_seconds(self.backoff, attempt, self._rng)
            self.queue.requeue(key, delay)
            TELEMETRY.count("service.shard.retried")
            TELEMETRY.event("service.shard.retry", key=key,
                            attempt=attempt, delay=round(delay, 3),
                            reason=reason)
            return
        self.specs.pop(key, None)
        self.attempts.pop(key, None)
        TELEMETRY.count("service.shard.failed")
        TELEMETRY.event("service.shard.failed", key=key,
                        attempts=attempt, reason=reason)
        for campaign_id in sorted(self.waiters.pop(key, ())):
            campaign = self.campaigns[campaign_id]
            campaign.resolve(key, FAILED, reason=reason)
            self.journal.write_campaign(campaign)

    def _shed(self, key, group):
        """Resolve a shard as shed (breaker open); degraded cells."""
        self.specs.pop(key, None)
        self.attempts.pop(key, None)
        TELEMETRY.count("service.breaker.shed")
        TELEMETRY.event("service.breaker.shed", key=key, group=group)
        for campaign_id in sorted(self.waiters.pop(key, ())):
            campaign = self.campaigns[campaign_id]
            campaign.resolve(key, SHED,
                             reason="breaker-open:%s" % group)
            self.journal.write_campaign(campaign)

    def _spawn_ready(self):
        while len(self.inflight) < self.workers:
            key = self.queue.pop_ready()
            if key is None:
                return
            if key in self.results:
                # Filled while queued (another instance's journal or
                # a cached resolution); serve without executing.
                self._resolve_from_cache(key)
                continue
            if key not in self.waiters:
                continue            # every waiter cancelled meanwhile
            spec = self.specs[key]
            breaker = self._breaker(spec.breaker_group)
            if not breaker.allow():
                self._shed(key, spec.breaker_group)
                continue
            attempt = self.attempts.get(key, 0) + 1
            self.attempts[key] = attempt
            if self.mode == "inline":
                self._run_inline(spec, key, attempt)
            else:
                if FAULTS.enabled:
                    FAULTS.to_env()
                self.inflight[key] = _ShardWorker(
                    self._context, spec, self.cache_dir, key, attempt,
                    self.shard_timeout)
                TELEMETRY.event("service.shard.spawn", key=key,
                                attempt=attempt)

    def _resolve_from_cache(self, key):
        result = self.results[key]
        self.specs.pop(key, None)
        for campaign_id in sorted(self.waiters.pop(key, ())):
            TELEMETRY.count("service.dedup.cached")
            campaign = self.campaigns[campaign_id]
            campaign.resolve(key, DONE, result=result)
            self.journal.write_campaign(campaign)

    def _run_inline(self, spec, key, attempt):
        FAULTS.on_shard_start(key, attempt)
        started = time.monotonic()
        try:
            result = execute_shard(spec, cache_dir=self.cache_dir)
        except Exception as error:
            self._fail(key, "%s: %s" % (type(error).__name__, error))
            return
        self._complete(key, result, attempt,
                       time.monotonic() - started)

    # -- queries -------------------------------------------------------------

    def _campaign(self, campaign_id):
        campaign = self.campaigns.get(campaign_id)
        if campaign is None:
            raise UnknownCampaign(campaign_id)
        return campaign

    def status(self, campaign_id):
        with self._lock:
            return self._campaign(campaign_id).to_status_dict()

    def events_since(self, campaign_id, since=0):
        """Completion events past cursor ``since`` (result streaming)."""
        with self._lock:
            campaign = self._campaign(campaign_id)
            return {
                "id": campaign.id,
                "status": campaign.status,
                "next": len(campaign.events),
                "events": campaign.events[since:],
            }

    def tables(self, campaign_id):
        with self._lock:
            return self._campaign(campaign_id).tables()

    def stats(self):
        with self._lock:
            by_status = {}
            for campaign in self.campaigns.values():
                by_status[campaign.status] = (
                    by_status.get(campaign.status, 0) + 1)
            return {
                "instance": self.instance_id,
                "queue": {"depth": self.queue.depth,
                          "capacity": self.queue.capacity,
                          "shard_seconds": round(
                              self.queue.shard_seconds, 4)},
                "inflight": len(self.inflight),
                "workers": self.workers,
                "mode": self.mode,
                "campaigns": by_status,
                "breakers": [breaker.to_dict() for breaker
                             in self.breakers.values()],
                "counters": TELEMETRY.snapshot().get("counters", {}),
            }

    # -- lifecycle -----------------------------------------------------------

    def start(self, interval=0.02):
        """Run the scheduling loop on a background thread."""
        if self._thread is not None:
            return self
        self._closing = False

        def _loop():
            while not self._closing:
                self.step()
                time.sleep(interval)

        self._thread = threading.Thread(target=_loop, daemon=True,
                                        name="campaign-dispatcher")
        self._thread.start()
        return self

    def stop(self):
        """Stop the loop; running shards are killed (the journal has
        everything needed to resume them on the next start)."""
        self._closing = True
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._lock:
            for key in list(self.inflight):
                self.inflight.pop(key).kill()
                TELEMETRY.count("service.shard.killed")

    def drain(self, timeout=60.0, interval=0.01):
        """Step until every campaign is terminal (tests); True if so."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            self.step()
            with self._lock:
                if all(campaign.finished
                       for campaign in self.campaigns.values()):
                    return True
            time.sleep(interval)
        return False

    def __repr__(self):
        return "CampaignService(%s, %d campaigns, queue %r)" % (
            self.mode, len(self.campaigns), self.queue)
