"""Thin stdlib client for the campaign service.

:class:`ServiceClient` speaks the HTTP/JSON protocol of
:mod:`repro.service.http` with nothing but ``urllib``.  It implements
the *well-behaved client* half of the backpressure contract: a 429
admission rejection is honoured by sleeping for the server's
``retry_after_s`` estimate (not a fixed constant, not a hot loop) and
retrying a bounded number of times.

It also adapts the service for the characterization harness:
:meth:`observer` returns a ``(trace, flush_interval) -> stats``
callable that ships each probe trace through the service as a
one-shard campaign — so ``characterize(observe=client.observer(...))``
black-box-probes a predictor it can only reach over the wire.
"""

import json
import time
import urllib.error
import urllib.request

from repro.service.errors import (
    AdmissionError,
    ServiceError,
    SpecError,
    UnknownCampaign,
)
from repro.service.shards import stats_from_dict, trace_to_payload


class CampaignFailed(ServiceError):
    """A campaign finished without the cell the client needed."""


class ServiceClient:
    """One service endpoint, e.g. ``ServiceClient("http://127.0.0.1:8731")``."""

    def __init__(self, base_url, timeout=30.0, admission_retries=5,
                 sleep=time.sleep):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.admission_retries = admission_retries
        self._sleep = sleep

    # -- transport -----------------------------------------------------------

    def _request(self, method, path, payload=None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as error:
            body = {}
            try:
                body = json.loads(error.read())
            except ValueError:
                pass
            self._raise_for(error.code, body)
            raise

    @staticmethod
    def _raise_for(code, body):
        message = body.get("error", "HTTP %d" % code)
        if code == 400:
            raise SpecError(message)
        if code == 404:
            raise UnknownCampaign(message)
        if code == 429:
            raise AdmissionError(
                0, 0, body.get("depth", 0), body.get("capacity", 0),
                float(body.get("retry_after_s", 1.0)))
        raise ServiceError("HTTP %d: %s" % (code, message))

    # -- API -----------------------------------------------------------------

    def healthz(self):
        return self._request("GET", "/healthz")

    def stats(self):
        return self._request("GET", "/stats")

    def submit(self, spec):
        """Submit a campaign, honouring backpressure.

        On a 429 the client sleeps for the server's ``retry_after_s``
        and retries, up to ``admission_retries`` times; the final
        rejection propagates as :class:`AdmissionError`.
        """
        for _attempt in range(self.admission_retries):
            try:
                return self._request("POST", "/campaigns", spec)
            except AdmissionError as error:
                self._sleep(error.retry_after_s)
        return self._request("POST", "/campaigns", spec)

    def status(self, campaign_id):
        return self._request("GET", "/campaigns/%s" % campaign_id)

    def results(self, campaign_id, since=0, wait=0.0):
        return self._request(
            "GET", "/campaigns/%s/results?since=%d&wait=%s"
            % (campaign_id, since, wait))

    def tables(self, campaign_id):
        return self._request("GET", "/campaigns/%s/tables"
                             % campaign_id)

    def wait(self, campaign_id, timeout=120.0):
        """Long-poll until the campaign is terminal; returns status.

        Raises ``TimeoutError`` if the campaign is still running when
        ``timeout`` expires — the campaign keeps running server-side.
        """
        deadline = time.monotonic() + timeout
        since = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    "campaign %s still running after %.1fs"
                    % (campaign_id, timeout))
            payload = self.results(campaign_id, since=since,
                                   wait=min(remaining, 10.0))
            since = payload["next"]
            if payload["status"] != "running":
                return payload["status"]

    # -- characterization adapter --------------------------------------------

    def probe_stats(self, config, trace, flush_interval=None,
                    timeout=60.0):
        """Run one probe trace against ``config`` through the service.

        Returns the shard's :class:`~repro.predictors.base.
        PredictionStats`; raises :class:`CampaignFailed` if the
        service degraded the cell instead of computing it.
        """
        probe = {"records": [list(record)
                             for record in trace.records()],
                 "total_instructions": trace.total_instructions}
        spec = {"kind": "probe", "probes": [probe],
                "schemes": [config]}
        if flush_interval is not None:
            spec["flush_interval"] = flush_interval
        status = self.submit(spec)
        campaign_id = status["id"]
        self.wait(campaign_id, timeout=timeout)
        payload = self.results(campaign_id)
        for event in payload["events"]:
            if event["status"] == "done":
                return stats_from_dict(event["result"]["stats"])
        reasons = ["%s/%s: %s" % (event["row"], event["column"],
                                  event.get("reason") or
                                  event["status"])
                   for event in payload["events"]]
        raise CampaignFailed(
            "probe campaign %s produced no result (%s)"
            % (campaign_id, "; ".join(reasons) or "no events"))

    def observer(self, config, timeout=60.0):
        """A ``(trace, flush_interval) -> stats`` callable for
        ``characterize(observe=...)`` — probes over the wire."""

        def _observe(trace, flush_interval=None):
            return self.probe_stats(config, trace,
                                    flush_interval=flush_interval,
                                    timeout=timeout)

        return _observe


__all__ = ["ServiceClient", "CampaignFailed", "trace_to_payload"]
