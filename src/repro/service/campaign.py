"""Campaign state: a grid of shards and the tables it degrades into.

A campaign is submitted as JSON, validated into a
:class:`CampaignSpec`, expanded into :class:`~repro.service.shards.
ShardSpec` cells, and then lives as a :class:`Campaign` whose cells
move through::

    pending -> done
            -> failed     (worker attempts exhausted)
            -> shed       (circuit breaker open for the group)
            -> cancelled  (deadline expired before dispatch)

**The degraded-table contract**: :meth:`Campaign.tables` always
renders the full row x column grid.  A cell that did not complete is
*marked* — ``None`` in the JSON payload, ``—`` in the text rendering —
and listed under ``missing`` with its reason.  A degraded table never
fabricates a value and never silently drops a row; partial results are
partial, visibly.
"""

import json
import time

from repro.service.errors import SpecError
from repro.service.shards import (
    ShardSpec,
    canonical_config,
    probe_label,
    scheme_label,
    validate_probe,
)

CAMPAIGN_KINDS = ("sweep", "probe")

#: Terminal cell states (everything except "pending").
DONE = "done"
FAILED = "failed"
SHED = "shed"
CANCELLED = "cancelled"

#: Marker rendered for a missing cell in the text tables.
MISSING_CELL = "—"


class CampaignSpec:
    """A validated, canonical campaign request."""

    __slots__ = ("kind", "benchmarks", "probes", "schemes", "scale",
                 "runs", "profile_source", "flush_interval", "engine",
                 "deadline_s")

    def __init__(self, kind, schemes, benchmarks=None, probes=None,
                 scale=1.0, runs=None, profile_source="measured",
                 flush_interval=None, engine="auto", deadline_s=None):
        self.kind = kind
        self.benchmarks = benchmarks
        self.probes = probes
        self.schemes = schemes
        self.scale = scale
        self.runs = runs
        self.profile_source = profile_source
        self.flush_interval = flush_interval
        self.engine = engine
        self.deadline_s = deadline_s

    @classmethod
    def from_payload(cls, payload):
        """Validate a JSON payload; raises :class:`SpecError`.

        Every rejection names the field and the accepted values — a
        client debugging a 400 should need nothing but the message.
        """
        if not isinstance(payload, dict):
            raise SpecError("campaign spec must be a JSON object")
        kind = payload.get("kind", "sweep")
        if kind not in CAMPAIGN_KINDS:
            raise SpecError("unknown campaign kind %r (expected one "
                            "of %s)" % (kind, ", ".join(CAMPAIGN_KINDS)))
        known = {"kind", "benchmarks", "probes", "schemes", "scale",
                 "runs", "profile_source", "flush_interval", "engine",
                 "deadline_s"}
        unknown = set(payload) - known
        if unknown:
            raise SpecError("unknown campaign field(s): %s"
                            % ", ".join(sorted(unknown)))

        schemes = payload.get("schemes")
        if not isinstance(schemes, list) or not schemes:
            raise SpecError("campaign needs a non-empty 'schemes' list")
        schemes = [canonical_config(config) for config in schemes]

        benchmarks = probes = None
        if kind == "sweep":
            from repro.benchmarksuite import get_benchmark

            benchmarks = payload.get("benchmarks")
            if not isinstance(benchmarks, list) or not benchmarks:
                raise SpecError("sweep campaign needs a non-empty "
                                "'benchmarks' list")
            for name in benchmarks:
                try:
                    get_benchmark(name)
                except KeyError as error:
                    raise SpecError(str(error.args[0])) from error
            if len(set(benchmarks)) != len(benchmarks):
                raise SpecError("duplicate benchmark in 'benchmarks'")
        else:
            probes = payload.get("probes")
            if not isinstance(probes, list) or not probes:
                raise SpecError("probe campaign needs a non-empty "
                                "'probes' list")
            probes = [validate_probe(probe) for probe in probes]

        scale = payload.get("scale", 1.0)
        if not isinstance(scale, (int, float)) or scale <= 0:
            raise SpecError("'scale' must be > 0 (got %r)" % (scale,))
        runs = payload.get("runs")
        if runs is not None and (not isinstance(runs, int) or runs < 1):
            raise SpecError("'runs' must be >= 1 (got %r)" % (runs,))
        profile_source = payload.get("profile_source", "measured")
        if profile_source not in ("measured", "static"):
            raise SpecError("'profile_source' must be 'measured' or "
                            "'static' (got %r)" % (profile_source,))
        flush_interval = payload.get("flush_interval")
        if flush_interval is not None and (
                not isinstance(flush_interval, int)
                or flush_interval < 1):
            raise SpecError("'flush_interval' must be >= 1 (got %r)"
                            % (flush_interval,))
        engine = payload.get("engine", "auto")
        if engine not in ("auto", "scalar", "vector", "chunked"):
            raise SpecError("'engine' must be auto, scalar, vector or "
                            "chunked (got %r)" % (engine,))
        deadline_s = payload.get("deadline_s")
        if deadline_s is not None and (
                not isinstance(deadline_s, (int, float))
                or deadline_s < 0):
            raise SpecError("'deadline_s' must be >= 0 (got %r)"
                            % (deadline_s,))
        return cls(kind, schemes, benchmarks=benchmarks, probes=probes,
                   scale=float(scale), runs=runs,
                   profile_source=profile_source,
                   flush_interval=flush_interval, engine=engine,
                   deadline_s=deadline_s)

    def to_payload(self):
        payload = {"kind": self.kind, "schemes": self.schemes,
                   "engine": self.engine}
        if self.kind == "sweep":
            payload.update(benchmarks=self.benchmarks,
                           scale=self.scale, runs=self.runs,
                           profile_source=self.profile_source)
        else:
            payload.update(probes=self.probes,
                           flush_interval=self.flush_interval)
        if self.deadline_s is not None:
            payload["deadline_s"] = self.deadline_s
        return payload

    @property
    def rows(self):
        if self.kind == "sweep":
            return list(self.benchmarks)
        return [probe_label(probe) for probe in self.probes]

    @property
    def columns(self):
        return [scheme_label(config) for config in self.schemes]

    def expand(self):
        """The campaign's shards, in row-major grid order."""
        shards = []
        if self.kind == "sweep":
            for benchmark in self.benchmarks:
                for config in self.schemes:
                    shards.append(ShardSpec(
                        "sweep", config, benchmark=benchmark,
                        scale=self.scale, runs=self.runs,
                        profile_source=self.profile_source,
                        engine=self.engine))
        else:
            for probe in self.probes:
                for config in self.schemes:
                    shards.append(ShardSpec(
                        "probe", config, probe=probe,
                        flush_interval=self.flush_interval,
                        engine=self.engine))
        return shards


class Campaign:
    """One submitted campaign's live state."""

    def __init__(self, campaign_id, spec, created=None):
        self.id = campaign_id
        self.spec = spec
        self.created = time.time() if created is None else created
        self.deadline_epoch = (
            None if spec.deadline_s is None
            else self.created + spec.deadline_s)
        self.expired = False
        self.shards = spec.expand()
        # (row, column) -> cell dict; row-major grid order.
        self.cells = {}
        for shard in self.shards:
            self.cells[(shard.row, shard.column)] = {
                "key": shard.key, "status": "pending",
                "result": None, "reason": None,
            }
        self.events = []        # completion-ordered cell resolutions

    # -- state ---------------------------------------------------------------

    @property
    def pending(self):
        return [cell for cell in self.cells.values()
                if cell["status"] == "pending"]

    @property
    def finished(self):
        return not self.pending

    @property
    def status(self):
        if not self.finished:
            return "expired" if self.expired else "running"
        if self.expired:
            return "expired"
        statuses = {cell["status"] for cell in self.cells.values()}
        return "done" if statuses == {DONE} else "degraded"

    def past_deadline(self, now=None):
        if self.deadline_epoch is None:
            return False
        return (time.time() if now is None else now) \
            >= self.deadline_epoch

    def cells_for_key(self, key):
        return [(coords, cell) for coords, cell in self.cells.items()
                if cell["key"] == key and cell["status"] == "pending"]

    def resolve(self, key, status, result=None, reason=None):
        """Mark every pending cell of ``key`` terminal; returns count."""
        resolved = 0
        for (row, column), cell in self.cells_for_key(key):
            cell["status"] = status
            cell["result"] = result
            cell["reason"] = reason
            self.events.append({
                "seq": len(self.events), "row": row, "column": column,
                "key": key, "status": status, "result": result,
                "reason": reason,
            })
            resolved += 1
        return resolved

    # -- presentation --------------------------------------------------------

    def to_status_dict(self):
        by_status = {}
        for cell in self.cells.values():
            by_status[cell["status"]] = (
                by_status.get(cell["status"], 0) + 1)
        return {
            "id": self.id,
            "kind": self.spec.kind,
            "status": self.status,
            "created": self.created,
            "deadline_epoch": self.deadline_epoch,
            "total": len(self.cells),
            "by_status": by_status,
            "events": len(self.events),
        }

    def tables(self):
        """The campaign's result tables under the degraded contract.

        Returns a dict with the full grid (``rows`` hold ``None`` for
        missing cells), a ``missing`` list naming each absent cell and
        why, a ``degraded`` flag, and a ``text`` rendering where
        missing cells show :data:`MISSING_CELL`.
        """
        from repro.experiments.report import TableData, render_table

        columns = self.spec.columns
        rows = []
        text_rows = []
        missing = []
        for row_name in self.spec.rows:
            row = [row_name]
            text_row = [row_name]
            for column in columns:
                cell = self.cells.get((row_name, column))
                if cell is not None and cell["status"] == DONE:
                    accuracy = round(cell["result"]["accuracy"], 4)
                    row.append(accuracy)
                    text_row.append(accuracy)
                else:
                    reason = "never-submitted"
                    if cell is not None:
                        reason = (cell["reason"] or cell["status"])
                    missing.append({"row": row_name, "column": column,
                                    "reason": reason})
                    row.append(None)
                    text_row.append(MISSING_CELL)
            rows.append(row)
            text_rows.append(text_row)

        title = "Campaign %s (%s): prediction accuracy" % (
            self.id, self.status)
        notes = []
        if missing:
            notes.append("%d missing cell%s (degraded, not fabricated):"
                         " %s" % (len(missing),
                                  "" if len(missing) == 1 else "s",
                                  "; ".join(
                                      "%s x %s [%s]"
                                      % (gap["row"], gap["column"],
                                         gap["reason"])
                                      for gap in missing)))
        header = ("Benchmark" if self.spec.kind == "sweep" else "Probe")
        table = TableData(title, [header] + columns, text_rows,
                          notes=notes)
        return {
            "id": self.id,
            "status": self.status,
            "degraded": bool(missing),
            "headers": [header] + columns,
            "rows": rows,
            "missing": missing,
            "text": render_table(table),
        }

    # -- persistence ---------------------------------------------------------

    JOURNAL_VERSION = 1

    def to_journal_dict(self):
        return {
            "journal_version": self.JOURNAL_VERSION,
            "id": self.id,
            "spec": self.spec.to_payload(),
            "created": self.created,
            "expired": self.expired,
            "status": self.status,
            "cells": [
                {"row": row, "column": column, **cell}
                for (row, column), cell in self.cells.items()
            ],
        }

    @classmethod
    def from_journal_dict(cls, data):
        """Rebuild a campaign from its journal record.

        Raises ``ValueError`` on a structurally wrong record (the
        journal quarantines it); completed cells are restored with
        their results, pending cells stay pending for re-dispatch.
        Completion *order* is not persisted — restored events replay
        in grid order, which only affects the stream cursor, never
        the results.
        """
        if data.get("journal_version") != cls.JOURNAL_VERSION:
            raise ValueError("journal version %r not understood"
                             % data.get("journal_version"))
        spec = CampaignSpec.from_payload(data["spec"])
        campaign = cls(data["id"], spec, created=data["created"])
        campaign.expired = bool(data.get("expired"))
        recorded = {(cell["row"], cell["column"]): cell
                    for cell in data.get("cells", [])}
        for coords, cell in campaign.cells.items():
            stored = recorded.get(coords)
            if stored is None:
                continue
            if stored.get("key") != cell["key"]:
                raise ValueError(
                    "journal cell %r/%r key mismatch" % coords)
            if stored.get("status", "pending") == "pending":
                continue
            campaign.resolve(cell["key"], stored["status"],
                             result=stored.get("result"),
                             reason=stored.get("reason"))
        return campaign

    def __repr__(self):
        return "Campaign(%s, %s, %d cells)" % (self.id, self.status,
                                               len(self.cells))


def campaign_fingerprint(spec):
    """A short digest of a campaign spec (journal file naming aid)."""
    import hashlib

    payload = json.dumps(spec.to_payload(), sort_keys=True)
    return hashlib.sha1(payload.encode()).hexdigest()[:10]
