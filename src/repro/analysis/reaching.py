"""Reaching definitions (forward, may, union join) and use-before-def.

Definition sites are instruction addresses that write a register,
plus one *synthetic* definition per argument register at each function
entry (the machine seeds a callee frame with ``r0..rK`` from the
staged ``ARG`` values; :func:`~repro.analysis.effects.function_argument_counts`
bounds K per function).  Values are integer bitmasks over definition
indices.

:func:`use_before_def` reports reads of registers with *no* reaching
definition at all — on every path from the function entry the
register is never written, so executing the read would fault in the
VM (a ``KeyError`` on the register file).  It is a may-analysis, so it
never flags a read that some path does define.
"""

from repro.analysis.dataflow import Analysis, FlowGraph, solve
from repro.analysis.effects import (
    function_argument_counts,
    register_written,
    registers_read,
)
from repro.cfg import ControlFlowGraph


class ReachingDefinitions:
    """Fixed-point reaching definitions of a program.

    Attributes:
        graph: the :class:`~repro.analysis.dataflow.FlowGraph` used.
        sites: list of (address, register) per definition index;
            synthetic argument definitions use address ``-1``.
        reach_in / reach_out: {leader: bitmask of definition indices}.
    """

    def __init__(self, graph, sites, reach_in, reach_out):
        self.graph = graph
        self.sites = sites
        self.reach_in = reach_in
        self.reach_out = reach_out

    def registers_defined_in(self, leader):
        """Mask of registers with at least one def reaching the block."""
        return self._registers_of(self.reach_in[leader])

    def _registers_of(self, mask):
        registers = 0
        index = 0
        while mask:
            if mask & 1:
                registers |= 1 << self.sites[index][1]
            mask >>= 1
            index += 1
        return registers


class _ReachingAnalysis(Analysis):
    direction = "forward"

    def __init__(self, graph):
        program = graph.cfg.program
        self.sites = []          # definition index -> (address, register)
        defs_of_register = {}    # register -> mask of its definition indices
        gen = []
        written_registers = []

        entry_args = function_argument_counts(program)
        self.entry_masks = {}    # block index -> synthetic-defs mask
        for entry, count in entry_args.items():
            mask = 0
            for register in range(count):
                index = len(self.sites)
                self.sites.append((-1, register))
                defs_of_register.setdefault(register, 0)
                defs_of_register[register] |= 1 << index
                mask |= 1 << index
            self.entry_masks[graph.index_of(entry)] = mask

        for block in graph.cfg.blocks:
            block_gen = 0
            block_written = 0
            for address in range(block.start, block.end):
                register = register_written(program.instructions[address])
                if register is None:
                    continue
                index = len(self.sites)
                self.sites.append((address, register))
                defs_of_register.setdefault(register, 0)
                defs_of_register[register] |= 1 << index
                # A later def of the same register in this block kills
                # this one; keep only the block's last def per register.
                block_gen &= ~defs_of_register[register]
                block_gen |= 1 << index
                block_written |= 1 << register
            gen.append(block_gen)
            written_registers.append(block_written)

        self.defs_of_register = defs_of_register
        self.gen = gen
        kill = []
        for index, written in enumerate(written_registers):
            mask = 0
            register = 0
            while written:
                if written & 1:
                    mask |= defs_of_register[register]
                written >>= 1
                register += 1
            kill.append(mask & ~gen[index])
        self.kill = kill

    def initial(self, graph, index):
        return 0

    def boundary(self, graph, index):
        return self.entry_masks.get(index)

    def join(self, left, right):
        return left | right

    def transfer(self, graph, index, reach_in):
        return self.gen[index] | (reach_in & ~self.kill[index])


def compute_reaching_definitions(program, cfg=None, graph=None):
    """Solve reaching definitions for a resolved program."""
    if graph is None:
        graph = FlowGraph(cfg or ControlFlowGraph.from_program(program))
    analysis = _ReachingAnalysis(graph)
    result = solve(graph, analysis)
    reach_in = {}
    reach_out = {}
    for index, block in enumerate(graph.cfg.blocks):
        reach_in[block.start] = result.inputs[index]
        reach_out[block.start] = result.outputs[index]
    return ReachingDefinitions(graph, analysis.sites, reach_in, reach_out)


def use_before_def(program, cfg=None, reaching=None, blocks=None):
    """Reads of registers with no reaching definition on any path.

    Args:
        program: resolved program.
        cfg: optional pre-built CFG.
        reaching: optional pre-computed :class:`ReachingDefinitions`.
        blocks: optional iterable of block leaders to restrict the
            scan to (typically the reachable blocks — unreachable code
            has no paths from any entry and would flag every read).

    Returns a list of (address, register) pairs in address order.
    """
    if reaching is None:
        if cfg is None:
            cfg = ControlFlowGraph.from_program(program)
        reaching = compute_reaching_definitions(program, cfg=cfg)
    graph = reaching.graph
    instructions = graph.cfg.program.instructions
    wanted = None if blocks is None else set(blocks)

    faults = []
    for block in graph.cfg.blocks:
        if wanted is not None and block.start not in wanted:
            continue
        defined = reaching.registers_defined_in(block.start)
        for address in range(block.start, block.end):
            instr = instructions[address]
            for register in registers_read(instr):
                if not defined >> register & 1:
                    faults.append((address, register))
            written = register_written(instr)
            if written is not None:
                defined |= 1 << written
    return faults
