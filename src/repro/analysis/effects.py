"""The register-effect model of the instruction set.

Every dataflow analysis needs to know, per instruction, which
registers are read and which register (at most one in this ISA) is
written.  The model is a *total* table: :data:`OPCODE_EFFECTS` has one
:class:`Effect` row per :class:`~repro.isa.opcodes.Opcode`, and the
accessors raise ``KeyError`` on an opcode missing from it rather than
silently defaulting — `tests/test_effects_coverage.py` asserts the
table covers the ISA exactly, so adding an opcode without classifying
it fails the build.

Register frames are *private per activation*: ``CALL`` gives the
callee a fresh frame seeded with the staged ``ARG`` values
(``r0..rK``), and ``RET`` restores the caller's frame untouched.  Two
consequences for analysis:

* a ``CALL`` neither reads nor writes any caller register — argument
  and result traffic is explicit (``ARG`` reads, ``RESULT`` writes);
* dataflow is naturally intraprocedural: no edge of the flow graph
  crosses a function boundary (see :mod:`repro.analysis.dataflow`).
"""

from typing import Dict, FrozenSet, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


class Effect:
    """Architectural effects of one opcode.

    Attributes:
        reads: operand fields the opcode reads registers from, in
            reporting order (a subset of ``("a", "b")``).
        writes_dest: True when the opcode writes the ``dest`` register.
        pure: True when writing ``dest`` is the *only* effect — no
            memory, I/O, control, or staging side effects and no
            possible runtime fault.  A pure write to a dead register
            may be deleted.
        faults: the opcode can raise a runtime fault (bad address,
            zero divisor, bad table index).
        io: the opcode consumes input or produces output.
        memory: the opcode writes data memory.
        control: the opcode can transfer control (branches and HALT).
        stages: the opcode stages call/return traffic (ARG, RETV).
    """

    __slots__ = ("reads", "writes_dest", "pure", "faults", "io",
                 "memory", "control", "stages")

    def __init__(self, reads: Tuple[str, ...] = (),
                 writes_dest: bool = False, pure: bool = False,
                 faults: bool = False, io: bool = False,
                 memory: bool = False, control: bool = False,
                 stages: bool = False) -> None:
        self.reads = reads
        self.writes_dest = writes_dest
        self.pure = pure
        self.faults = faults
        self.io = io
        self.memory = memory
        self.control = control
        self.stages = stages

    def __repr__(self) -> str:
        flags = [name for name in ("pure", "faults", "io", "memory",
                                   "control", "stages")
                 if getattr(self, name)]
        return "Effect(reads=%r, writes_dest=%r%s)" % (
            self.reads, self.writes_dest,
            (", " + ", ".join(flags)) if flags else "")


def _alu2(faults: bool = False) -> Effect:
    """A two-operand ALU effect (dest <- a OP b)."""
    return Effect(reads=("a", "b"), writes_dest=True, pure=not faults,
                  faults=faults)


def _branch2() -> Effect:
    """A conditional compare-and-branch effect."""
    return Effect(reads=("a", "b"), control=True)


#: The total opcode -> :class:`Effect` classification.  Every opcode of
#: the ISA appears exactly once; the accessors below index it without a
#: default, so an unclassified opcode raises instead of being treated
#: as effect-free.
OPCODE_EFFECTS: Dict[Opcode, Effect] = {
    # Data movement.
    Opcode.LI: Effect(writes_dest=True, pure=True),
    Opcode.MOV: Effect(reads=("a",), writes_dest=True, pure=True),
    Opcode.LOAD: Effect(reads=("a",), writes_dest=True, faults=True),
    Opcode.STORE: Effect(reads=("a", "b"), memory=True, faults=True),
    # Arithmetic / logic.
    Opcode.ADD: _alu2(),
    Opcode.SUB: _alu2(),
    Opcode.MUL: _alu2(),
    Opcode.DIV: _alu2(faults=True),
    Opcode.REM: _alu2(faults=True),
    Opcode.AND: _alu2(),
    Opcode.OR: _alu2(),
    Opcode.XOR: _alu2(),
    Opcode.SHL: _alu2(),
    Opcode.SHR: _alu2(),
    Opcode.NEG: Effect(reads=("a",), writes_dest=True, pure=True),
    Opcode.NOT: Effect(reads=("a",), writes_dest=True, pure=True),
    # Conditional compare-and-branch.
    Opcode.BEQ: _branch2(),
    Opcode.BNE: _branch2(),
    Opcode.BLT: _branch2(),
    Opcode.BLE: _branch2(),
    Opcode.BGT: _branch2(),
    Opcode.BGE: _branch2(),
    # Unconditional control transfer.  CALL/RET touch no caller
    # register (frames are private); JIND reads the jump register.
    Opcode.JUMP: Effect(control=True),
    Opcode.CALL: Effect(control=True),
    Opcode.RET: Effect(control=True),
    Opcode.JIND: Effect(reads=("a",), control=True),
    # Call/return data movement.
    Opcode.ARG: Effect(reads=("a",), stages=True),
    Opcode.RETV: Effect(reads=("a",), stages=True),
    Opcode.RESULT: Effect(writes_dest=True, pure=True),
    # Jump-table lookup (faults on a bad index).
    Opcode.TABLE: Effect(reads=("a",), writes_dest=True, faults=True),
    # I/O and termination.
    Opcode.GETC: Effect(writes_dest=True, io=True),
    Opcode.PUTC: Effect(reads=("a",), io=True),
    Opcode.PUTI: Effect(reads=("a",), io=True),
    Opcode.HALT: Effect(control=True),
    Opcode.NOP: Effect(),
}

# Opcodes whose only architectural effect is writing ``dest`` — no
# memory, I/O, or control side effects, and no possible runtime fault.
# A write by one of these whose destination is dead may be deleted.
# LOAD, DIV, REM, TABLE, and GETC are excluded: the first four can
# fault (bad address, zero divisor, bad table index) and GETC consumes
# an input byte.
PURE_WRITE_OPCODES: FrozenSet[Opcode] = frozenset(
    op for op, effect in OPCODE_EFFECTS.items() if effect.pure)


def registers_read(instr: Instruction) -> Tuple[int, ...]:
    """Registers the instruction reads, as a tuple (possibly empty).

    ``STORE`` reads both its value (``a``) and its base (``b``);
    everything else reads ``a`` and/or ``b`` per the opcode table.
    Raises ``KeyError`` for an opcode missing from the table.
    """
    effect = OPCODE_EFFECTS[instr.op]
    reads = tuple(getattr(instr, field) for field in effect.reads)
    # Malformed instructions may miss an operand; the verifier reports
    # those separately, the analyses just skip the hole.
    return tuple(register for register in reads if register is not None)


def register_written(instr: Instruction) -> Optional[int]:
    """The register the instruction writes, or None.

    Raises ``KeyError`` for an opcode missing from the table.
    """
    if OPCODE_EFFECTS[instr.op].writes_dest:
        return instr.dest
    return None


def is_pure_write(instr: Instruction) -> bool:
    """True when the instruction's only effect is writing ``dest``."""
    return OPCODE_EFFECTS[instr.op].pure


def is_squash_safe(instr: Instruction) -> bool:
    """True when squashing hardware can cancel the instruction cleanly.

    A forward-slot instruction is fetched down the predicted-taken
    path and must be *squashed* when the branch falls through.  Pure
    register writes squash for free (the rename/writeback stage simply
    drops them), control transfers squash by redirecting fetch, and a
    NOP has nothing to cancel.  Anything whose effect escapes the
    register file before commit — memory writes, I/O, argument/return
    staging, a possible runtime fault, or stopping the machine — needs
    squash support the paper's forward-slot hardware does not model,
    and is flagged by the ``squash-unsafe-slot`` diagnostics rule.
    """
    effect = OPCODE_EFFECTS[instr.op]
    if effect.pure or instr.op is Opcode.NOP:
        return True
    return instr.is_branch


def function_entry_addresses(program: Program) -> Dict[int, str]:
    """Map of function entry address -> function name.

    Requires a resolved program.
    """
    return {
        program.labels[label]: name
        for name, label in program.functions.items()
    }


def function_argument_counts(program: Program) -> Dict[int, int]:
    """Upper bound on the argument registers each function receives.

    The machine seeds a callee's frame with ``r0..rK`` where K is the
    highest ``ARG`` index staged before the ``CALL``.  This scans the
    text linearly, tracking staged indices since the previous ``CALL``
    (the code generator emits the ``ARG`` sequence immediately before
    its call), and records per function the *maximum* over its call
    sites — an over-approximation that never flags a legitimate
    parameter read as use-before-def.

    Returns {entry address: argument count}; functions without static
    call sites (the program entry) get 0.
    """
    entries = function_entry_addresses(program)
    counts = dict.fromkeys(entries, 0)
    staged_max = -1
    for instr in program.instructions:
        op = instr.op
        if op is Opcode.ARG:
            if instr.imm is not None and instr.imm > staged_max:
                staged_max = instr.imm
        elif op is Opcode.CALL:
            target = instr.target
            if target in counts:
                counts[target] = max(counts[target], staged_max + 1)
            staged_max = -1
    return counts
