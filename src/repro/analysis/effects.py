"""The register-effect model of the instruction set.

Every dataflow analysis needs to know, per instruction, which
registers are read and which register (at most one in this ISA) is
written.  The tables here mirror the interpreter loop in
:mod:`repro.vm.machine` exactly — `tests/test_dataflow.py` cross-checks
them against the opcode documentation.

Register frames are *private per activation*: ``CALL`` gives the
callee a fresh frame seeded with the staged ``ARG`` values
(``r0..rK``), and ``RET`` restores the caller's frame untouched.  Two
consequences for analysis:

* a ``CALL`` neither reads nor writes any caller register — argument
  and result traffic is explicit (``ARG`` reads, ``RESULT`` writes);
* dataflow is naturally intraprocedural: no edge of the flow graph
  crosses a function boundary (see :mod:`repro.analysis.dataflow`).
"""

from repro.isa.opcodes import (
    ALU_OPCODES,
    CONDITIONAL_BRANCHES,
    Opcode,
)

# Opcodes whose only architectural effect is writing ``dest`` — no
# memory, I/O, or control side effects, and no possible runtime fault.
# A write by one of these whose destination is dead may be deleted.
# LOAD, DIV, REM, TABLE, and GETC are excluded: the first four can
# fault (bad address, zero divisor, bad table index) and GETC consumes
# an input byte.
PURE_WRITE_OPCODES = frozenset({
    Opcode.LI, Opcode.MOV,
    Opcode.ADD, Opcode.SUB, Opcode.MUL,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
    Opcode.NEG, Opcode.NOT,
    Opcode.RESULT,
})

_READS_A = frozenset(
    {Opcode.MOV, Opcode.LOAD, Opcode.NEG, Opcode.NOT, Opcode.JIND,
     Opcode.ARG, Opcode.RETV, Opcode.TABLE, Opcode.PUTC, Opcode.PUTI}
    | (ALU_OPCODES - {Opcode.NEG, Opcode.NOT})
    | CONDITIONAL_BRANCHES
)

_READS_B = frozenset(
    (ALU_OPCODES - {Opcode.NEG, Opcode.NOT}) | CONDITIONAL_BRANCHES
)

_WRITES_DEST = frozenset({
    Opcode.LI, Opcode.MOV, Opcode.LOAD,
    Opcode.RESULT, Opcode.TABLE, Opcode.GETC,
} | ALU_OPCODES)


def registers_read(instr):
    """Registers the instruction reads, as a tuple (possibly empty).

    ``STORE`` reads both its value (``a``) and its base (``b``);
    everything else reads ``a`` and/or ``b`` per the opcode tables.
    """
    op = instr.op
    if op is Opcode.STORE:
        reads = (instr.a, instr.b)
    else:
        reads = ()
        if op in _READS_A:
            reads = (instr.a,)
        if op in _READS_B:
            reads = reads + (instr.b,)
    # Malformed instructions may miss an operand; the verifier reports
    # those separately, the analyses just skip the hole.
    return tuple(register for register in reads if register is not None)


def register_written(instr):
    """The register the instruction writes, or None."""
    if instr.op in _WRITES_DEST:
        return instr.dest
    return None


def is_pure_write(instr):
    """True when the instruction's only effect is writing ``dest``."""
    return instr.op in PURE_WRITE_OPCODES


def function_entry_addresses(program):
    """Map of function entry address -> function name.

    Requires a resolved program.
    """
    return {
        program.labels[label]: name
        for name, label in program.functions.items()
    }


def function_argument_counts(program):
    """Upper bound on the argument registers each function receives.

    The machine seeds a callee's frame with ``r0..rK`` where K is the
    highest ``ARG`` index staged before the ``CALL``.  This scans the
    text linearly, tracking staged indices since the previous ``CALL``
    (the code generator emits the ``ARG`` sequence immediately before
    its call), and records per function the *maximum* over its call
    sites — an over-approximation that never flags a legitimate
    parameter read as use-before-def.

    Returns {entry address: argument count}; functions without static
    call sites (the program entry) get 0.
    """
    entries = function_entry_addresses(program)
    counts = dict.fromkeys(entries, 0)
    staged_max = -1
    for instr in program.instructions:
        op = instr.op
        if op is Opcode.ARG:
            if instr.imm is not None and instr.imm > staged_max:
                staged_max = instr.imm
        elif op is Opcode.CALL:
            target = instr.target
            if target in counts:
                counts[target] = max(counts[target], staged_max + 1)
            staged_max = -1
    return counts
