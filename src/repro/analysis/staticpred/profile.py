"""StaticProfile — estimated profiles, drop-in for measured ones.

:func:`estimate_profile` runs the heuristic branch predictor and the
frequency propagation, then quantises the resulting expected
frequencies into the integer-count shape of
:class:`repro.profiling.profiler.Profile`.  Everything downstream of
profiling — trace selection, layout, likely bits, forward slots, the
FS cost model — consumes Profile's count dictionaries and ratios, so a
StaticProfile flows through the whole `traceopt` pipeline unmodified
and no profiling run is ever needed.

Quantisation invariants the optimiser relies on:

* every count is a non-negative ``int``;
* ``branch_execs[site]`` equals the branch block's ``block_counts``
  entry, and ``0 <= branch_taken[site] <= branch_execs[site]`` — so
  trace selection's fall-through weight ``execs - taken`` is never
  negative and ``taken_fraction`` reproduces the estimated
  probability to quantisation accuracy;
* a reachable block never quantises to zero (its count is floored at
  1) so layout keeps it placeable.
"""

from typing import Dict, Optional

from repro.analysis.dataflow import FlowGraph
from repro.analysis.staticpred.frequency import (
    StaticFrequencies,
    program_frequencies,
)
from repro.analysis.staticpred.heuristics import (
    BranchEstimate,
    predict_branches,
)
from repro.cfg import ControlFlowGraph
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.profiling.profiler import Profile

#: Integer counts per unit of estimated frequency.  One "run" of the
#: entry function becomes 10 000 counts, so probabilities survive
#: quantisation to 4 decimal places.
DEFAULT_SCALE = 10_000


class StaticProfile(Profile):
    """A :class:`Profile` synthesised from static analysis.

    Behaves exactly like a measured profile (same count dictionaries,
    same query methods); additionally carries the per-branch
    :class:`BranchEstimate` map and the propagated
    :class:`StaticFrequencies` for reporting, plus ``source =
    "static"`` so manifests and cache entries can record provenance.
    """

    source = "static"

    def __init__(self) -> None:
        super().__init__()
        self.estimates: Dict[int, BranchEstimate] = {}
        self.frequencies: Optional[StaticFrequencies] = None
        self.scale: int = DEFAULT_SCALE

    def __repr__(self) -> str:
        return ("StaticProfile(%d blocks, %d cond sites, scale=%d)"
                % (len(self.block_counts), len(self.branch_execs),
                   self.scale))


def estimate_profile(program: Program,
                     cfg: Optional[ControlFlowGraph] = None,
                     scale: int = DEFAULT_SCALE) -> StaticProfile:
    """Estimate an execution profile from the IR alone.

    The returned :class:`StaticProfile` is drop-in compatible with
    :func:`repro.profiling.profiler.profile_program` output — pass it
    to ``build_fs_program`` / ``lay_out_traces`` unchanged.
    """
    if scale < 1:
        raise ValueError("scale must be a positive integer")
    if cfg is None:
        cfg = ControlFlowGraph.from_program(program)
    graph = FlowGraph(cfg)
    estimates = predict_branches(program, cfg=cfg, graph=graph)
    frequencies = program_frequencies(program, estimates, cfg=cfg,
                                      graph=graph)

    profile = StaticProfile()
    profile.estimates = estimates
    profile.frequencies = frequencies
    profile.scale = scale
    profile.runs = 1

    counts: Dict[int, int] = {}
    for leader, frequency in frequencies.block_freq.items():
        count = int(round(frequency * scale))
        # Reachable blocks stay visible to layout even when the
        # estimate rounds to nothing.
        counts[leader] = max(count, 1)
    profile.block_counts = counts

    for block in cfg.blocks:
        site = block.end - 1
        terminator = program.instructions[site]
        block_count = counts.get(block.start, 0)
        if terminator.is_conditional:
            estimate = estimates.get(site)
            probability = (estimate.taken_probability
                           if estimate is not None else 0.5)
            execs = block_count
            taken = min(execs, max(0, int(round(execs * probability))))
            profile.branch_execs[site] = execs
            profile.branch_taken[site] = taken
            if block.taken_target is not None and taken > 0:
                profile.edge_counts[(site, block.taken_target)] = taken
        elif terminator.op in (Opcode.JUMP, Opcode.CALL) \
                and block_count > 0:
            target = terminator.target
            if isinstance(target, int):
                profile.edge_counts[(site, target)] = block_count

    profile.total_instructions = sum(
        counts.get(block.start, 0) * (block.end - block.start)
        for block in cfg.blocks)
    return profile
