"""Profile-free branch prediction: Ball-Larus heuristics over the IR.

Each conditional branch gets an estimated probability of being taken,
derived purely from program structure — no profiling run.  The
heuristics are the classic Ball-Larus set adapted to this ISA, with
the Wu-Larus refinement that each heuristic carries a *confidence*
(its published dynamic hit rate) and multiple applicable heuristics
are combined by Dempster-Shafer evidence combination instead of
first-match.

Heuristics (name — vote — confidence):

``loop``         the taken (resp. fall-through) edge is a loop back
                 edge: vote taken (resp. not-taken).  0.88
``loop-exit``    the branch is inside a loop and exactly one successor
                 leaves it: vote for the side that stays.  0.80
``loop-header``  exactly one successor is the header of a loop not
                 containing the branch (i.e. it enters a loop): vote
                 for it.  0.75
``opcode``       equality rarely holds (BEQ not-taken, BNE taken);
                 comparisons against a block-local constant zero are
                 rarely negative (BLT/BLE vs 0 not-taken, BGT/BGE vs 0
                 taken).  0.84
``call``         exactly one successor block contains a CALL: vote the
                 other side.  0.78
``return``       exactly one successor block ends the function (RET):
                 vote the other side.  0.72
``store``        exactly one successor block contains a STORE: vote
                 the other side (weak evidence).  0.55
``degenerate``   both operands are the same register or block-local
                 constants, so the outcome is a compile-time constant:
                 certainty 1.0 (also surfaced by the
                 ``degenerate-branch`` diagnostics rule).

A branch no heuristic fires on keeps probability 0.5 — downstream
consumers treat that as "predict not-taken", matching the layout
pass's behaviour for never-profiled branches.
"""

from typing import Dict, List, Optional, Tuple

from repro.analysis.dataflow import FlowGraph
from repro.analysis.effects import function_entry_addresses
from repro.analysis.staticpred.loops import LoopNest, find_loops
from repro.cfg import BasicBlock, ControlFlowGraph
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

#: Confidence (probability the vote direction is correct) per
#: heuristic, from Wu & Larus's measured hit rates.
HEURISTIC_CONFIDENCE: Dict[str, float] = {
    "loop": 0.88,
    "loop-exit": 0.80,
    "loop-header": 0.75,
    "opcode": 0.84,
    "call": 0.78,
    "return": 0.72,
    "store": 0.55,
    "degenerate": 1.0,
}

#: Deterministic evaluation/report order of the heuristics.
HEURISTIC_ORDER: Tuple[str, ...] = (
    "degenerate", "loop", "loop-exit", "loop-header", "opcode",
    "call", "return", "store",
)


class BranchEstimate:
    """The static prediction for one conditional branch site.

    Attributes:
        site: instruction address of the branch.
        block: leader address of the branch's basic block.
        taken_probability: estimated probability the branch is taken.
        votes: ``(heuristic name, predicts-taken)`` pairs that fired.
    """

    __slots__ = ("site", "block", "taken_probability", "votes")

    def __init__(self, site: int, block: int, taken_probability: float,
                 votes: Tuple[Tuple[str, bool], ...]) -> None:
        self.site = site
        self.block = block
        self.taken_probability = taken_probability
        self.votes = votes

    @property
    def predicts_taken(self) -> bool:
        """The predicted direction (ties break to not-taken)."""
        return self.taken_probability > 0.5

    def __repr__(self) -> str:
        return "BranchEstimate(site=%d, p_taken=%.3f, votes=%r)" % (
            self.site, self.taken_probability, self.votes)


def combine_votes(votes: List[Tuple[str, bool]]) -> float:
    """Dempster-Shafer combination of heuristic votes into P(taken)."""
    probability = 0.5
    for name, taken in votes:
        confidence = HEURISTIC_CONFIDENCE[name]
        vote = confidence if taken else 1.0 - confidence
        denominator = (probability * vote
                       + (1.0 - probability) * (1.0 - vote))
        if denominator <= 0.0:
            # Two contradicting certainties; keep the running value.
            continue
        probability = probability * vote / denominator
    return probability


def predict_branches(program: Program,
                     cfg: Optional[ControlFlowGraph] = None,
                     graph: Optional[FlowGraph] = None
                     ) -> Dict[int, BranchEstimate]:
    """Estimate P(taken) for every conditional branch site.

    Returns {branch address: :class:`BranchEstimate`} covering every
    conditional branch of the program, including branches unreachable
    from any function entry (those get the no-evidence 0.5).
    """
    if cfg is None:
        cfg = ControlFlowGraph.from_program(program)
    if graph is None:
        graph = FlowGraph(cfg)

    roots = dict(function_entry_addresses(program))
    entry_leader = cfg.block_of(program.entry).start
    roots.setdefault(entry_leader, "<entry>")

    estimates: Dict[int, BranchEstimate] = {}
    claimed: set = set()
    for root in sorted(roots):
        root_index = graph.index_of(cfg.block_of(root).start)
        nest = find_loops(graph, root_index)
        for index in sorted(nest.reachable):
            if index in claimed:
                continue
            claimed.add(index)
            block = cfg.blocks[index]
            estimate = _estimate_block(program, cfg, graph, nest, block)
            if estimate is not None:
                estimates[estimate.site] = estimate

    # Conditional branches in unreachable code still get an estimate so
    # StaticProfile stays total over the text.
    for address, instr in enumerate(program.instructions):
        if instr.is_conditional and address not in estimates:
            leader = cfg.block_of(address).start
            estimates[address] = BranchEstimate(address, leader, 0.5, ())
    return estimates


def _estimate_block(program: Program, cfg: ControlFlowGraph,
                    graph: FlowGraph, nest: LoopNest,
                    block: BasicBlock) -> Optional[BranchEstimate]:
    site = block.end - 1
    terminator = program.instructions[site]
    if not terminator.is_conditional:
        return None
    taken = block.taken_target
    fall = block.fall_through
    if taken is None or fall is None or taken == fall:
        # Degenerate flow (branch to the next instruction): direction
        # does not matter, keep the no-evidence estimate.
        return BranchEstimate(site, block.start, 0.5, ())

    constant = _constant_outcome(program, cfg, block, terminator)
    if constant is not None:
        return BranchEstimate(site, block.start,
                              1.0 if constant else 0.0,
                              (("degenerate", constant),))

    index = graph.index_of(block.start)
    taken_index = graph.index_of(taken)
    fall_index = graph.index_of(fall)
    votes: List[Tuple[str, bool]] = []

    # loop: a back edge is virtually always followed.
    taken_back = (index, taken_index) in nest.back_edges
    fall_back = (index, fall_index) in nest.back_edges
    if taken_back != fall_back:
        votes.append(("loop", taken_back))

    # loop-exit: stay in the loop.
    loop = nest.innermost(index)
    if loop is not None and not (taken_back or fall_back):
        taken_exits = taken_index not in loop
        fall_exits = fall_index not in loop
        if taken_exits != fall_exits:
            votes.append(("loop-exit", fall_exits))

    # loop-header: branches entering a loop are usually followed.
    taken_enters = _enters_loop(nest, index, taken_index)
    fall_enters = _enters_loop(nest, index, fall_index)
    if taken_enters != fall_enters:
        votes.append(("loop-header", taken_enters))

    opcode_vote = _opcode_vote(program, cfg, block, terminator)
    if opcode_vote is not None:
        votes.append(("opcode", opcode_vote))

    for name, predicate in (("call", _contains_call),
                            ("return", _ends_in_return),
                            ("store", _contains_store)):
        on_taken = predicate(program, cfg.block_at(taken))
        on_fall = predicate(program, cfg.block_at(fall))
        if on_taken != on_fall:
            votes.append((name, on_fall))

    votes.sort(key=lambda vote: HEURISTIC_ORDER.index(vote[0]))
    return BranchEstimate(site, block.start, combine_votes(votes),
                          tuple(votes))


def _enters_loop(nest: LoopNest, source: int, target: int) -> bool:
    """True when the edge enters a loop the source is not part of."""
    for loop in nest.loops:
        if loop.header == target and source not in loop:
            return True
    return False


def _contains_call(program: Program, block: BasicBlock) -> bool:
    return any(instr.op is Opcode.CALL
               for instr in program.instructions[block.start:block.end])


def _contains_store(program: Program, block: BasicBlock) -> bool:
    return any(instr.op is Opcode.STORE
               for instr in program.instructions[block.start:block.end])


def _ends_in_return(program: Program, block: BasicBlock) -> bool:
    return program.instructions[block.end - 1].op is Opcode.RET


def _local_constant(program: Program, block: BasicBlock, site: int,
                    register: Optional[int]) -> Optional[int]:
    """The constant value of ``register`` at ``site``, if the last
    definition inside the block is an ``LI``; None otherwise."""
    if register is None:
        return None
    for address in range(site - 1, block.start - 1, -1):
        instr = program.instructions[address]
        if instr.dest != register:
            continue
        if instr.op is Opcode.LI and isinstance(instr.imm, int):
            return instr.imm
        return None  # redefined by something non-constant
    return None


_NEGATED = {Opcode.BEQ: False, Opcode.BNE: True}

#: taken-vote for ``a OP 0`` comparisons: counts and sizes are rarely
#: negative, so < 0 / <= 0 fail and >= 0 / > 0 hold.
_ZERO_COMPARE_VOTE = {
    Opcode.BLT: False,
    Opcode.BLE: False,
    Opcode.BGT: True,
    Opcode.BGE: True,
}

_MIRRORED = {
    Opcode.BLT: Opcode.BGT, Opcode.BGT: Opcode.BLT,
    Opcode.BLE: Opcode.BGE, Opcode.BGE: Opcode.BLE,
    Opcode.BEQ: Opcode.BEQ, Opcode.BNE: Opcode.BNE,
}


def _opcode_vote(program: Program, cfg: ControlFlowGraph,
                 block: BasicBlock,
                 terminator: Instruction) -> Optional[bool]:
    """The Ball-Larus opcode heuristic vote, or None."""
    op = terminator.op
    if op in _NEGATED:
        return _NEGATED[op]
    site = block.end - 1
    right = _local_constant(program, block, site, terminator.b)
    if right == 0:
        return _ZERO_COMPARE_VOTE.get(op)
    left = _local_constant(program, block, site, terminator.a)
    if left == 0:
        # 0 OP b  ==  b OP' 0 with the comparison mirrored.
        return _ZERO_COMPARE_VOTE.get(_MIRRORED[op])
    return None


_COMPARATORS = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: a < b,
    Opcode.BLE: lambda a, b: a <= b,
    Opcode.BGT: lambda a, b: a > b,
    Opcode.BGE: lambda a, b: a >= b,
}


def _constant_outcome(program: Program, cfg: ControlFlowGraph,
                      block: BasicBlock,
                      terminator: Instruction) -> Optional[bool]:
    """The branch outcome when it is statically determined.

    Covers the same-register compare (``beq r1, r1``) and both
    operands being block-local ``LI`` constants.  Returns None when
    the outcome depends on runtime values.
    """
    compare = _COMPARATORS[terminator.op]
    if terminator.a is not None and terminator.a == terminator.b:
        return bool(compare(0, 0))
    site = block.end - 1
    left = _local_constant(program, block, site, terminator.a)
    right = _local_constant(program, block, site, terminator.b)
    if left is None or right is None:
        return None
    return bool(compare(left, right))
