"""Heuristic-vs-measured agreement evaluation.

Quantifies how much of a measured profile the static predictor
recovers: each benchmark is profiled normally, the same program is
predicted statically, and the two are compared per conditional branch
site.  Two headline metrics, both weighted by measured executions so
hot branches dominate (a branch that never executed is unmeasurable
and is excluded):

``direction agreement``
    fraction of dynamic branch executions whose site's predicted
    direction (taken vs not) matches the measured majority direction.

``taken-rate agreement``
    ``1 - |p_static - p_measured|`` averaged over executions — a
    stricter, magnitude-sensitive score.  The acceptance gate for the
    profile-free pipeline is >= 0.70 suite-wide.

Per-heuristic hit rates report, for every site a heuristic voted on,
how often its vote matched the measured majority — the same
accounting Ball-Larus use for their published hit rates.
"""

from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.staticpred.heuristics import (
    HEURISTIC_ORDER,
    BranchEstimate,
    predict_branches,
)
from repro.benchmarksuite.suite import BENCHMARK_NAMES, compile_benchmark, \
    get_benchmark
from repro.cfg import ControlFlowGraph
from repro.isa.program import Program
from repro.profiling.profiler import Profile, profile_program


class SiteComparison:
    """Static vs measured prediction for one conditional branch site."""

    __slots__ = ("site", "execs", "measured_fraction",
                 "estimated_probability", "votes")

    def __init__(self, site: int, execs: int, measured_fraction: float,
                 estimated_probability: float,
                 votes: Tuple[Tuple[str, bool], ...]) -> None:
        self.site = site
        self.execs = execs
        self.measured_fraction = measured_fraction
        self.estimated_probability = estimated_probability
        self.votes = votes

    @property
    def measured_taken(self) -> bool:
        return self.measured_fraction > 0.5

    @property
    def predicted_taken(self) -> bool:
        return self.estimated_probability > 0.5

    @property
    def direction_match(self) -> bool:
        return self.measured_taken == self.predicted_taken

    @property
    def rate_agreement(self) -> float:
        return 1.0 - abs(self.estimated_probability
                         - self.measured_fraction)


class AgreementReport:
    """Aggregated agreement over one benchmark (or a whole suite).

    Attributes:
        name: benchmark name, or ``"overall"`` for an aggregate.
        sites: the per-site comparisons (executed sites only).
    """

    __slots__ = ("name", "sites")

    def __init__(self, name: str, sites: List[SiteComparison]) -> None:
        self.name = name
        self.sites = sites

    @property
    def total_execs(self) -> int:
        return sum(site.execs for site in self.sites)

    @property
    def direction_agreement(self) -> float:
        """Execution-weighted direction hit rate (1.0 when no sites)."""
        total = self.total_execs
        if total == 0:
            return 1.0
        hits = sum(site.execs for site in self.sites
                   if site.direction_match)
        return hits / total

    @property
    def taken_rate_agreement(self) -> float:
        """Execution-weighted ``1 - |p_static - p_measured|``."""
        total = self.total_execs
        if total == 0:
            return 1.0
        weighted = sum(site.execs * site.rate_agreement
                       for site in self.sites)
        return weighted / total

    def heuristic_hit_rates(self) -> Dict[str, Tuple[int, float]]:
        """Per-heuristic ``(sites voted, execution-weighted hit rate)``.

        Only heuristics that voted at least once appear.
        """
        rates: Dict[str, Tuple[int, float]] = {}
        for name in HEURISTIC_ORDER:
            voted = [(site, vote_taken)
                     for site in self.sites
                     for vote_name, vote_taken in site.votes
                     if vote_name == name]
            total = sum(site.execs for site, _ in voted)
            if total == 0:
                continue
            hits = sum(site.execs for site, vote_taken in voted
                       if vote_taken == site.measured_taken)
            rates[name] = (len(voted), hits / total)
        return rates

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "sites": len(self.sites),
            "executions": self.total_execs,
            "direction_agreement": round(self.direction_agreement, 4),
            "taken_rate_agreement": round(self.taken_rate_agreement, 4),
            "heuristics": {
                name: {"sites": sites, "hit_rate": round(rate, 4)}
                for name, (sites, rate) in
                self.heuristic_hit_rates().items()
            },
        }

    def __repr__(self) -> str:
        return "AgreementReport(%r, %d sites, dir=%.3f, rate=%.3f)" % (
            self.name, len(self.sites), self.direction_agreement,
            self.taken_rate_agreement)


def compare_to_profile(program: Program, profile: Profile, name: str,
                       estimates: Optional[Dict[int, BranchEstimate]]
                       = None) -> AgreementReport:
    """Compare static estimates against an existing measured profile."""
    if estimates is None:
        estimates = predict_branches(program)
    sites: List[SiteComparison] = []
    for site, execs in sorted(profile.branch_execs.items()):
        if execs == 0:
            continue
        fraction = profile.taken_fraction(site)
        if fraction is None:
            continue
        estimate = estimates.get(site)
        probability = (estimate.taken_probability
                       if estimate is not None else 0.5)
        votes = estimate.votes if estimate is not None else ()
        sites.append(SiteComparison(site, execs, fraction, probability,
                                    votes))
    return AgreementReport(name, sites)


def evaluate_benchmark(name: str, scale: float = 1.0,
                       runs: Optional[int] = None,
                       max_instructions: int = 200_000_000
                       ) -> AgreementReport:
    """Profile one benchmark and score the static predictor against it."""
    spec = get_benchmark(name)
    program = compile_benchmark(name)
    cfg = ControlFlowGraph.from_program(program)
    profile, _ = profile_program(program, spec.input_suite(scale, runs),
                                 cfg=cfg,
                                 max_instructions=max_instructions)
    estimates = predict_branches(program, cfg=cfg)
    return compare_to_profile(program, profile, name, estimates)


def evaluate_suite(names: Iterable[str] = BENCHMARK_NAMES,
                   scale: float = 1.0, runs: Optional[int] = None,
                   max_instructions: int = 200_000_000
                   ) -> Tuple[List[AgreementReport], AgreementReport]:
    """Evaluate several benchmarks; returns (per-benchmark, overall).

    The overall report pools every site comparison, so its weighted
    metrics are the suite-wide numbers the acceptance gate checks.
    """
    reports = [evaluate_benchmark(name, scale=scale, runs=runs,
                                  max_instructions=max_instructions)
               for name in names]
    pooled = [site for report in reports for site in report.sites]
    return reports, AgreementReport("overall", pooled)
