"""Profile-free static branch prediction.

Ball-Larus branch heuristics (:mod:`.heuristics`) over natural loops
(:mod:`.loops`), Wu-Larus frequency propagation (:mod:`.frequency`),
and a :class:`StaticProfile` (:mod:`.profile`) that drops into every
consumer of measured profiles.  :mod:`.evaluate` scores the predictor
against measured profiles benchmark by benchmark.
"""

from repro.analysis.staticpred.evaluate import (
    AgreementReport,
    SiteComparison,
    compare_to_profile,
    evaluate_benchmark,
    evaluate_suite,
)
from repro.analysis.staticpred.frequency import (
    FREQUENCY_CLAMP,
    MAX_CYCLIC_PROBABILITY,
    StaticFrequencies,
    edge_probabilities,
    local_frequencies,
    program_frequencies,
)
from repro.analysis.staticpred.heuristics import (
    HEURISTIC_CONFIDENCE,
    HEURISTIC_ORDER,
    BranchEstimate,
    combine_votes,
    predict_branches,
)
from repro.analysis.staticpred.loops import Loop, LoopNest, find_loops
from repro.analysis.staticpred.profile import (
    DEFAULT_SCALE,
    StaticProfile,
    estimate_profile,
)

__all__ = [
    "AgreementReport",
    "BranchEstimate",
    "DEFAULT_SCALE",
    "FREQUENCY_CLAMP",
    "HEURISTIC_CONFIDENCE",
    "HEURISTIC_ORDER",
    "Loop",
    "LoopNest",
    "MAX_CYCLIC_PROBABILITY",
    "SiteComparison",
    "StaticFrequencies",
    "StaticProfile",
    "combine_votes",
    "compare_to_profile",
    "edge_probabilities",
    "estimate_profile",
    "evaluate_benchmark",
    "evaluate_suite",
    "find_loops",
    "local_frequencies",
    "predict_branches",
    "program_frequencies",
]
