"""Wu-Larus static frequency propagation.

Turns per-branch taken probabilities into expected block and edge
execution frequencies, with loops handled in closed form: each loop's
*cyclic probability* (the chance an iteration feeds back into the
header) is computed innermost-first, and the header frequency is the
incoming frequency times ``1 / (1 - cyclic probability)`` — the
geometric-series sum, capped at 0.99 cyclic probability so the
multiplier never exceeds 100 even for heuristically "infinite" loops.

Propagation is intraprocedural (one pass per function region, exactly
like the dataflow analyses), followed by a call-graph pass that scales
each function's local frequencies by the expected number of calls it
receives; recursion is resolved by bounded fixpoint iteration with a
clamp, so the result is total on any input.

Irreducible regions have no recognised back edge; their retreating
edges are treated as forward edges, which can leave blocks whose
frequency could not be computed in dependency order.  A cleanup pass
in reverse post-order then computes them from whatever predecessors
are known — an approximation, but a total and terminating one (the
property tests drive irreducible and self-loop graphs through this).
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dataflow import FlowGraph, postorder
from repro.analysis.effects import function_entry_addresses
from repro.analysis.staticpred.heuristics import (
    BranchEstimate,
    predict_branches,
)
from repro.analysis.staticpred.loops import find_loops
from repro.cfg import ControlFlowGraph
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

#: Cap on a single loop's cyclic probability (Wu-Larus use the same
#: constant): a heuristically never-exiting loop still terminates with
#: multiplier 1 / (1 - 0.99) = 100.
MAX_CYCLIC_PROBABILITY = 0.99

#: Clamp on any frequency value, so unbounded recursion (a cycle of
#: calls with expected fan-out >= 1) cannot diverge.
FREQUENCY_CLAMP = 1e12

_Edge = Tuple[int, int]


class StaticFrequencies:
    """Estimated execution frequencies, entry function = one run.

    Attributes:
        block_freq: leader address -> expected executions per run.
        edge_freq: (source leader, target leader) -> expected
            traversals per run.
        function_freq: function entry address -> expected invocations
            per run (the entry function has 1.0).
    """

    __slots__ = ("block_freq", "edge_freq", "function_freq")

    def __init__(self, block_freq: Dict[int, float],
                 edge_freq: Dict[_Edge, float],
                 function_freq: Dict[int, float]) -> None:
        self.block_freq = block_freq
        self.edge_freq = edge_freq
        self.function_freq = function_freq

    def __repr__(self) -> str:
        return "StaticFrequencies(%d blocks, %d edges, %d functions)" % (
            len(self.block_freq), len(self.edge_freq),
            len(self.function_freq))


def edge_probabilities(graph: FlowGraph,
                       estimates: Dict[int, BranchEstimate]
                       ) -> Dict[_Edge, float]:
    """Outgoing probability of every flow edge, in block indices.

    Conditional terminators split per the branch estimate; an indirect
    jump splits uniformly over its flow successors; a single successor
    gets probability 1.
    """
    program = graph.cfg.program
    probabilities: Dict[_Edge, float] = {}
    for index, successors in enumerate(graph.successors):
        if not successors:
            continue
        block = graph.cfg.blocks[index]
        terminator = program.instructions[block.end - 1]
        if len(successors) == 1:
            probabilities[(index, successors[0])] = 1.0
            continue
        if terminator.is_conditional and block.fall_through is not None:
            estimate = estimates.get(block.end - 1)
            taken_p = (estimate.taken_probability
                       if estimate is not None else 0.5)
            taken_index = graph.index_of(block.taken_target)
            fall_index = graph.index_of(block.fall_through)
            probabilities[(index, taken_index)] = taken_p
            probabilities[(index, fall_index)] = 1.0 - taken_p
            continue
        share = 1.0 / len(successors)
        for successor in successors:
            probabilities[(index, successor)] = share
    return probabilities


def local_frequencies(graph: FlowGraph, root_index: int,
                      probabilities: Dict[_Edge, float]
                      ) -> Tuple[Dict[int, float], Dict[_Edge, float]]:
    """Per-block / per-edge frequencies of one region, root = 1.0.

    Implements the Wu-Larus propagation: loops innermost-first to
    collect cyclic probabilities, then one pass from the root; the
    cleanup pass makes the result total on irreducible regions.
    """
    nest = find_loops(graph, root_index)
    back_edges = nest.back_edges
    # back_edge_prob starts at the static edge probability and is
    # rewritten by each loop's pass to the loop's cyclic contribution.
    back_edge_prob: Dict[_Edge, float] = {
        edge: probabilities.get(edge, 0.0) for edge in back_edges}

    block_freq: Dict[int, float] = {}
    edge_freq: Dict[_Edge, float] = {}

    def one_pass(head: int) -> None:
        visited: Set[int] = set()
        stack: List[int] = [head]
        while stack:
            index = stack.pop()
            if index in visited or index not in nest.reachable:
                continue
            if index == head:
                frequency = 1.0
            else:
                ready = all(
                    predecessor in visited
                    or (predecessor, index) in back_edges
                    or predecessor not in nest.reachable
                    for predecessor in graph.predecessors[index])
                if not ready:
                    # Re-pushed when its remaining predecessors finish.
                    continue
                frequency = _block_frequency(
                    graph, index, visited, back_edges, back_edge_prob,
                    edge_freq)
            visited.add(index)
            block_freq[index] = frequency
            for successor in graph.successors[index]:
                edge = (index, successor)
                edge_freq[edge] = (probabilities.get(edge, 0.0)
                                   * frequency)
                if edge in back_edges and successor == head:
                    back_edge_prob[edge] = edge_freq[edge]
                if successor not in visited:
                    stack.append(successor)
        _cleanup(graph, nest.reachable, visited, head, back_edges,
                 back_edge_prob, probabilities, block_freq, edge_freq)

    for loop in nest.loops:  # innermost-first
        one_pass(loop.header)
    one_pass(root_index)
    return block_freq, edge_freq


def _block_frequency(graph: FlowGraph, index: int, visited: Set[int],
                     back_edges: frozenset, back_edge_prob: Dict[_Edge, float],
                     edge_freq: Dict[_Edge, float]) -> float:
    """Incoming frequency of a block, with the closed-form loop term."""
    frequency = 0.0
    cyclic = 0.0
    for predecessor in graph.predecessors[index]:
        edge = (predecessor, index)
        if edge in back_edges:
            cyclic += back_edge_prob.get(edge, 0.0)
        elif predecessor in visited:
            frequency += edge_freq.get(edge, 0.0)
    cyclic = min(cyclic, MAX_CYCLIC_PROBABILITY)
    return min(frequency / (1.0 - cyclic), FREQUENCY_CLAMP)


def _cleanup(graph: FlowGraph, reachable: frozenset, visited: Set[int],
             head: int, back_edges: frozenset,
             back_edge_prob: Dict[_Edge, float],
             probabilities: Dict[_Edge, float],
             block_freq: Dict[int, float],
             edge_freq: Dict[_Edge, float]) -> None:
    """Give dependency-cycled (irreducible) blocks a best-effort value.

    Reverse post-order guarantees each leftover block sees as many
    finished predecessors as possible; contributions from blocks that
    are still unfinished count as zero.
    """
    order = [index for index in reversed(postorder(graph))
             if index in reachable and index not in visited]
    for index in order:
        if not _reaches(graph, head, index, reachable):
            continue
        frequency = _block_frequency(graph, index, visited, back_edges,
                                     back_edge_prob, edge_freq)
        visited.add(index)
        block_freq[index] = frequency
        for successor in graph.successors[index]:
            edge = (index, successor)
            edge_freq[edge] = probabilities.get(edge, 0.0) * frequency


def _reaches(graph: FlowGraph, source: int, target: int,
             universe: frozenset) -> bool:
    seen = {source}
    stack = [source]
    while stack:
        index = stack.pop()
        if index == target:
            return True
        for successor in graph.successors[index]:
            if successor not in seen and successor in universe:
                seen.add(successor)
                stack.append(successor)
    return False


def program_frequencies(program: Program,
                        estimates: Optional[Dict[int, BranchEstimate]] = None,
                        cfg: Optional[ControlFlowGraph] = None,
                        graph: Optional[FlowGraph] = None
                        ) -> StaticFrequencies:
    """Whole-program frequencies: local propagation + call-graph scaling.

    Every function region is propagated with its entry at 1.0, the
    call graph then assigns each function its expected invocation
    count per run of the program (the entry function runs once), and
    local values are scaled through.  Recursive call cycles are
    iterated to a bounded fixpoint and clamped.
    """
    if cfg is None:
        cfg = ControlFlowGraph.from_program(program)
    if graph is None:
        graph = FlowGraph(cfg)
    if estimates is None:
        estimates = predict_branches(program, cfg=cfg, graph=graph)
    probabilities = edge_probabilities(graph, estimates)

    entries = dict(function_entry_addresses(program))
    entry_address = program.entry
    entry_leader = cfg.block_of(entry_address).start
    roots = sorted(set(entries) | {entry_address})

    local_blocks: Dict[int, Dict[int, float]] = {}
    local_edges: Dict[int, Dict[_Edge, float]] = {}
    call_sites: Dict[int, List[Tuple[int, float]]] = {root: []
                                                     for root in roots}
    claimed: Set[int] = set()
    for root in roots:
        root_index = graph.index_of(cfg.block_of(root).start)
        block_freq, edge_freq = local_frequencies(graph, root_index,
                                                  probabilities)
        local_blocks[root] = block_freq
        local_edges[root] = edge_freq
        for index, frequency in block_freq.items():
            if index in claimed:
                continue
            claimed.add(index)
            block = cfg.blocks[index]
            for instr in program.instructions[block.start:block.end]:
                if instr.op is Opcode.CALL \
                        and isinstance(instr.target, int):
                    call_sites[root].append((instr.target, frequency))

    function_freq = {root: 0.0 for root in roots}
    entry_root = (entry_address if entry_address in function_freq
                  else entry_leader)
    function_freq[entry_root] = 1.0
    for _ in range(100):
        updated = {root: (1.0 if root == entry_root else 0.0)
                   for root in roots}
        for caller in roots:
            scale = function_freq[caller]
            if scale == 0.0:
                continue
            for callee, weight in call_sites[caller]:
                if callee in updated:
                    updated[callee] = min(
                        updated[callee] + scale * weight,
                        FREQUENCY_CLAMP)
        delta = max(abs(updated[root] - function_freq[root])
                    for root in roots)
        function_freq = updated
        if delta < 1e-9:
            break

    block_freq_out: Dict[int, float] = {}
    edge_freq_out: Dict[_Edge, float] = {}
    seen_blocks: Set[int] = set()
    for root in roots:
        scale = function_freq[root]
        for index, frequency in local_blocks[root].items():
            if index in seen_blocks:
                continue
            seen_blocks.add(index)
            leader = cfg.blocks[index].start
            block_freq_out[leader] = min(scale * frequency,
                                         FREQUENCY_CLAMP)
        for (source, target), frequency in local_edges[root].items():
            key = (cfg.blocks[source].start, cfg.blocks[target].start)
            if key not in edge_freq_out:
                edge_freq_out[key] = min(scale * frequency,
                                         FREQUENCY_CLAMP)
    return StaticFrequencies(block_freq_out, edge_freq_out,
                             function_freq)
