"""Natural-loop discovery on the flow graph.

Back edges are found with the existing dominator analysis: a flow edge
``tail -> head`` is a back edge exactly when ``head`` dominates
``tail``.  Each back edge induces a natural loop (the reverse flood
from the tail that stops at the header); loops sharing a header are
merged, and the loop forest is nested by body inclusion.

Irreducible regions — cycles entered at two places, so neither entry
dominates the other — simply contribute *no* back edge here.  The
branch heuristics then see no loop at those branches and the frequency
propagation treats the retreating edges as forward edges (see
:mod:`.frequency`), which is the standard conservative handling; the
analyses stay total on such graphs, they just estimate them less
sharply.  Self-loops (a block branching to its own leader) are
ordinary back edges: the block dominates itself.
"""

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.dataflow import FlowGraph
from repro.analysis.dominators import dominator_sets


class Loop:
    """One natural loop, in block indices of a :class:`FlowGraph`.

    Attributes:
        header: block index of the loop header.
        body: block indices of the loop (header included).
        back_edges: the ``(tail, header)`` edges that close the loop.
        parent: the immediately enclosing :class:`Loop`, or None.
        depth: nesting depth (outermost loops have depth 1).
    """

    __slots__ = ("header", "body", "back_edges", "parent", "depth")

    def __init__(self, header: int, body: Set[int],
                 back_edges: List[Tuple[int, int]]) -> None:
        self.header = header
        self.body = body
        self.back_edges = back_edges
        self.parent: Optional["Loop"] = None
        self.depth = 1

    def __contains__(self, index: int) -> bool:
        return index in self.body

    def __repr__(self) -> str:
        return "Loop(header=%d, %d blocks, depth=%d)" % (
            self.header, len(self.body), self.depth)


class LoopNest:
    """The loop forest of one single-entry flow region.

    Attributes:
        loops: loops sorted innermost-first (by body size, then header).
        back_edges: every back edge of the region as a set of
            ``(tail, head)`` index pairs.
        reachable: block indices reachable from the region root.
    """

    __slots__ = ("loops", "back_edges", "reachable", "_innermost")

    def __init__(self, loops: List[Loop],
                 back_edges: FrozenSet[Tuple[int, int]],
                 reachable: FrozenSet[int]) -> None:
        self.loops = loops
        self.back_edges = back_edges
        self.reachable = reachable
        self._innermost: Dict[int, Loop] = {}
        # loops is innermost-first, so the first loop claiming a block
        # is its innermost enclosing loop.
        for loop in loops:
            for index in loop.body:
                self._innermost.setdefault(index, loop)

    def innermost(self, index: int) -> Optional[Loop]:
        """The innermost loop containing block ``index``, or None."""
        return self._innermost.get(index)

    def is_header(self, index: int) -> bool:
        return any(loop.header == index for loop in self.loops)


def find_loops(graph: FlowGraph, root_index: int) -> LoopNest:
    """Discover the natural loops of the region rooted at a block.

    ``root_index`` is the flow-graph index of the region's entry block
    (the program entry or a function entry).  Only blocks reachable
    from the root participate.
    """
    reachable = _reachable_from(graph, root_index)
    root_leader = graph.cfg.blocks[root_index].start
    dominators = dominator_sets(graph.cfg.program, graph=graph,
                                root=root_leader)
    blocks = graph.cfg.blocks
    dom_indices: Dict[int, FrozenSet[int]] = {}
    index_of = graph.index_of
    for leader, dominating in dominators.items():
        dom_indices[index_of(leader)] = frozenset(
            index_of(other) for other in dominating)

    back_edges: Set[Tuple[int, int]] = set()
    for tail in reachable:
        for head in graph.successors[tail]:
            if head in reachable and head in dom_indices.get(tail, ()):
                back_edges.add((tail, head))

    by_header: Dict[int, Loop] = {}
    for tail, head in sorted(back_edges):
        body = _natural_loop_body(graph, tail, head, reachable)
        loop = by_header.get(head)
        if loop is None:
            by_header[head] = Loop(head, body, [(tail, head)])
        else:
            loop.body |= body
            loop.back_edges.append((tail, head))

    loops = sorted(by_header.values(),
                   key=lambda loop: (len(loop.body), loop.header))
    for inner in loops:
        # The innermost strict superset is the parent (loops either
        # nest or are disjoint; sorted order scans candidates
        # innermost-first).
        for outer in loops:
            if outer is inner or len(outer.body) <= len(inner.body):
                continue
            if inner.body <= outer.body and outer.header != inner.header:
                inner.parent = outer
                break
    # Parents have strictly larger bodies, so descending size order
    # computes every parent's depth before its children's.
    for loop in reversed(loops):
        loop.depth = 1 + (loop.parent.depth if loop.parent else 0)
    del blocks
    return LoopNest(loops, frozenset(back_edges), frozenset(reachable))


def _natural_loop_body(graph: FlowGraph, tail: int, head: int,
                       reachable: Set[int]) -> Set[int]:
    """Reverse flood from the back edge's tail, stopping at the head."""
    body = {head, tail}
    stack = [tail] if tail != head else []
    while stack:
        for predecessor in graph.predecessors[stack.pop()]:
            if predecessor in body or predecessor not in reachable:
                continue
            body.add(predecessor)
            stack.append(predecessor)
    return body


def _reachable_from(graph: FlowGraph, root_index: int) -> Set[int]:
    seen = {root_index}
    stack = [root_index]
    while stack:
        for successor in graph.successors[stack.pop()]:
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return seen
