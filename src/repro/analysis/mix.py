"""Instruction-mix analysis.

Static and dynamic opcode mixes of a program.  The dynamic mix needs
no VM support: the fetch stream reconstructed from a (single-run)
branch trace visits every executed address, so counting opcodes over
its segments is exact — and far cheaper than instrumenting the
interpreter loop.
"""

from collections import Counter

from repro.pipeline.fetch_stream import fetch_segments


def static_opcode_mix(program):
    """Counter of opcodes over the program text."""
    return Counter(instr.op for instr in program.instructions)


def dynamic_opcode_mix(program, trace, entry=None, validate=True):
    """Counter of opcodes over one run's executed instructions.

    Args:
        program: the program the trace came from.
        trace: a single-run :class:`~repro.vm.tracing.BranchTrace`.
        entry: start address (defaults to the program entry).
        validate: check trace consistency while reconstructing.
    """
    if entry is None:
        entry = program.entry
    instructions = program.instructions
    counts = Counter()
    for start, length in fetch_segments(trace, entry, validate=validate):
        for address in range(start, start + length):
            counts[instructions[address].op] += 1
    return counts


def mix_fractions(counts):
    """Normalise a mix Counter to {opcode: fraction}."""
    total = sum(counts.values())
    if total == 0:
        return {}
    return {op: count / total for op, count in counts.items()}


def summarize_mix(counts, top=10):
    """Human-readable lines for the most frequent opcodes."""
    total = sum(counts.values())
    lines = []
    for op, count in counts.most_common(top):
        lines.append("%-8s %10d  %6.2f%%"
                     % (op.value, count, 100.0 * count / max(1, total)))
    return "\n".join(lines)
