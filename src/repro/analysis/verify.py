"""The IR verifier: structural invariants of a resolved Program.

Every compiler pass in this repository rewrites programs wholesale
(rebuild masks, layout reordering, slot insertion); the end-to-end
semantics tests catch miscompiles only when an input happens to
exercise the broken path.  The verifier checks the invariants those
passes must preserve *statically* and reports violations as
:class:`Diagnostic` records, so a broken pass fails at build time with
the offending rule and address.

Rules (rule id — meaning):

``unresolved``        program still has symbolic targets
``empty``             program has no instructions
``branch-target``     conditional/JUMP/CALL target missing or outside
                      the text
``call-target``       CALL target is not a function entry
``table-entry``       jump-table entry outside the text, or a TABLE
                      instruction naming a nonexistent table
``fall-off-end``      the last instruction can fall through past the
                      end of the text
``likely-flag``       a likely bit on a non-conditional instruction
``slots-likely``      forward slots on an instruction that cannot own
                      them (only likely conditionals — and JUMPs under
                      the fill_unconditional ablation — may)
``slot-region``       a forward-slot region is truncated, overlapping,
                      or its copies do not match the target-path
                      prefix (the Forward Semantic invariant)
``target-into-slots`` a branch target, jump-table entry, or function
                      entry lands inside a forward-slot region
``cross-function``    a flow edge connects two different functions'
                      regions (CALL/RET pairing is broken — e.g. a
                      dropped RET falls through into the next function)
``ret-in-entry``      a RET is reachable in the entry function, where
                      the call stack is empty
``use-before-def``    a register is read that no path ever writes
                      (the VM would fault on the register file)
``unreachable``       (warning) a basic block no execution can reach

Severities are ``"error"`` and ``"warning"``; only errors make
:func:`assert_valid` raise :class:`VerificationError`.
"""

from repro.analysis.dataflow import FlowGraph
from repro.analysis.effects import function_entry_addresses
from repro.analysis.reaching import use_before_def
from repro.analysis.unreachable import reachable_blocks
from repro.cfg import ControlFlowGraph
from repro.isa.opcodes import Opcode

_NO_FALL_THROUGH = frozenset({Opcode.JUMP, Opcode.RET, Opcode.JIND,
                              Opcode.HALT})
_NEEDS_TARGET = frozenset({Opcode.JUMP, Opcode.CALL})

ERROR = "error"
WARNING = "warning"


class Diagnostic:
    """One verifier finding."""

    __slots__ = ("severity", "address", "rule", "message")

    def __init__(self, severity, address, rule, message):
        self.severity = severity
        self.address = address
        self.rule = rule
        self.message = message

    @property
    def is_error(self):
        return self.severity == ERROR

    def __repr__(self):
        return "Diagnostic(%s, %r)" % (self, self.message)

    def __str__(self):
        return "%s:%s: [%s] %s" % (
            self.severity,
            "-" if self.address is None else self.address,
            self.rule, self.message)


class VerificationError(Exception):
    """Raised when a program fails verification.

    Attributes:
        context: what produced the bad program (a pass name).
        diagnostics: the error-severity :class:`Diagnostic` list.
    """

    def __init__(self, context, diagnostics):
        self.context = context
        self.diagnostics = list(diagnostics)
        lines = ["%s produced an invalid program (%d error%s):"
                 % (context, len(self.diagnostics),
                    "" if len(self.diagnostics) == 1 else "s")]
        lines.extend("  %s" % diagnostic
                     for diagnostic in self.diagnostics[:10])
        if len(self.diagnostics) > 10:
            lines.append("  ... %d more" % (len(self.diagnostics) - 10))
        super().__init__("\n".join(lines))


def verify_program(program, cfg=None, warnings=True):
    """Check every invariant; returns a list of :class:`Diagnostic`.

    Text-level rules run first; when any of them fail the CFG-level
    rules are skipped (the control-flow graph of a structurally broken
    program is not meaningful).
    """
    if not program.resolved:
        return [Diagnostic(ERROR, None, "unresolved",
                           "program has unresolved symbolic targets")]
    instructions = program.instructions
    size = len(instructions)
    if size == 0:
        return [Diagnostic(ERROR, None, "empty",
                           "program has no instructions")]

    diagnostics = []
    report = diagnostics.append
    entries = function_entry_addresses(program)

    # -- text-level rules ---------------------------------------------------
    slot_owner = [None] * size
    for address, instr in enumerate(instructions):
        op = instr.op
        if instr.is_conditional or op in _NEEDS_TARGET:
            if not isinstance(instr.target, int):
                report(Diagnostic(ERROR, address, "branch-target",
                                  "%s has no resolved target" % op.value))
            elif not 0 <= instr.target < size:
                report(Diagnostic(ERROR, address, "branch-target",
                                  "%s target %d outside text of %d"
                                  % (op.value, instr.target, size)))
        if op is Opcode.CALL and isinstance(instr.target, int) \
                and instr.target not in entries:
            report(Diagnostic(ERROR, address, "call-target",
                              "call target %d is not a function entry"
                              % instr.target))
        if instr.likely and not instr.is_conditional:
            report(Diagnostic(ERROR, address, "likely-flag",
                              "likely bit on non-conditional %s" % op.value))
        if instr.n_slots:
            diagnostics.extend(_check_slot_flags(instr, address, size,
                                                 slot_owner))
        if op is Opcode.TABLE and (
                instr.imm is None
                or not 0 <= instr.imm < len(program.jump_tables)):
            report(Diagnostic(ERROR, address, "table-entry",
                              "TABLE names nonexistent table %r" % instr.imm))

    for table in program.jump_tables:
        for entry in table.entries:
            if not isinstance(entry, int) or not 0 <= entry < size:
                report(Diagnostic(ERROR, None, "table-entry",
                                  "jump table %s entry %r outside text"
                                  % (table.name, entry)))

    # Slots owned by a JUMP (the fill_unconditional ablation) are dead
    # padding — a JUMP always redirects — so they cannot fall through.
    final_owner = slot_owner[size - 1]
    in_jump_padding = (final_owner is not None
                       and instructions[final_owner].op is Opcode.JUMP)
    if instructions[-1].op not in _NO_FALL_THROUGH and not in_jump_padding:
        report(Diagnostic(ERROR, size - 1, "fall-off-end",
                          "%s at the end of the text can fall through"
                          % instructions[-1].op.value))

    if any(diagnostic.is_error for diagnostic in diagnostics):
        return diagnostics

    # -- slot-region content and landing rules ------------------------------
    for address, instr in enumerate(instructions):
        if instr.is_branch and isinstance(instr.target, int):
            owner = slot_owner[instr.target]
            if owner is not None:
                report(Diagnostic(ERROR, address, "target-into-slots",
                                  "branch targets %d inside the slot "
                                  "region of the branch at %d"
                                  % (instr.target, owner)))
        if instr.n_slots and instr.is_conditional:
            diagnostics.extend(
                _check_slot_prefix(instructions, address, instr))
    for table in program.jump_tables:
        for entry in table.entries:
            if slot_owner[entry] is not None:
                report(Diagnostic(ERROR, None, "target-into-slots",
                                  "jump table %s entry %d lands inside "
                                  "the slot region of the branch at %d"
                                  % (table.name, entry, slot_owner[entry])))
    for entry, name in entries.items():
        if slot_owner[entry] is not None:
            report(Diagnostic(ERROR, entry, "target-into-slots",
                              "function %s entry lands inside the slot "
                              "region of the branch at %d"
                              % (name, slot_owner[entry])))

    if any(diagnostic.is_error for diagnostic in diagnostics):
        return diagnostics

    # -- CFG-level rules ----------------------------------------------------
    try:
        entry_address = program.entry
    except Exception as error:
        report(Diagnostic(ERROR, None, "empty", str(error)))
        return diagnostics
    if cfg is None:
        cfg = ControlFlowGraph.from_program(program)
    graph = FlowGraph(cfg)

    diagnostics.extend(_check_function_regions(program, cfg, graph,
                                               entries, entry_address))

    reachable = reachable_blocks(program, graph=graph)
    if warnings:
        for block in cfg.blocks:
            if block.start not in reachable:
                report(Diagnostic(WARNING, block.start, "unreachable",
                                  "block %d..%d is unreachable"
                                  % (block.start, block.end)))

    for address, register in use_before_def(program, cfg=cfg,
                                            blocks=reachable):
        report(Diagnostic(ERROR, address, "use-before-def",
                          "r%d is read but never written on any path"
                          % register))
    return diagnostics


def _check_slot_flags(instr, address, size, slot_owner):
    """Slot-count sanity and region bookkeeping for one instruction."""
    findings = []
    if instr.n_slots < 0:
        findings.append(Diagnostic(ERROR, address, "slots-likely",
                                   "negative slot count %d" % instr.n_slots))
        return findings
    if instr.is_conditional:
        if not instr.likely:
            findings.append(Diagnostic(
                ERROR, address, "slots-likely",
                "forward slots on a branch not predicted taken"))
    elif instr.op is not Opcode.JUMP:
        findings.append(Diagnostic(
            ERROR, address, "slots-likely",
            "forward slots on %s" % instr.op.value))
    if address + instr.n_slots >= size:
        findings.append(Diagnostic(
            ERROR, address, "slot-region",
            "slot region [%d..%d] extends past the end of the text"
            % (address + 1, address + instr.n_slots)))
        return findings
    for offset in range(1, instr.n_slots + 1):
        if slot_owner[address + offset] is not None:
            findings.append(Diagnostic(
                ERROR, address, "slot-region",
                "slot region overlaps the region of the branch at %d"
                % slot_owner[address + offset]))
            break
        slot_owner[address + offset] = address
    return findings


def _check_slot_prefix(instructions, address, instr):
    """The Forward Semantic invariant: the ``consumed = target -
    orig_target`` instructions after a slotted branch are faithful
    copies of the target-path prefix they replace."""
    findings = []
    orig = instr.orig_target
    if not isinstance(orig, int) or not 0 <= orig < len(instructions):
        findings.append(Diagnostic(
            ERROR, address, "slot-region",
            "slotted branch has no valid original target (%r)" % (orig,)))
        return findings
    consumed = instr.target - orig
    if not 0 <= consumed <= instr.n_slots:
        findings.append(Diagnostic(
            ERROR, address, "slot-region",
            "adjusted target consumes %d instructions but only %d "
            "slot%s reserved" % (consumed, instr.n_slots,
                                 " is" if instr.n_slots == 1 else "s are")))
        return findings
    for offset in range(consumed):
        copy = instructions[address + 1 + offset]
        original = instructions[orig + offset]
        if not copy.semantically_equal(original):
            findings.append(Diagnostic(
                ERROR, address, "slot-region",
                "slot %d (%r) is not a copy of the target-path "
                "instruction at %d (%r)"
                % (offset, copy, orig + offset, original)))
    return findings


def _check_function_regions(program, cfg, graph, entries, entry_address):
    """Flood each function's flow region; flag overlaps and a RET
    reachable with an empty call stack."""
    findings = []
    owner = {}
    for entry, name in sorted(entries.items()):
        start = cfg.block_of(entry).start
        seen = set()
        stack = [graph.index_of(start)]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            leader = cfg.blocks[index].start
            if leader in owner and owner[leader] != name:
                findings.append(Diagnostic(
                    ERROR, leader, "cross-function",
                    "block %d is reachable from both %s and %s "
                    "without a call" % (leader, owner[leader], name)))
                continue
            owner[leader] = name
            if index in graph.fallback_indirect:
                continue  # unresolved JIND: do not guess across regions
            stack.extend(graph.successors[index])

        if entry == entry_address:
            for index in seen:
                block = cfg.blocks[index]
                if program.instructions[block.end - 1].op is Opcode.RET:
                    findings.append(Diagnostic(
                        ERROR, block.end - 1, "ret-in-entry",
                        "RET reachable in entry function %s, where the "
                        "call stack is empty" % name))
    return findings


def assert_valid(program, context="program", cfg=None):
    """Raise :class:`VerificationError` when verification finds errors.

    Returns the full diagnostic list (warnings included) otherwise.
    """
    diagnostics = verify_program(program, cfg=cfg)
    errors = [diagnostic for diagnostic in diagnostics
              if diagnostic.is_error]
    if errors:
        raise VerificationError(context, errors)
    return diagnostics
