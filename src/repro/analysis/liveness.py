"""Register liveness (backward, may, union join).

A register is *live* at a point when some path from that point reads
it before writing it.  Values are integer bitmasks over register
numbers; ``RET`` and ``HALT`` exits have nothing live (the frame dies
with the activation — frames are private, see
:mod:`repro.analysis.effects`).

The payoff query is :func:`dead_register_writes`: addresses whose
instruction writes a register that is never subsequently read and has
no other effect, i.e. instructions the optimizer may delete.
"""

from repro.analysis.dataflow import Analysis, FlowGraph, solve
from repro.analysis.effects import (
    is_pure_write,
    register_written,
    registers_read,
)
from repro.cfg import ControlFlowGraph


class _LivenessAnalysis(Analysis):
    direction = "backward"

    def __init__(self, graph):
        self.use = []
        self.define = []
        program = graph.cfg.program
        for block in graph.cfg.blocks:
            use_mask = 0
            define_mask = 0
            for address in range(block.end - 1, block.start - 1, -1):
                instr = program.instructions[address]
                written = register_written(instr)
                if written is not None:
                    bit = 1 << written
                    define_mask |= bit
                    use_mask &= ~bit
                for register in registers_read(instr):
                    use_mask |= 1 << register
            self.use.append(use_mask)
            self.define.append(define_mask)

    def initial(self, graph, index):
        return 0

    def boundary(self, graph, index):
        # Exit blocks (RET/HALT/off-the-end) have empty live-out; a
        # block with no flow successors contributes None edges anyway,
        # so the empty default suffices.
        return None

    def join(self, left, right):
        return left | right

    def transfer(self, graph, index, live_out):
        return self.use[index] | (live_out & ~self.define[index])


class Liveness:
    """Fixed-point liveness of a program.

    Attributes:
        graph: the :class:`~repro.analysis.dataflow.FlowGraph` used.
        live_in: {leader address: bitmask live at block entry}.
        live_out: {leader address: bitmask live at block exit}.
    """

    def __init__(self, graph, live_in, live_out):
        self.graph = graph
        self.live_in = live_in
        self.live_out = live_out

    def is_live_in(self, leader, register):
        return bool(self.live_in[leader] >> register & 1)

    def is_live_out(self, leader, register):
        return bool(self.live_out[leader] >> register & 1)

    def live_masks_at(self, block):
        """Per-instruction live-after masks inside ``block``.

        Returns a list aligned with ``range(block.start, block.end)``:
        element ``i`` is the mask of registers live immediately
        *after* the instruction at ``block.start + i``.
        """
        program = self.graph.cfg.program
        live = self.live_out[block.start]
        masks = [0] * len(block)
        for offset in range(len(block) - 1, -1, -1):
            masks[offset] = live
            instr = program.instructions[block.start + offset]
            written = register_written(instr)
            if written is not None:
                live &= ~(1 << written)
            for register in registers_read(instr):
                live |= 1 << register
        return masks


def compute_liveness(program, cfg=None, graph=None):
    """Solve liveness for a resolved program; returns :class:`Liveness`."""
    if graph is None:
        graph = FlowGraph(cfg or ControlFlowGraph.from_program(program))
    result = solve(graph, _LivenessAnalysis(graph))
    live_in = {}
    live_out = {}
    for index, block in enumerate(graph.cfg.blocks):
        # Backward analysis: solver "inputs" are block-end values.
        live_out[block.start] = result.inputs[index]
        live_in[block.start] = result.outputs[index]
    return Liveness(graph, live_in, live_out)


def dead_register_writes(program, cfg=None, liveness=None):
    """Addresses of removable dead writes.

    An address qualifies when its instruction is a pure register write
    (:func:`~repro.analysis.effects.is_pure_write`) whose destination
    is dead afterwards, and it does not sit inside a forward-slot
    region (slot regions must keep their exact length).

    The dead set is computed as if all qualifying writes are deleted
    together: while walking a block backwards, a dead write's own
    reads do not keep its sources live, so chains like
    ``li r1; mov r2, r1`` with ``r2`` dead are caught in one pass.
    """
    if liveness is None:
        if cfg is None:
            cfg = ControlFlowGraph.from_program(program)
        liveness = compute_liveness(program, cfg=cfg)
    graph = liveness.graph
    instructions = graph.cfg.program.instructions

    protected = [False] * len(instructions)
    for address, instr in enumerate(instructions):
        for offset in range(1, instr.n_slots + 1):
            if address + offset < len(instructions):
                protected[address + offset] = True

    dead = []
    for block in graph.cfg.blocks:
        live = liveness.live_out[block.start]
        for address in range(block.end - 1, block.start - 1, -1):
            instr = instructions[address]
            written = register_written(instr)
            removable = (
                written is not None
                and not live >> written & 1
                and is_pure_write(instr)
                and not protected[address]
            )
            if removable:
                dead.append(address)
                continue  # deleted: no effect on liveness
            if written is not None:
                live &= ~(1 << written)
            for register in registers_read(instr):
                live |= 1 << register
    dead.reverse()
    return dead
