"""Dominators (forward, must, intersection join).

Block A *dominates* block B when every path from the root to B passes
through A.  Because register frames are private and ``CALL`` is not a
flow edge, each function is its own single-entry flow region, so the
computation runs per root: the program entry by default, or any
function entry.

Values are integer bitmasks over block indices; the lattice top is
the full-universe mask, the intersection join shrinks it to the true
dominator sets, and unreachable blocks keep the (meaningless) full
mask and are excluded from the returned maps.
"""

from repro.analysis.dataflow import Analysis, FlowGraph, solve
from repro.cfg import ControlFlowGraph


class _DominatorAnalysis(Analysis):
    direction = "forward"

    def __init__(self, graph, root_index):
        self.root_index = root_index
        self.universe = (1 << len(graph)) - 1

    def initial(self, graph, index):
        return self.universe

    def boundary(self, graph, index):
        # The root is dominated only by itself, even when a loop edge
        # re-enters it; modelled as an empty boundary contribution so
        # the transfer's self-bit is its whole set.
        if index == self.root_index:
            return 0
        return None

    def join(self, left, right):
        return left & right

    def transfer(self, graph, index, incoming):
        if index == self.root_index:
            return 1 << index
        return incoming | 1 << index


def dominator_sets(program, cfg=None, graph=None, root=None):
    """{leader: frozenset of dominating leaders}, reachable from root.

    ``root`` is a leader address (default: the program entry's block).
    Blocks unreachable from the root are omitted.
    """
    if graph is None:
        graph = FlowGraph(cfg or ControlFlowGraph.from_program(program))
    if root is None:
        root = graph.cfg.block_of(graph.cfg.program.entry).start
    root_index = graph.index_of(root)
    result = solve(graph, _DominatorAnalysis(graph, root_index))

    reachable = _reachable_from(graph, root_index)
    blocks = graph.cfg.blocks
    sets = {}
    for index in reachable:
        mask = result.outputs[index] & _mask_of(reachable)
        sets[blocks[index].start] = frozenset(
            blocks[position].start for position in _bits(mask)
            if position in reachable)
    return sets


def immediate_dominators(program, cfg=None, graph=None, root=None):
    """{leader: immediate dominator leader}; the root maps to None."""
    if graph is None:
        graph = FlowGraph(cfg or ControlFlowGraph.from_program(program))
    sets = dominator_sets(program, cfg=cfg, graph=graph, root=root)
    idom = {}
    for leader, dominators in sets.items():
        strict = dominators - {leader}
        if not strict:
            idom[leader] = None
            continue
        # The immediate dominator is the strict dominator dominated by
        # every other strict dominator.
        idom[leader] = max(strict, key=lambda d: len(sets[d]))
    return idom


def _reachable_from(graph, root_index):
    seen = {root_index}
    stack = [root_index]
    while stack:
        for successor in graph.successors[stack.pop()]:
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return seen


def _mask_of(indices):
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


def _bits(mask):
    index = 0
    while mask:
        if mask & 1:
            yield index
        mask >>= 1
        index += 1
