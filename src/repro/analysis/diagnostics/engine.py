"""The diagnostics engine: one entry point over all rules.

:func:`run_diagnostics` unifies the structural verifier with the
rule set of :mod:`.rules` into a single :class:`DiagnosticsReport` of
:class:`~repro.analysis.diagnostics.findings.Finding` records.  The
``stage`` argument names the pipeline point the program came from
(``"compiled"``, ``"optimized"``, ``"layout"``, ``"slots"``, ...);
layout-aware rules only run when the caller passes the
:class:`~repro.traceopt.layout.LayoutResult` and the pre-layout
program.

Like the verifier, the engine degrades gracefully on broken input:
structural errors short-circuit the analysis rules (a CFG over a
malformed text is meaningless), so the report is always produced and
never raises on a syntactically loadable program.
"""

from typing import Any, Dict, List, Optional

from repro.analysis.dataflow import FlowGraph
from repro.analysis.diagnostics.findings import (
    SEVERITIES,
    Finding,
    from_diagnostic,
)
from repro.analysis.diagnostics.rules import (
    degenerate_branches,
    loop_invariant_branches,
    slot_use_before_def,
    squash_unsafe_slots,
    unreachable_after_layout,
)
from repro.analysis.verify import verify_program
from repro.cfg import ControlFlowGraph
from repro.isa.program import Program
from repro.traceopt.layout import LayoutResult

_SEVERITY_RANK = {severity: rank
                  for rank, severity in enumerate(SEVERITIES)}


class DiagnosticsReport:
    """Every finding of one program at one pipeline stage."""

    __slots__ = ("name", "stage", "findings")

    def __init__(self, name: str, stage: str,
                 findings: List[Finding]) -> None:
        self.name = name
        self.stage = stage
        self.findings = findings

    @property
    def errors(self) -> List[Finding]:
        return [finding for finding in self.findings
                if finding.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [finding for finding in self.findings
                if finding.severity == "warning"]

    @property
    def infos(self) -> List[Finding]:
        return [finding for finding in self.findings
                if finding.severity == "info"]

    @property
    def ok(self) -> bool:
        """No errors (the default lint gate)."""
        return not self.errors

    @property
    def strict_ok(self) -> bool:
        """No errors and no warnings (the ``--strict`` gate)."""
        return not any(finding.fails_strict
                       for finding in self.findings)

    def counts(self) -> Dict[str, int]:
        counts = dict.fromkeys(SEVERITIES, 0)
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "stage": self.stage,
            "counts": self.counts(),
            "findings": [finding.to_dict()
                         for finding in self.findings],
        }

    def __repr__(self) -> str:
        counts = self.counts()
        return ("DiagnosticsReport(%r, %s, %d errors, %d warnings, "
                "%d infos)" % (self.name, self.stage, counts["error"],
                               counts["warning"], counts["info"]))


def run_diagnostics(program: Program,
                    cfg: Optional[ControlFlowGraph] = None,
                    stage: str = "compiled",
                    name: Optional[str] = None,
                    layout: Optional[LayoutResult] = None,
                    original: Optional[Program] = None,
                    warnings: bool = True) -> DiagnosticsReport:
    """Run the verifier and every applicable rule on one program.

    Args:
        program: resolved program to diagnose.
        cfg: optional pre-built CFG.
        stage: pipeline stage label, recorded in the report.
        name: report name (defaults to the program's).
        layout: the :class:`LayoutResult` that produced ``program``;
            enables the ``unreachable-after-layout`` rule (requires
            ``original`` too).
        original: the pre-layout program for layout-aware rules.
        warnings: False reports only error-severity findings (the
            lint ``--no-warnings`` mode).
    """
    report_name = name if name is not None else program.name
    findings = [from_diagnostic(diagnostic, program)
                for diagnostic in verify_program(program, cfg=cfg,
                                                 warnings=warnings)]
    findings = slot_use_before_def(program, findings)

    if not any(finding.is_error for finding in findings):
        if cfg is None:
            cfg = ControlFlowGraph.from_program(program)
        graph = FlowGraph(cfg)
        findings.extend(squash_unsafe_slots(program))
        findings.extend(degenerate_branches(program, cfg))
        findings.extend(loop_invariant_branches(program, cfg, graph))
        if layout is not None and original is not None:
            findings.extend(unreachable_after_layout(
                program, cfg, graph, layout, original))

    if not warnings:
        findings = [finding for finding in findings
                    if finding.is_error]
    findings.sort(key=lambda finding: (
        _SEVERITY_RANK[finding.severity],
        -1 if finding.address is None else finding.address))
    return DiagnosticsReport(report_name, stage, findings)
