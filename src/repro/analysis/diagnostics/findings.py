"""Structured diagnostics findings.

A :class:`Finding` is one diagnosed fact about a program: a stable
rule id, a severity, a message, the instruction address it anchors to,
and — when the program carries a line mapping — the source line that
address came from.  The verifier's :class:`Diagnostic` records convert
losslessly (:func:`from_diagnostic`), so the whole pipeline reports
through one shape and ``lint --json`` can serialise everything.

Severities:

``error``    the program is invalid; the VM or a later pass would
             misbehave.  Fails lint (and ``--strict``).
``warning``  suspicious but executable — e.g. a squash-unsafe
             instruction in a forward-slot region.  Fails ``--strict``
             only.
``info``     observations and optimisation opportunities (unreachable
             code, hoistable loop-invariant branches).  Never fails.

The verifier's ``unreachable`` rule maps to ``info`` here: compiled
real-program corpora legitimately contain unreachable blocks (dead
library functions), so treating them as strict failures would make
``--strict`` unusable as a gate.
"""

from typing import Any, Dict, Optional

from repro.analysis.verify import Diagnostic
from repro.isa.program import Program

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: All severities, most severe first (also the report sort order).
SEVERITIES = (ERROR, WARNING, INFO)

#: Verifier rules whose severity is re-mapped on conversion.
_SEVERITY_OVERRIDES = {"unreachable": INFO}


class Finding:
    """One diagnosed fact about a program."""

    __slots__ = ("rule", "severity", "message", "address", "line")

    def __init__(self, rule: str, severity: str, message: str,
                 address: Optional[int] = None,
                 line: Optional[int] = None) -> None:
        if severity not in SEVERITIES:
            raise ValueError("unknown severity %r" % severity)
        self.rule = rule
        self.severity = severity
        self.message = message
        self.address = address
        self.line = line

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    @property
    def fails_strict(self) -> bool:
        """True when ``--strict`` mode counts this finding as a failure."""
        return self.severity in (ERROR, WARNING)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "address": self.address,
            "line": self.line,
        }

    def __str__(self) -> str:
        suffix = "" if self.line is None else " (line %d)" % self.line
        return "%s:%s: [%s] %s%s" % (
            self.severity,
            "-" if self.address is None else self.address,
            self.rule, self.message, suffix)

    def __repr__(self) -> str:
        return "Finding(%s)" % self


def line_of(program: Program, address: Optional[int]) -> Optional[int]:
    """The source line an instruction address came from, if mapped."""
    if address is None or not program.lines:
        return None
    return program.lines.get(address)


def from_diagnostic(diagnostic: Diagnostic,
                    program: Program) -> Finding:
    """Convert a verifier :class:`Diagnostic` into a :class:`Finding`."""
    severity = _SEVERITY_OVERRIDES.get(diagnostic.rule,
                                       diagnostic.severity)
    return Finding(diagnostic.rule, severity, diagnostic.message,
                   diagnostic.address,
                   line_of(program, diagnostic.address))
