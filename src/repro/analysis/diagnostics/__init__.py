"""Whole-pipeline IR diagnostics.

A structured findings framework (:mod:`.findings`) unifying the
structural verifier with analysis rules (:mod:`.rules`) behind one
engine (:mod:`.engine`); drives ``repro-branches lint`` including its
``--json`` and ``--strict`` modes.
"""

from repro.analysis.diagnostics.engine import (
    DiagnosticsReport,
    run_diagnostics,
)
from repro.analysis.diagnostics.findings import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    Finding,
    from_diagnostic,
    line_of,
)
from repro.analysis.diagnostics.rules import (
    degenerate_branches,
    loop_invariant_branches,
    slot_regions,
    slot_use_before_def,
    squash_unsafe_slots,
    unreachable_after_layout,
)

__all__ = [
    "DiagnosticsReport",
    "ERROR",
    "Finding",
    "INFO",
    "SEVERITIES",
    "WARNING",
    "degenerate_branches",
    "from_diagnostic",
    "line_of",
    "loop_invariant_branches",
    "run_diagnostics",
    "slot_regions",
    "slot_use_before_def",
    "squash_unsafe_slots",
    "unreachable_after_layout",
]
