"""Diagnostics rules beyond the structural verifier.

Each rule is a function taking the program (plus whatever analyses it
needs) and returning a list of :class:`Finding`.  The engine
(:mod:`.engine`) decides which rules run at which pipeline stage.

Rules (rule id — severity — meaning):

``squash-unsafe-slot``        warning — a forward-slot instruction
    whose effect escapes the register file before commit (memory
    write, I/O, staging, possible fault), so the paper's squashing
    hardware cannot cancel it cleanly when the branch falls through.
``use-before-def-slots``      error — a register read inside a
    forward-slot region with no definition on any path to the slot;
    the hazard the slot copy *introduced* (the original target-path
    read was dominated by a definition on a different predecessor).
``unreachable-after-layout``  warning — a block that was reachable in
    the pre-layout program but is unreachable after layout: the
    reordering dropped an edge.
``degenerate-branch``         warning — a conditional branch whose
    outcome is a compile-time constant (same-register compare, or
    both operands block-local constants); it should be a JUMP or
    nothing.
``loop-invariant-branch``     info — a branch inside a loop reading
    only registers no instruction of the loop writes; a hoisting
    candidate (the paper's software schemes pay for it every
    iteration).
"""

from typing import Dict, List, Optional

from repro.analysis.dataflow import FlowGraph
from repro.analysis.effects import (
    function_entry_addresses,
    is_squash_safe,
    register_written,
    registers_read,
)
from repro.analysis.diagnostics.findings import (
    ERROR,
    INFO,
    WARNING,
    Finding,
    line_of,
)
from repro.analysis.staticpred.heuristics import _constant_outcome
from repro.analysis.staticpred.loops import find_loops
from repro.analysis.unreachable import reachable_blocks
from repro.cfg import ControlFlowGraph
from repro.isa.program import Program
from repro.traceopt.layout import LayoutResult


def slot_regions(program: Program) -> Dict[int, int]:
    """Map of slot address -> owning branch address.

    Only well-formed regions (inside the text) are mapped; malformed
    ones are the verifier's ``slot-region`` errors.
    """
    owners: Dict[int, int] = {}
    size = len(program.instructions)
    for address, instr in enumerate(program.instructions):
        if instr.n_slots and instr.is_conditional:
            for offset in range(1, instr.n_slots + 1):
                if address + offset < size:
                    owners[address + offset] = address
    return owners


def squash_unsafe_slots(program: Program) -> List[Finding]:
    """Flag forward-slot instructions squashing hardware cannot cancel."""
    findings: List[Finding] = []
    for address, owner in sorted(slot_regions(program).items()):
        instr = program.instructions[address]
        if is_squash_safe(instr):
            continue
        findings.append(Finding(
            "squash-unsafe-slot", WARNING,
            "%s in the slot region of the branch at %d cannot be "
            "squashed cleanly (its effect escapes the register file)"
            % (instr.op.value, owner),
            address, line_of(program, address)))
    return findings


def slot_use_before_def(program: Program,
                        findings: List[Finding]) -> List[Finding]:
    """Re-anchor use-before-def findings that live in slot regions.

    Reads with no reaching definition *inside a forward-slot region*
    are the hazard slot copying introduced — on the original target
    path the read was dominated by a definition on another
    predecessor, but the copy in the slots executes down the branch
    path, which has none.  They get their own rule id and the owning
    branch in the message instead of the generic ``use-before-def``.
    """
    owners = slot_regions(program)
    rewritten: List[Finding] = []
    for finding in findings:
        owner = (owners.get(finding.address)
                 if finding.rule == "use-before-def" else None)
        if owner is None:
            rewritten.append(finding)
            continue
        rewritten.append(Finding(
            "use-before-def-slots", ERROR,
            "%s — the read sits in the slot region of the branch at "
            "%d, a hazard the slot copy introduced"
            % (finding.message, owner),
            finding.address, finding.line))
    return rewritten


def unreachable_after_layout(program: Program, cfg: ControlFlowGraph,
                             graph: FlowGraph, layout: LayoutResult,
                             original: Program) -> List[Finding]:
    """Flag blocks layout made unreachable.

    Maps each unreachable post-layout block back through
    ``layout.old_address_of``; blocks already unreachable before
    layout are expected (they still surface as ``unreachable`` info
    findings) — only a reachable-to-unreachable transition is a
    layout defect.
    """
    reachable_after = reachable_blocks(program, graph=graph)
    original_cfg = ControlFlowGraph.from_program(original)
    reachable_before = reachable_blocks(original,
                                        cfg=original_cfg)
    findings: List[Finding] = []
    for block in cfg.blocks:
        if block.start in reachable_after:
            continue
        # old_address_of is a per-new-address list; inserted JUMPs map
        # to None and have no pre-layout identity.
        old_address = layout.old_address_of[block.start]
        if old_address is None:
            continue
        old_leader = original_cfg.block_of(old_address).start
        if old_leader in reachable_before:
            findings.append(Finding(
                "unreachable-after-layout", WARNING,
                "block %d..%d (pre-layout address %d) was reachable "
                "before layout but is not after"
                % (block.start, block.end, old_address),
                block.start, line_of(program, block.start)))
    return findings


def degenerate_branches(program: Program,
                        cfg: ControlFlowGraph) -> List[Finding]:
    """Flag conditional branches whose outcome is statically constant."""
    findings: List[Finding] = []
    for block in cfg.blocks:
        site = block.end - 1
        terminator = program.instructions[site]
        if not terminator.is_conditional:
            continue
        outcome = _constant_outcome(program, cfg, block, terminator)
        if outcome is None:
            continue
        findings.append(Finding(
            "degenerate-branch", WARNING,
            "%s always %s (its outcome is a compile-time constant)"
            % (terminator.op.value,
               "branches" if outcome else "falls through"),
            site, line_of(program, site)))
    return findings


def loop_invariant_branches(program: Program, cfg: ControlFlowGraph,
                            graph: FlowGraph) -> List[Finding]:
    """Flag loop branches reading only loop-invariant registers."""
    findings: List[Finding] = []
    roots = set(function_entry_addresses(program))
    roots.add(cfg.block_of(program.entry).start)
    claimed: set = set()
    for root in sorted(roots):
        root_index = graph.index_of(cfg.block_of(root).start)
        nest = find_loops(graph, root_index)
        for loop in nest.loops:
            written = set()
            for index in loop.body:
                block = cfg.blocks[index]
                for instr in program.instructions[block.start:block.end]:
                    register = register_written(instr)
                    if register is not None:
                        written.add(register)
            for index in sorted(loop.body):
                block = cfg.blocks[index]
                site = block.end - 1
                if site in claimed:
                    continue
                terminator = program.instructions[site]
                if not terminator.is_conditional:
                    continue
                reads = registers_read(terminator)
                if not reads or any(register in written
                                    for register in reads):
                    continue
                claimed.add(site)
                findings.append(Finding(
                    "loop-invariant-branch", INFO,
                    "%s reads only registers (%s) the enclosing loop "
                    "at %d never writes; hoisting candidate"
                    % (terminator.op.value,
                       ", ".join("r%d" % r for r in sorted(set(reads))),
                       cfg.blocks[loop.header].start),
                    site, line_of(program, site)))
    findings.sort(key=lambda finding: finding.address or 0)
    return findings
