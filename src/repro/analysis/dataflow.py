"""Generic worklist dataflow solver over control-flow graphs.

Two pieces:

* :class:`FlowGraph` refines the *layout* successors of
  :class:`~repro.cfg.ControlFlowGraph` into *flow* successors suitable
  for dataflow: a ``JIND`` terminator gets edges to its jump-table
  entries (the table is recovered from the ``TABLE`` instruction that
  feeds the jump's register when possible, conservatively all tables
  otherwise), while ``RET``/``HALT`` remain exits.  ``CALL`` is an
  ordinary mid-block instruction — register frames are private per
  activation, so no flow edge crosses a function boundary.

* :func:`solve` runs any :class:`Analysis` to a fixed point with a
  worklist seeded in reverse post-order (forward) or post-order
  (backward).  Lattice values are opaque to the solver; analyses
  supply ``join`` and ``transfer`` and may use whatever value
  representation they like (the concrete analyses here use integer
  bitmasks).
"""

from repro.isa.opcodes import Opcode


class FlowGraph:
    """Flow successor/predecessor structure over a CFG's blocks."""

    def __init__(self, cfg):
        self.cfg = cfg
        blocks = cfg.blocks
        index_of = {block.start: position
                    for position, block in enumerate(blocks)}
        successors = []
        # Blocks whose JIND could not be tied to a specific table and
        # got the all-entries fallback; the verifier's function-region
        # flood must not follow those edges (they may cross functions).
        self.fallback_indirect = set()
        for position, block in enumerate(blocks):
            terminator = cfg.program.instructions[block.end - 1]
            if terminator.op is Opcode.JIND:
                targets, resolved = _indirect_targets(
                    cfg.program, block, terminator)
                if not resolved:
                    self.fallback_indirect.add(position)
            elif terminator.is_conditional and terminator.n_slots:
                targets = _slotted_targets(cfg.program, block, terminator)
            else:
                targets = block.successors()
            successors.append(sorted({index_of[target] for target in targets
                                      if target in index_of}))
        predecessors = [[] for _ in blocks]
        for position, targets in enumerate(successors):
            for target in targets:
                predecessors[target].append(position)
        self._index_of = index_of
        self.successors = successors
        self.predecessors = predecessors

    def index_of(self, leader):
        """Block index of a leader address."""
        return self._index_of[leader]

    def __len__(self):
        return len(self.successors)


def _indirect_targets(program, block, terminator):
    """(targets, resolved) for a JIND terminator.

    Walks the block backwards looking for the ``TABLE`` instruction
    that last defined the jump register; falls back to every entry of
    every table (``resolved=False``) when the feeding table cannot be
    identified.
    """
    register = terminator.a
    for address in range(block.end - 2, block.start - 1, -1):
        instr = program.instructions[address]
        if instr.dest != register:
            continue
        if instr.op is Opcode.TABLE \
                and 0 <= instr.imm < len(program.jump_tables):
            return program.jump_tables[instr.imm].entries, True
        break  # redefined by something other than a TABLE: give up
    return [entry for table in program.jump_tables
            for entry in table.entries], False


_UNCONDITIONAL_ENDERS = frozenset({Opcode.JUMP, Opcode.RET, Opcode.JIND,
                                   Opcode.HALT})


def _slotted_targets(program, block, terminator):
    """Taken-edge successors of a forward-slot-filled branch.

    The architectural target of a slotted branch is advanced past the
    copied prefix (``consumed = target - orig_target``).  When the
    copy ended by absorbing an unconditional transfer, the alternate-PC
    countdown is always cancelled before it expires, so the adjusted
    target is a *phantom*: no execution reaches it from this branch —
    and after trace interleaving it may not even belong to the same
    function.  Taken control then flows where the absorbed transfer
    goes (covered by the fall-through edge into the slot copies), and
    direct mode jumps to the original target, so the edge set is
    {orig_target, fall-through} instead of {target, fall-through}.
    """
    target = terminator.target
    orig = terminator.orig_target
    if isinstance(orig, int):
        consumed = target - orig
        if 0 < consumed <= terminator.n_slots:
            last_copy = program.instructions[block.end - 1 + consumed]
            if last_copy.op in _UNCONDITIONAL_ENDERS:
                target = orig
    targets = [target]
    if block.fall_through is not None and block.fall_through != target:
        targets.append(block.fall_through)
    return targets


class Analysis:
    """Base class for dataflow analyses.

    Subclasses set ``direction`` to ``"forward"`` or ``"backward"``
    and implement the lattice hooks.  ``boundary`` may return ``None``
    for blocks that carry no boundary value (everything except entry /
    exit blocks, typically).
    """

    direction = "forward"

    def initial(self, graph, index):
        """The optimistic starting value (lattice top) for a block."""
        raise NotImplementedError

    def boundary(self, graph, index):
        """Boundary value joined into a block's input, or None."""
        return None

    def join(self, left, right):
        """Combine two lattice values at a control-flow merge."""
        raise NotImplementedError

    def transfer(self, graph, index, value):
        """Push a value through a block; returns the output value."""
        raise NotImplementedError


class DataflowResult:
    """Per-block fixed-point values, keyed by block index or leader."""

    __slots__ = ("graph", "inputs", "outputs")

    def __init__(self, graph, inputs, outputs):
        self.graph = graph
        self.inputs = inputs
        self.outputs = outputs

    def value_in(self, leader):
        return self.inputs[self.graph.index_of(leader)]

    def value_out(self, leader):
        return self.outputs[self.graph.index_of(leader)]


def postorder(graph, roots=None):
    """Post-order block indices from ``roots`` (default: all blocks
    without predecessors, plus any block left unvisited — so every
    block appears exactly once even in unreachable cycles)."""
    count = len(graph)
    if roots is None:
        roots = [index for index in range(count)
                 if not graph.predecessors[index]]
    visited = [False] * count
    order = []

    def visit(start):
        stack = [(start, iter(graph.successors[start]))]
        visited[start] = True
        while stack:
            node, successors = stack[-1]
            advanced = False
            for successor in successors:
                if not visited[successor]:
                    visited[successor] = True
                    stack.append(
                        (successor, iter(graph.successors[successor])))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()

    for root in roots:
        if not visited[root]:
            visit(root)
    for index in range(count):
        if not visited[index]:
            visit(index)
    return order


def solve(graph, analysis):
    """Run ``analysis`` over ``graph`` to a fixed point.

    Returns a :class:`DataflowResult` whose ``inputs``/``outputs`` are
    the values flowing into and out of each block *in the direction of
    the analysis* (for a backward analysis, ``inputs`` holds the
    value at the block's end).
    """
    count = len(graph)
    forward = analysis.direction == "forward"
    order = postorder(graph)
    if forward:
        order = order[::-1]  # reverse post-order converges fastest
        incoming_edges = graph.predecessors
        outgoing_edges = graph.successors
    else:
        incoming_edges = graph.successors
        outgoing_edges = graph.predecessors

    position_in_order = {index: position
                         for position, index in enumerate(order)}
    inputs = [None] * count
    outputs = [None] * count
    for index in range(count):
        inputs[index] = analysis.initial(graph, index)
        outputs[index] = analysis.transfer(graph, index, inputs[index])

    pending = set(range(count))
    worklist = list(order)
    while worklist:
        next_round = []
        for index in worklist:
            if index not in pending:
                continue
            pending.discard(index)
            value = analysis.boundary(graph, index)
            for edge in incoming_edges[index]:
                contribution = outputs[edge]
                value = (contribution if value is None
                         else analysis.join(value, contribution))
            if value is None:
                value = analysis.initial(graph, index)
            inputs[index] = value
            result = analysis.transfer(graph, index, value)
            if result != outputs[index]:
                outputs[index] = result
                for edge in outgoing_edges[index]:
                    if edge not in pending:
                        pending.add(edge)
                        next_round.append(edge)
        worklist = sorted(set(next_round) | pending,
                          key=position_in_order.__getitem__)
    return DataflowResult(graph, inputs, outputs)
