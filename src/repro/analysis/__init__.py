"""Static analysis: dataflow framework, concrete analyses, IR verifier.

The package has three layers (see ``docs/ANALYSIS.md``):

* :mod:`.dataflow` — a generic worklist solver over
  :class:`~repro.cfg.ControlFlowGraph` flow graphs, with forward /
  backward direction and a configurable lattice join;
* concrete analyses on top of it — :mod:`.liveness`,
  :mod:`.reaching` (reaching definitions and use-before-def),
  :mod:`.dominators`, :mod:`.unreachable`;
* :mod:`.verify` — the IR verifier the optimizer and the Forward
  Semantic pipeline run after every transformation.

The opcode-mix helpers that predate the package live in :mod:`.mix`
and are re-exported here, so ``from repro.analysis import
dynamic_opcode_mix`` keeps working.
"""

from repro.analysis.dataflow import (
    Analysis,
    DataflowResult,
    FlowGraph,
    postorder,
    solve,
)
from repro.analysis.dominators import dominator_sets, immediate_dominators
from repro.analysis.effects import (
    PURE_WRITE_OPCODES,
    function_argument_counts,
    function_entry_addresses,
    is_pure_write,
    register_written,
    registers_read,
)
from repro.analysis.liveness import (
    Liveness,
    compute_liveness,
    dead_register_writes,
)
from repro.analysis.mix import (
    dynamic_opcode_mix,
    mix_fractions,
    static_opcode_mix,
    summarize_mix,
)
from repro.analysis.reaching import (
    ReachingDefinitions,
    compute_reaching_definitions,
    use_before_def,
)
from repro.analysis.unreachable import reachable_blocks, unreachable_blocks
from repro.analysis.verify import (
    Diagnostic,
    VerificationError,
    assert_valid,
    verify_program,
)

__all__ = [
    # opcode mixes (the original repro.analysis module)
    "static_opcode_mix",
    "dynamic_opcode_mix",
    "mix_fractions",
    "summarize_mix",
    # dataflow framework
    "Analysis",
    "DataflowResult",
    "FlowGraph",
    "postorder",
    "solve",
    # register effects
    "PURE_WRITE_OPCODES",
    "registers_read",
    "register_written",
    "is_pure_write",
    "function_entry_addresses",
    "function_argument_counts",
    # analyses
    "Liveness",
    "compute_liveness",
    "dead_register_writes",
    "ReachingDefinitions",
    "compute_reaching_definitions",
    "use_before_def",
    "dominator_sets",
    "immediate_dominators",
    "reachable_blocks",
    "unreachable_blocks",
    # verifier
    "Diagnostic",
    "VerificationError",
    "verify_program",
    "assert_valid",
]
