"""Unreachable-code detection at basic-block granularity.

A block is *reachable* when some chain of flow edges, ``CALL``
targets, or jump-table entries connects the program entry to it —
the same closure :mod:`repro.opt.dead_code` uses to delete dead
blocks, expressed over the CFG instead of raw addresses.
"""

from repro.analysis.dataflow import FlowGraph
from repro.cfg import ControlFlowGraph
from repro.isa.opcodes import Opcode


def reachable_blocks(program, cfg=None, graph=None):
    """Set of leader addresses reachable from the program entry."""
    if graph is None:
        graph = FlowGraph(cfg or ControlFlowGraph.from_program(program))
    cfg = graph.cfg
    program = cfg.program
    entry_index = graph.index_of(cfg.block_of(program.entry).start)

    seen = {entry_index}
    stack = [entry_index]
    while stack:
        index = stack.pop()
        block = cfg.blocks[index]
        targets = list(graph.successors[index])
        # CALL is mid-block (frames are private, it is not a flow
        # edge) but it does make the callee's code reachable.
        for address in range(block.start, block.end):
            instr = program.instructions[address]
            if instr.op is Opcode.CALL and isinstance(instr.target, int):
                targets.append(graph.index_of(
                    cfg.block_of(instr.target).start))
        for target in targets:
            if target not in seen:
                seen.add(target)
                stack.append(target)
    return {cfg.blocks[index].start for index in seen}


def unreachable_blocks(program, cfg=None, graph=None):
    """Blocks no execution can reach, in address order."""
    if graph is None:
        graph = FlowGraph(cfg or ControlFlowGraph.from_program(program))
    reachable = reachable_blocks(program, graph=graph)
    return [block for block in graph.cfg.blocks
            if block.start not in reachable]
