"""Static (hardware-free, profile-free) baseline predictors.

These reproduce the related-work numbers the paper surveys: predicting
every branch taken is ~63-77% accurate depending on workload; J. E.
Smith's backward-taken/forward-not-taken rule averaged 76.5% on
FORTRAN code.  Score them with ``simulate(..., conditional_only=True)``
as the cited studies report conditional-branch accuracy.

Direction-only baselines cannot supply a target, so on predicted-taken
branches they supply the *actual* target (equivalent to measuring
direction accuracy only, as the original studies did).
"""

from repro.predictors.base import Prediction, Predictor


class _StaticScheme(Predictor):
    """Common plumbing: stateless, direction-only, no buffer."""

    def update(self, site, branch_class, taken, target):
        pass

    def flush(self):
        pass

    def declared_parameters(self):
        return {"buffered": False, "history_depth": 0,
                "flush_sensitive": False}


class AlwaysTaken(_StaticScheme):
    """Predict every branch taken (direction accuracy only)."""

    name = "always-taken"

    def predict(self, site, branch_class):
        return Prediction(True, target=_ORACLE_TARGET)


class AlwaysNotTaken(_StaticScheme):
    """Predict every branch not-taken — the paper's no-special-treatment
    fetch unit (next-address selection always falls through)."""

    name = "always-not-taken"

    def predict(self, site, branch_class):
        return Prediction(False)


class BackwardTakenForwardNotTaken(_StaticScheme):
    """J. E. Smith's static rule: backward branches (loops) taken,
    forward branches not-taken.  Needs the branch targets, supplied at
    construction from the program text."""

    name = "btfnt"

    def __init__(self, program):
        self._backward = {
            address: instr.target is not None and instr.target <= address
            for address, instr in program.branch_addresses()
            if instr.is_conditional
        }

    def predict(self, site, branch_class):
        if self._backward.get(site, False):
            return Prediction(True, target=_ORACLE_TARGET)
        return Prediction(False)


class _AnyTarget:
    """Sentinel equal to every target: direction-only scoring."""

    def __eq__(self, other):
        return True

    def __ne__(self, other):
        return False

    def __hash__(self):  # pragma: no cover - never stored in sets
        return 0

    def __repr__(self):
        return "<any-target>"


_ORACLE_TARGET = _AnyTarget()
