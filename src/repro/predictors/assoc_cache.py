"""Associative tag store with LRU replacement.

Backs both BTB schemes.  Fully associative by default (the paper's
configuration); bounded set-associativity is available for the
feasibility ablation the paper alludes to ("with 256 entries, it may
not be feasible to implement full associativity").

Recency policy (the determinism contract the conformance oracles
encode): exactly two operations refresh an entry's recency —
:meth:`lookup` (the predict path) and :meth:`insert` of a *new* key.
Everything else (:meth:`peek`, :meth:`replace`, :meth:`contains`,
:meth:`items`, :meth:`lru_order`) leaves the order untouched, so the
differential replay engine can snapshot buffer state mid-replay
without perturbing it, and ties never arise: recency is a total order
(every refresh moves the key to the MRU end of its set's OrderedDict,
and keys never refreshed keep their insertion order).
"""

from collections import OrderedDict


class AssociativeCache:
    """A (set-)associative key -> value store with per-set LRU.

    Args:
        entries: total capacity.
        associativity: ways per set; ``None`` means fully associative.
            Must divide ``entries`` evenly.
    """

    def __init__(self, entries, associativity=None):
        if entries <= 0:
            raise ValueError("entries must be positive")
        if associativity is None:
            associativity = entries
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        if entries % associativity != 0:
            raise ValueError("associativity must divide entry count")
        self.entries = entries
        self.associativity = associativity
        self.n_sets = entries // associativity
        self._sets = [OrderedDict() for _ in range(self.n_sets)]
        self._size = 0
        # Replacement telemetry, maintained on the (rare) eviction path
        # only: an eviction while the cache as a whole still has free
        # entries is a set conflict — aliasing the paper's
        # fully-associative configuration never suffers.
        self.evictions = 0
        self.conflict_evictions = 0

    def _set_for(self, key):
        return self._sets[key % self.n_sets]

    def lookup(self, key):
        """Return the stored value (refreshing LRU) or None on miss.

        Store values must not be None: None is the miss sentinel.
        """
        bucket = self._set_for(key)
        value = bucket.get(key)
        if value is None:
            return None
        bucket.move_to_end(key)
        return value

    def peek(self, key):
        """Return the stored value without refreshing LRU order.

        The update path and state-snapshotting use this: observing the
        buffer must not change the replacement decision.
        """
        return self._set_for(key).get(key)

    def replace(self, key, value):
        """Overwrite ``key``'s value in place, keeping its recency.

        Returns True when the key was present (and replaced); False
        leaves the cache untouched — callers insert explicitly, so an
        allocation is always a deliberate recency event.
        """
        if value is None:
            raise ValueError("None values are reserved for misses")
        bucket = self._set_for(key)
        if key not in bucket:
            return False
        bucket[key] = value
        return True

    def contains(self, key):
        """Membership test without touching LRU order."""
        return key in self._set_for(key)

    def insert(self, key, value):
        """Insert or update, evicting the set's LRU entry when full.

        Returns the evicted (key, value) pair or None.
        """
        if value is None:
            raise ValueError("None values are reserved for misses")
        bucket = self._set_for(key)
        if key in bucket:
            bucket[key] = value
            bucket.move_to_end(key)
            return None
        evicted = None
        if len(bucket) >= self.associativity:
            evicted = bucket.popitem(last=False)
            self.evictions += 1
            if self._size < self.entries:
                self.conflict_evictions += 1
        else:
            self._size += 1
        bucket[key] = value
        return evicted

    def delete(self, key):
        """Remove ``key`` if present; returns True when removed."""
        bucket = self._set_for(key)
        if key in bucket:
            del bucket[key]
            self._size -= 1
            return True
        return False

    def clear(self):
        for bucket in self._sets:
            bucket.clear()
        self._size = 0

    def __len__(self):
        return self._size

    def telemetry_stats(self):
        """Occupancy/replacement facts for the telemetry report."""
        return {
            "entries": self.entries,
            "associativity": self.associativity,
            "occupancy": self._size,
            "evictions": self.evictions,
            "conflict_evictions": self.conflict_evictions,
        }

    def items(self):
        for bucket in self._sets:
            yield from bucket.items()

    def lru_order(self):
        """The canonical replacement order, as a tuple of keys.

        Per set, keys run LRU-first to MRU-last (the eviction victim of
        each set is its first listed key); sets are concatenated in set
        index order.  Two caches that report equal ``lru_order`` make
        identical future replacement decisions — the bit-for-bit
        reproducibility witness the differential engine compares.
        """
        return tuple(key for bucket in self._sets for key in bucket)

    def __repr__(self):
        return "AssociativeCache(%d entries, %d-way, %d used)" % (
            self.entries, self.associativity, len(self))
