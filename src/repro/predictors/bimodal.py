"""Bimodal and tournament predictors (the rest of the hardware
lineage).

* :class:`Bimodal` — a tagless table of 2-bit counters indexed by the
  branch address (J. E. Smith's original proposal, which the paper's
  CBTB wraps in a tagged buffer).  Aliasing between branches that
  share a table slot is the characteristic failure mode.
* :class:`Tournament` — McFarling's combining predictor: a chooser
  table of 2-bit counters picks, per branch, between two component
  predictors (bimodal and gshare by default), learning which one is
  right more often.

Both use a BTB-style target store for taken predictions, like
:class:`~repro.predictors.twolevel.GShare`, so they are scored on the
same terms as the paper's schemes.
"""

from repro.predictors.assoc_cache import AssociativeCache
from repro.predictors.base import Prediction, Predictor
from repro.predictors.twolevel import GShare
from repro.vm.tracing import BranchClass


class Bimodal(Predictor):
    """Tagless PC-indexed 2-bit counter table + BTB target store."""

    name = "bimodal"

    def __init__(self, table_bits=12, entries=256, associativity=None):
        if table_bits <= 0:
            raise ValueError("table_bits must be positive")
        self.table_mask = (1 << table_bits) - 1
        self.counters = [1] * (1 << table_bits)
        self._targets = AssociativeCache(entries, associativity)

    def predict(self, site, branch_class):
        if branch_class != BranchClass.CONDITIONAL:
            target = self._targets.lookup(site)
            if target is None:
                return Prediction(False, hit=False)
            return Prediction(True, target=target, hit=True)
        if self.counters[site & self.table_mask] >= 2:
            target = self._targets.lookup(site)
            if target is None:
                return Prediction(False, hit=False)
            return Prediction(True, target=target, hit=True)
        return Prediction(False, hit=self._targets.contains(site))

    def update(self, site, branch_class, taken, target):
        if branch_class == BranchClass.CONDITIONAL:
            index = site & self.table_mask
            counter = self.counters[index]
            if taken and counter < 3:
                self.counters[index] = counter + 1
            elif not taken and counter > 0:
                self.counters[index] = counter - 1
        if taken:
            self._targets.insert(site, target)

    def reset(self):
        self.counters = [1] * len(self.counters)
        self._targets.clear()

    def declared_parameters(self):
        return {
            "buffered": True,
            "entries": self._targets.entries,
            "associativity": self._targets.associativity,
            "n_sets": self._targets.n_sets,
            "counter_bits": 2,
            "threshold": 2,
            "history_depth": 0,
            "replacement": "lru",
            "flush_sensitive": True,
        }


class Tournament(Predictor):
    """A chooser selects between two direction predictors per branch.

    The chooser counter moves toward the component that was correct
    when they disagree (0-1 favour the first component, 2-3 the
    second).
    """

    name = "tournament"

    def __init__(self, first=None, second=None, chooser_bits=12):
        self.first = first if first is not None else Bimodal()
        self.second = second if second is not None else GShare()
        if chooser_bits <= 0:
            raise ValueError("chooser_bits must be positive")
        self.chooser_mask = (1 << chooser_bits) - 1
        self.chooser = [1] * (1 << chooser_bits)

    def predict(self, site, branch_class):
        if branch_class != BranchClass.CONDITIONAL:
            # Target-only behaviour: defer to the first component's BTB.
            return self.first.predict(site, branch_class)
        if self.chooser[site & self.chooser_mask] >= 2:
            return self.second.predict(site, branch_class)
        return self.first.predict(site, branch_class)

    def update(self, site, branch_class, taken, target):
        if branch_class == BranchClass.CONDITIONAL:
            first_right = (self.first.predict(site, branch_class).taken
                           == bool(taken))
            second_right = (self.second.predict(site, branch_class).taken
                            == bool(taken))
            if first_right != second_right:
                index = site & self.chooser_mask
                if second_right and self.chooser[index] < 3:
                    self.chooser[index] += 1
                elif first_right and self.chooser[index] > 0:
                    self.chooser[index] -= 1
        self.first.update(site, branch_class, taken, target)
        self.second.update(site, branch_class, taken, target)

    def reset(self):
        self.first.reset()
        self.second.reset()
        self.chooser = [1] * len(self.chooser)

    def declared_parameters(self):
        # Geometry/history are whatever the chooser routes to, so the
        # combined predictor only stands behind the structural facts.
        declared = {"buffered": True, "flush_sensitive": True}
        if isinstance(self.second, GShare):
            declared["history_depth"] = self.second.history_bits
        return declared
