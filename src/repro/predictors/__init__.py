"""Branch prediction schemes.

Hardware schemes (Section 2.2 of the paper):

* :class:`SimpleBTB` — the SBTB: a fully-associative LRU buffer of
  *taken* branches; a hit predicts taken, a hit that turns out
  not-taken deletes the entry.
* :class:`CounterBTB` — the CBTB: a buffer of all executed branches,
  each with an n-bit saturating up/down counter (2 bits, threshold 2 in
  the paper).

Software scheme:

* :class:`ForwardSemanticPredictor` — per-site likely bits assigned by
  the profiling compiler (the layout pass).

Static baselines from the related work the paper surveys:

* :class:`AlwaysTaken`, :class:`AlwaysNotTaken`,
  :class:`BackwardTakenForwardNotTaken` (J. E. Smith's rule).

All predictors share the correctness accounting of
:func:`repro.predictors.base.simulate`: a prediction is correct when the
predicted direction matches and, for predicted-taken branches, the
supplied target matches the actual target.  Returns are handled by a
return-address mechanism common to all schemes (see DESIGN.md).
"""

from repro.predictors.base import (
    Prediction,
    PredictionStats,
    Predictor,
    simulate,
    site_report,
    site_statistics,
)
from repro.predictors.assoc_cache import AssociativeCache
from repro.predictors.sbtb import SimpleBTB
from repro.predictors.cbtb import CounterBTB
from repro.predictors.static_schemes import (
    AlwaysNotTaken,
    AlwaysTaken,
    BackwardTakenForwardNotTaken,
)
from repro.predictors.fs import ForwardSemanticPredictor
from repro.predictors.twolevel import GShare
from repro.predictors.bimodal import Bimodal, Tournament

__all__ = [
    "GShare",
    "Bimodal",
    "Tournament",
    "Prediction",
    "PredictionStats",
    "Predictor",
    "simulate",
    "site_report",
    "site_statistics",
    "AssociativeCache",
    "SimpleBTB",
    "CounterBTB",
    "AlwaysNotTaken",
    "AlwaysTaken",
    "BackwardTakenForwardNotTaken",
    "ForwardSemanticPredictor",
]
