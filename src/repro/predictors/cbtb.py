"""The Counter-based Branch Target Buffer (CBTB) of Section 2.2.

Remembers as many executed branches as possible (taken or not), each
entry holding an n-bit saturating up/down counter C and the branch
target.  A new entry's counter starts at the threshold T when the
branch was taken and T-1 otherwise.  The branch is predicted taken when
C >= T.  The paper's configuration: 256 entries, fully associative,
LRU, 2-bit counters, T = 2.
"""

from repro.predictors.assoc_cache import AssociativeCache
from repro.predictors.base import Prediction, Predictor


class _Entry:
    __slots__ = ("counter", "target")

    def __init__(self, counter, target):
        self.counter = counter
        self.target = target


class CounterBTB(Predictor):
    """CBTB with parametric counter width and threshold."""

    name = "CBTB"

    def __init__(self, entries=256, associativity=None, counter_bits=2,
                 threshold=2):
        if counter_bits < 1:
            raise ValueError("counter_bits must be at least 1")
        self.counter_max = (1 << counter_bits) - 1
        if not 1 <= threshold <= self.counter_max:
            raise ValueError("threshold must lie within the counter range")
        self.threshold = threshold
        self.counter_bits = counter_bits
        self._cache = AssociativeCache(entries, associativity)
        # Counter-transition telemetry is per-record work, so it is
        # captured once at construction time: predictors are built per
        # simulation run, and the disabled path stays a single
        # attribute test in update().
        from repro.telemetry.core import TELEMETRY
        self._track_transitions = TELEMETRY.enabled
        self.transitions = {"up": 0, "down": 0,
                            "saturated_high": 0, "saturated_low": 0}

    def predict(self, site, branch_class):
        entry = self._cache.lookup(site)
        if entry is None:
            return Prediction(False, hit=False)
        if entry.counter >= self.threshold:
            return Prediction(True, target=entry.target, hit=True)
        return Prediction(False, hit=True)

    def update(self, site, branch_class, taken, target):
        # peek, not lookup: the predict path already refreshed this
        # entry's recency; the update mutates counter/target in place
        # without a second (order-perturbing) touch.
        entry = self._cache.peek(site)
        if entry is None:
            counter = self.threshold if taken else self.threshold - 1
            self._cache.insert(site, _Entry(counter, target))
            return
        if taken:
            if entry.counter < self.counter_max:
                entry.counter += 1
                if self._track_transitions:
                    self.transitions["up"] += 1
            elif self._track_transitions:
                self.transitions["saturated_high"] += 1
            entry.target = target
        else:
            if entry.counter > 0:
                entry.counter -= 1
                if self._track_transitions:
                    self.transitions["down"] += 1
            elif self._track_transitions:
                self.transitions["saturated_low"] += 1

    def reset(self):
        self._cache.clear()

    @property
    def occupancy(self):
        return len(self._cache)

    def counter_distribution(self):
        """Histogram of resident counter values (state of the buffer)."""
        distribution = dict.fromkeys(range(self.counter_max + 1), 0)
        for _, entry in self._cache.items():
            distribution[entry.counter] += 1
        return distribution

    def telemetry_stats(self):
        stats = self._cache.telemetry_stats()
        stats["scheme"] = self.name
        stats["counter_distribution"] = {
            str(value): count
            for value, count in self.counter_distribution().items()}
        if self._track_transitions:
            stats["counter_transitions"] = dict(self.transitions)
        return stats

    def declared_parameters(self):
        return {
            "buffered": True,
            "entries": self._cache.entries,
            "associativity": self._cache.associativity,
            "n_sets": self._cache.n_sets,
            "counter_bits": self.counter_bits,
            "threshold": self.threshold,
            "history_depth": 0,
            "replacement": "lru",
            "flush_sensitive": True,
        }

    def __repr__(self):
        return "CounterBTB(%d entries, %d-bit, T=%d, %d used)" % (
            self._cache.entries, self.counter_bits, self.threshold,
            len(self._cache))
