"""Predictor interface, statistics, and the trace-driven simulator."""

import time

from repro.vm.tracing import BranchClass


class Prediction:
    """One prediction: a direction and (when taken) a target.

    ``hit`` records whether a buffered scheme found the branch in its
    buffer; non-buffered schemes report ``hit=None`` and are excluded
    from miss-ratio accounting.
    """

    __slots__ = ("taken", "target", "hit")

    def __init__(self, taken, target=None, hit=None):
        self.taken = taken
        self.target = target
        self.hit = hit

    def __repr__(self):
        return "Prediction(taken=%s, target=%r, hit=%r)" % (
            self.taken, self.target, self.hit)


class PredictionStats:
    """Accumulated accuracy/miss statistics of a simulation run."""

    def __init__(self):
        self.total = 0
        self.correct = 0
        self.buffer_accesses = 0
        self.buffer_misses = 0
        self.by_class_total = {}
        self.by_class_correct = {}

    def record(self, branch_class, was_correct, hit):
        self.total += 1
        self.by_class_total[branch_class] = (
            self.by_class_total.get(branch_class, 0) + 1)
        if was_correct:
            self.correct += 1
            self.by_class_correct[branch_class] = (
                self.by_class_correct.get(branch_class, 0) + 1)
        if hit is not None:
            self.buffer_accesses += 1
            if not hit:
                self.buffer_misses += 1

    @property
    def accuracy(self):
        """A — the probability a prediction is correct (Table 3)."""
        if self.total == 0:
            return 0.0
        return self.correct / self.total

    @property
    def miss_ratio(self):
        """rho — the buffer miss ratio (Table 3)."""
        if self.buffer_accesses == 0:
            return 0.0
        return self.buffer_misses / self.buffer_accesses

    def class_accuracy(self, branch_class):
        total = self.by_class_total.get(branch_class, 0)
        if total == 0:
            return None
        return self.by_class_correct.get(branch_class, 0) / total

    @property
    def conditional_accuracy(self):
        return self.class_accuracy(BranchClass.CONDITIONAL)

    def merge(self, other):
        self.total += other.total
        self.correct += other.correct
        self.buffer_accesses += other.buffer_accesses
        self.buffer_misses += other.buffer_misses
        for key, value in other.by_class_total.items():
            self.by_class_total[key] = self.by_class_total.get(key, 0) + value
        for key, value in other.by_class_correct.items():
            self.by_class_correct[key] = (
                self.by_class_correct.get(key, 0) + value)
        return self

    def as_dict(self):
        """Plain-data form (JSON friendly, stable key order)."""
        return {
            "total": self.total,
            "correct": self.correct,
            "buffer_accesses": self.buffer_accesses,
            "buffer_misses": self.buffer_misses,
            "by_class_total": {
                str(key): self.by_class_total[key]
                for key in sorted(self.by_class_total)},
            "by_class_correct": {
                str(key): self.by_class_correct[key]
                for key in sorted(self.by_class_correct)},
        }

    def __eq__(self, other):
        """Field-for-field equality — the engines' bit-identity bar."""
        if not isinstance(other, PredictionStats):
            return NotImplemented
        return (self.total == other.total
                and self.correct == other.correct
                and self.buffer_accesses == other.buffer_accesses
                and self.buffer_misses == other.buffer_misses
                and self.by_class_total == other.by_class_total
                and self.by_class_correct == other.by_class_correct)

    __hash__ = None

    def __repr__(self):
        return "PredictionStats(A=%.4f, rho=%.4f, n=%d)" % (
            self.accuracy, self.miss_ratio, self.total)


class Predictor:
    """Base predictor protocol.

    Subclasses implement :meth:`predict` and :meth:`update`.  The
    simulator calls ``predict`` with the record's site/class, scores the
    prediction against the actual outcome, then calls ``update`` with
    the truth.
    """

    name = "predictor"

    def predict(self, site, branch_class):
        """Return a :class:`Prediction` for the branch at ``site``."""
        raise NotImplementedError

    def update(self, site, branch_class, taken, target):
        """Observe the actual outcome of the branch at ``site``."""
        raise NotImplementedError

    def reset(self):
        """Clear all state (used by the context-switch ablation)."""

    def flush(self):
        """Context switch: buffered schemes lose their contents.

        Default is :meth:`reset`; software schemes override with a
        no-op because their state lives in the program text.
        """
        self.reset()

    def telemetry_stats(self):
        """Scheme-internal facts for the telemetry event stream.

        Buffered schemes report occupancy/eviction/aliasing counts;
        the base implementation only names the scheme.
        """
        return {"scheme": self.name}

    def declared_parameters(self):
        """The configuration this predictor *claims* to implement.

        The characterization harness (:mod:`repro.characterize`)
        recovers the same parameters purely from probe traces through
        ``simulate()`` and diffs them against this declaration: a
        mismatch is, by construction, either an inference bug or a
        simulator bug.  Schemes only declare the keys they have a
        claim about; the base implementation declares nothing.
        """
        return {}


def is_correct(prediction, taken, target):
    """Score a prediction against the actual branch outcome.

    Correct means: direction matches, and if the actual outcome is
    taken, the predicted target matches the actual target (a taken
    prediction with the wrong target fetched the wrong path).
    """
    if prediction.taken != bool(taken):
        return False
    if taken:
        return prediction.target == target
    return True


def site_statistics(predictor, trace, ras_returns=True):
    """Per-static-site accuracy counts for one scheme over a trace.

    Simulates ``predictor`` over ``trace`` and returns a dict mapping
    each branch site to ``[executions, correct_predictions]``.  With
    ``ras_returns`` (the default) return records are skipped, matching
    the shared return-address mechanism of :func:`simulate`.
    """
    counts = {}
    for site, branch_class, taken, target, _ in trace.records():
        if ras_returns and branch_class == BranchClass.RETURN:
            continue
        prediction = predictor.predict(site, branch_class)
        entry = counts.get(site)
        if entry is None:
            entry = counts[site] = [0, 0]
        entry[0] += 1
        if is_correct(prediction, taken, target):
            entry[1] += 1
        predictor.update(site, branch_class, taken, target)
    return counts


def site_report(predictor, trace, worst=10):
    """Per-site accuracy analysis: where does a scheme lose?

    Returns a list of ``(site, executions, accuracy)`` for the
    ``worst``-predicted sites (most mispredictions first).  Returns are
    skipped (covered by the shared return mechanism).
    """
    rows = []
    for site, (execs, right) in site_statistics(predictor, trace).items():
        rows.append((site, execs, right / execs, execs - right))
    rows.sort(key=lambda row: (-row[3], row[0]))
    return [(site, execs, accuracy)
            for site, execs, accuracy, _ in rows[:worst]]


def simulate(predictor, trace, flush_interval=None,
             conditional_only=False, ras_returns=True, engine=None):
    """Run ``predictor`` over a branch trace; returns PredictionStats.

    Args:
        predictor: the scheme under test.
        trace: :class:`~repro.vm.tracing.BranchTrace`.
        flush_interval: if set, call ``predictor.flush()`` every this
            many dynamic instructions — the paper's context-switch
            discussion made concrete.
        conditional_only: restrict scoring to conditional branches
            (used for the static-baseline comparisons, which the cited
            studies report over conditional branches).
        ras_returns: model the return-address mechanism shared by all
            schemes (DESIGN.md §6.1): returns are always correct and
            never access the buffer.  With False, return records flow
            through the predictor like any branch (BTBs predict the
            *last* return target; the FS cannot predict them at all) —
            the ablation quantifying the RAS substitution.
        engine: ``"scalar"``, ``"vector"``, or ``"auto"``; None uses
            the process default (normally auto — see
            :mod:`repro.kernels.engine`).  The engines are
            bit-identical; only throughput and side effects differ
            (the vector engine never mutates the predictor object).

    Returns:
        :class:`PredictionStats`.

    Returns still count toward ``total`` either way (the paper's cost
    model charges every branch) unless ``conditional_only`` is set.
    """
    from repro.kernels import resolve_engine, simulate_vector

    resolved = resolve_engine(engine, predictor, trace, flush_interval)
    started = time.perf_counter()
    if resolved == "vector":
        stats = simulate_vector(predictor, trace,
                                conditional_only=conditional_only,
                                ras_returns=ras_returns)
        _report_simulation(predictor, stats, resolved, started)
        return stats

    stats = PredictionStats()
    instructions_seen = 0
    next_flush = flush_interval

    for site, branch_class, taken, target, gap in trace.records():
        if flush_interval is not None:
            instructions_seen += gap + 1
            if instructions_seen >= next_flush:
                predictor.flush()
                next_flush += flush_interval

        if branch_class == BranchClass.RETURN and ras_returns:
            if not conditional_only:
                stats.record(branch_class, True, None)
            continue
        if conditional_only and branch_class != BranchClass.CONDITIONAL:
            continue

        prediction = predictor.predict(site, branch_class)
        correct = is_correct(prediction, taken, target)
        stats.record(branch_class, correct, prediction.hit)
        predictor.update(site, branch_class, taken, target)

    _report_simulation(predictor, stats, resolved, started)
    return stats


def _report_simulation(predictor, stats, engine, started):
    """Telemetry for one simulation: per-engine record counters and a
    ``predictor.simulate`` event carrying the resolved engine and its
    throughput (the observability half of the speedup story; the
    perf-regression gate in benchmarks/ does the enforcement)."""
    from repro.telemetry.core import TELEMETRY
    if not TELEMETRY.enabled:
        return
    elapsed = time.perf_counter() - started
    TELEMETRY.count("predictor.records", stats.total)
    TELEMETRY.count("predictor.records.%s" % engine, stats.total)
    TELEMETRY.event(
        "predictor.simulate", records=stats.total,
        correct=stats.correct, accuracy=stats.accuracy,
        buffer_misses=stats.buffer_misses,
        miss_ratio=stats.miss_ratio,
        engine=engine,
        records_per_second=(stats.total / elapsed if elapsed > 0
                            else None),
        **predictor.telemetry_stats())
