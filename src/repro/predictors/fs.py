"""The Forward Semantic as a predictor.

The scheme's prediction state is the likely-taken bit the profiling
compiler wrote into each conditional branch, plus the statically known
targets of direct jumps and calls.  There is no buffer: the prediction
is part of the program text, which is also why a context switch cannot
degrade it (``flush`` is a no-op — the paper's key robustness claim).

Unknown-target indirect jumps are predicted not-taken (the fetch unit
can only fall through), which is always wrong — they "pose a problem
for all three schemes".
"""

from repro.predictors.base import Prediction, Predictor
from repro.vm.tracing import BranchClass


class ForwardSemanticPredictor(Predictor):
    """Per-site likely bits from the laid-out program."""

    name = "FS"

    def __init__(self, program=None, likely_sites=None):
        """Build from a laid-out program or an explicit site map.

        Args:
            program: program whose conditional branches carry likely
                bits (the layout pass output); branch targets are read
                from the text for predicted-taken branches.
            likely_sites: alternatively, a dict of conditional-branch
                address -> bool.
        """
        if (program is None) == (likely_sites is None):
            raise ValueError("pass exactly one of program / likely_sites")
        self._likely = {}
        self._targets = {}
        if program is not None:
            for address, instr in program.branch_addresses():
                if instr.is_conditional:
                    self._likely[address] = bool(instr.likely)
                    # Forward slots make the original target path follow
                    # the branch; architecturally the fetch unit follows
                    # the (slot-adjusted) target encoded in the branch.
                    # For prediction scoring the original target is the
                    # taken path.
                    target = instr.orig_target
                    self._targets[address] = (
                        target if target is not None else instr.target)
                elif instr.target_known:
                    self._targets[address] = instr.target
        else:
            self._likely = dict(likely_sites)

    def predict(self, site, branch_class):
        if branch_class == BranchClass.CONDITIONAL:
            if self._likely.get(site, False):
                # Without program text (likely_sites construction) the
                # statically-encoded target is unavailable to us but is
                # by definition the branch's own target: score
                # direction-only via the sentinel.
                target = self._targets.get(site, _STATIC_TARGET)
                return Prediction(True, target=target)
            return Prediction(False)
        if branch_class == BranchClass.UNCONDITIONAL_KNOWN:
            # The compiler knows the target of direct jumps and calls.
            target = self._targets.get(site)
            if target is not None:
                return Prediction(True, target=target)
            # Program text unavailable (likely_sites construction):
            # still credit the statically known target.
            return Prediction(True, target=_STATIC_TARGET)
        # Unknown-target indirect jump: nothing to predict.
        return Prediction(False)

    def update(self, site, branch_class, taken, target):
        pass

    def flush(self):
        """Context switches do not affect compiler-encoded predictions."""

    def reset(self):
        pass

    def declared_parameters(self):
        return {"buffered": False, "history_depth": 0,
                "flush_sensitive": False}

    def telemetry_stats(self):
        likely = sum(1 for bit in self._likely.values() if bit)
        return {
            "scheme": self.name,
            "conditional_sites": len(self._likely),
            "likely_taken_sites": likely,
            "static_targets": len(self._targets),
        }


class _AnyTarget:
    def __eq__(self, other):
        return True

    def __ne__(self, other):
        return False

    def __hash__(self):  # pragma: no cover
        return 0


_STATIC_TARGET = _AnyTarget()
