"""The Simple Branch Target Buffer (SBTB) of Section 2.2.

Remembers as many taken branches as possible.  Any branch found in the
buffer is predicted taken (with the stored target); any branch absent is
predicted not-taken.  A buffered branch that executes not-taken has its
entry deleted.  256 entries, fully associative, LRU — the paper's
configuration — by default.
"""

from repro.predictors.assoc_cache import AssociativeCache
from repro.predictors.base import Prediction, Predictor


class SimpleBTB(Predictor):
    """SBTB: cache of taken branches, keyed by branch address."""

    name = "SBTB"

    def __init__(self, entries=256, associativity=None):
        self._cache = AssociativeCache(entries, associativity)

    def predict(self, site, branch_class):
        target = self._cache.lookup(site)
        if target is None:
            return Prediction(False, hit=False)
        return Prediction(True, target=target, hit=True)

    def update(self, site, branch_class, taken, target):
        if taken:
            # Only the predict-path lookup and a fresh allocation count
            # as recency events (the assoc_cache contract): a resident
            # entry keeps its order, its target refreshed in place.
            if not self._cache.replace(site, target):
                self._cache.insert(site, target)
        else:
            # Predicted taken (if it was in the buffer) but fell
            # through: the paper deletes the entry.
            self._cache.delete(site)

    def reset(self):
        self._cache.clear()

    @property
    def occupancy(self):
        return len(self._cache)

    def telemetry_stats(self):
        stats = self._cache.telemetry_stats()
        stats["scheme"] = self.name
        return stats

    def declared_parameters(self):
        return {
            "buffered": True,
            "entries": self._cache.entries,
            "associativity": self._cache.associativity,
            "n_sets": self._cache.n_sets,
            "history_depth": 0,
            "replacement": "lru",
            "flush_sensitive": True,
        }

    def __repr__(self):
        return "SimpleBTB(%d entries, %d used)" % (
            self._cache.entries, len(self._cache))
