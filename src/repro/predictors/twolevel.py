"""A two-level adaptive (gshare-style) predictor — a post-1989
extension.

The paper closes with "new solutions to the branch problem ... must be
developed"; the next decade's answer was two-level adaptive prediction
(Yeh & Patt 1991, McFarling's gshare 1993).  This module implements
gshare on the same trace-driven interface so the reproduction can show
where the hardware state of the art went after the paper:

* a global history register of the last ``history_bits`` conditional
  outcomes;
* a pattern history table of 2-bit saturating counters indexed by
  (branch address XOR global history);
* the same 256-entry BTB-style target store as the paper's schemes
  (a direction predictor alone cannot supply the target path).
"""

from repro.predictors.assoc_cache import AssociativeCache
from repro.predictors.base import Prediction, Predictor
from repro.vm.tracing import BranchClass


class GShare(Predictor):
    """gshare direction prediction + BTB target store."""

    name = "gshare"

    def __init__(self, history_bits=8, table_bits=12, entries=256,
                 associativity=None):
        if history_bits < 0 or table_bits <= 0:
            raise ValueError("history_bits/table_bits out of range")
        if history_bits > table_bits:
            raise ValueError("history cannot exceed the table index width")
        self.history_bits = history_bits
        self.table_mask = (1 << table_bits) - 1
        self.history_mask = (1 << history_bits) - 1 if history_bits else 0
        self.history = 0
        # 2-bit counters, initialised weakly not-taken (1).
        self.counters = [1] * (1 << table_bits)
        self._targets = AssociativeCache(entries, associativity)

    def _index(self, site):
        return (site ^ self.history) & self.table_mask

    def predict(self, site, branch_class):
        if branch_class != BranchClass.CONDITIONAL:
            # Unconditional branches: BTB behaviour (hit -> taken with
            # the stored target).
            target = self._targets.lookup(site)
            if target is None:
                return Prediction(False, hit=False)
            return Prediction(True, target=target, hit=True)
        taken = self.counters[self._index(site)] >= 2
        if not taken:
            return Prediction(False, hit=self._targets.contains(site))
        target = self._targets.lookup(site)
        if target is None:
            # Predicted taken but no target available: the fetch unit
            # can only fall through.
            return Prediction(False, hit=False)
        return Prediction(True, target=target, hit=True)

    def update(self, site, branch_class, taken, target):
        if branch_class == BranchClass.CONDITIONAL:
            index = self._index(site)
            counter = self.counters[index]
            if taken:
                if counter < 3:
                    self.counters[index] = counter + 1
            else:
                if counter > 0:
                    self.counters[index] = counter - 1
            if self.history_bits:
                self.history = ((self.history << 1) | (1 if taken else 0)) \
                    & self.history_mask
        if taken:
            self._targets.insert(site, target)

    def reset(self):
        self.history = 0
        self.counters = [1] * len(self.counters)
        self._targets.clear()

    def declared_parameters(self):
        return {
            "buffered": True,
            "entries": self._targets.entries,
            "associativity": self._targets.associativity,
            "n_sets": self._targets.n_sets,
            "history_depth": self.history_bits,
            "replacement": "lru",
            "flush_sensitive": True,
        }

    def __repr__(self):
        return "GShare(%d-bit history, %d counters)" % (
            self.history_bits, len(self.counters))
