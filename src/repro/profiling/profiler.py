"""Block and branch profiles accumulated over one or more runs."""

from repro.cfg import ControlFlowGraph
from repro.vm.machine import Machine
from repro.vm.tracing import BranchClass


class Profile:
    """Execution profile of a program over an input suite.

    Attributes:
        block_counts: leader address -> number of times the block ran.
        branch_execs: conditional branch site -> executions.
        branch_taken: conditional branch site -> taken count.
        edge_counts: (site, target) -> taken-transfer count, for
            conditional (taken direction), JUMP, CALL, and JIND records.
        runs: number of profiling runs accumulated.
        total_instructions: dynamic instructions over all runs.
    """

    def __init__(self):
        self.block_counts = {}
        self.branch_execs = {}
        self.branch_taken = {}
        self.edge_counts = {}
        self.runs = 0
        self.total_instructions = 0

    # -- accumulation ------------------------------------------------------

    def add_run(self, probe_counts, trace):
        """Fold one profiling run (probe counts + branch trace) in."""
        for leader, count in probe_counts.items():
            self.block_counts[leader] = self.block_counts.get(leader, 0) + count
        self.add_trace(trace)
        self.runs += 1

    def add_trace(self, trace):
        """Fold a branch trace's per-site statistics in."""
        execs = self.branch_execs
        taken_counts = self.branch_taken
        edges = self.edge_counts
        for site, branch_class, taken, target, _ in trace.records():
            if branch_class == BranchClass.CONDITIONAL:
                execs[site] = execs.get(site, 0) + 1
                if taken:
                    taken_counts[site] = taken_counts.get(site, 0) + 1
                    edges[(site, target)] = edges.get((site, target), 0) + 1
            elif branch_class != BranchClass.RETURN:
                edges[(site, target)] = edges.get((site, target), 0) + 1
        self.total_instructions += trace.total_instructions

    def merge(self, other):
        """Fold another profile in (e.g. from a different input)."""
        for leader, count in other.block_counts.items():
            self.block_counts[leader] = self.block_counts.get(leader, 0) + count
        for site, count in other.branch_execs.items():
            self.branch_execs[site] = self.branch_execs.get(site, 0) + count
        for site, count in other.branch_taken.items():
            self.branch_taken[site] = self.branch_taken.get(site, 0) + count
        for edge, count in other.edge_counts.items():
            self.edge_counts[edge] = self.edge_counts.get(edge, 0) + count
        self.runs += other.runs
        self.total_instructions += other.total_instructions
        return self

    # -- queries -------------------------------------------------------------

    def block_weight(self, leader):
        """Execution count of the block starting at ``leader``."""
        return self.block_counts.get(leader, 0)

    def taken_fraction(self, site):
        """Fraction of executions of conditional branch ``site`` taken.

        Returns None when the branch never executed in the profile.
        """
        execs = self.branch_execs.get(site, 0)
        if execs == 0:
            return None
        return self.branch_taken.get(site, 0) / execs

    def edge_count(self, source_site, target):
        return self.edge_counts.get((source_site, target), 0)

    # -- serialisation ----------------------------------------------------------

    def to_dict(self):
        """A JSON-serialisable representation (for on-disk caching)."""
        return {
            "block_counts": sorted(self.block_counts.items()),
            "branch_execs": sorted(self.branch_execs.items()),
            "branch_taken": sorted(self.branch_taken.items()),
            "edge_counts": sorted(
                ([site, target], count)
                for (site, target), count in self.edge_counts.items()
            ),
            "runs": self.runs,
            "total_instructions": self.total_instructions,
        }

    @classmethod
    def from_dict(cls, data):
        profile = cls()
        profile.block_counts = {key: value for key, value in data["block_counts"]}
        profile.branch_execs = {key: value for key, value in data["branch_execs"]}
        profile.branch_taken = {key: value for key, value in data["branch_taken"]}
        profile.edge_counts = {
            (edge[0], edge[1]): count for edge, count in data["edge_counts"]
        }
        profile.runs = data["runs"]
        profile.total_instructions = data["total_instructions"]
        return profile

    def __repr__(self):
        return "Profile(%d runs, %d blocks, %d cond sites, %d instructions)" % (
            self.runs, len(self.block_counts), len(self.branch_execs),
            self.total_instructions)


def profile_program(program, input_suite, cfg=None,
                    max_instructions=200_000_000):
    """Profile ``program`` over ``input_suite``.

    Args:
        program: resolved program.
        input_suite: list of runs, each a sequence of input streams.
        cfg: optional pre-built :class:`ControlFlowGraph`.
        max_instructions: per-run instruction budget.

    Returns:
        (profile, outputs) — the accumulated :class:`Profile` and the
        list of per-run output byte strings (useful for checking the
        transformed program later).
    """
    if cfg is None:
        cfg = ControlFlowGraph.from_program(program)
    leaders = cfg.leaders
    profile = Profile()
    outputs = []
    for streams in input_suite:
        machine = Machine(program, inputs=streams, trace=True,
                          probe_addresses=leaders,
                          max_instructions=max_instructions)
        result = machine.run()
        profile.add_run(result.probe_counts, result.trace)
        outputs.append(result.output)
    return profile, outputs


def profile_trace(trace):
    """Build a branch-only profile from an existing trace.

    Block counts are absent; usable by consumers that only need branch
    direction statistics (e.g. likely-bit assignment checks).
    """
    profile = Profile()
    profile.add_trace(trace)
    profile.runs = 1
    return profile
