"""Profiling infrastructure: the paper's probe-based profiler.

The paper's compiler inserts probes at the entry of every basic block,
runs the program over a representative input suite, and feeds the
accumulated counts back into recompilation.  This package does the same
thing on the VM: block-entry counts come from machine probes placed at
the CFG leaders, and per-branch direction/target statistics come from
the branch trace of the profiling runs.
"""

from repro.profiling.profiler import Profile, profile_program, profile_trace

__all__ = ["Profile", "profile_program", "profile_trace"]
