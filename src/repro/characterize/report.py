"""Characterization reports: recovered vs declared, with evidence."""


class ProbeEvidence:
    """One probe measurement and the conclusion drawn from it."""

    __slots__ = ("family", "name", "params", "observation", "conclusion")

    def __init__(self, family, name, params, observation, conclusion):
        self.family = family
        self.name = name
        self.params = params
        self.observation = observation
        self.conclusion = conclusion

    def to_dict(self):
        return {"family": self.family, "name": self.name,
                "params": self.params, "observation": self.observation,
                "conclusion": self.conclusion}

    def __repr__(self):
        return "ProbeEvidence(%s/%s: %s)" % (
            self.family, self.name, self.conclusion)


class CharacterizationReport:
    """Recovered configuration of one predictor, diffed vs declared.

    The diff runs over the intersection of declared keys and
    *conclusive* recovered keys (a recovered value of ``None`` means
    the probe could not decide — e.g. counter width under global
    history — and is never counted as a mismatch).  Declared keys the
    probes do not measure are ignored; recovered keys nobody declared
    are informational.
    """

    def __init__(self, label, recovered, declared, evidence,
                 simulations=0, records=0, elapsed=0.0):
        self.label = label
        self.recovered = recovered
        self.declared = declared
        self.evidence = evidence
        self.simulations = simulations
        self.records = records
        self.elapsed = elapsed

    @property
    def mismatches(self):
        """``[(key, declared_value, recovered_value), ...]``."""
        rows = []
        for key in sorted(self.declared):
            if key not in self.recovered:
                continue
            got = self.recovered[key]
            if got is None:
                continue
            want = self.declared[key]
            if got != want:
                rows.append((key, want, got))
        return rows

    @property
    def ok(self):
        return not self.mismatches

    def to_dict(self):
        return {
            "label": self.label,
            "recovered": dict(self.recovered),
            "declared": dict(self.declared),
            "mismatches": [
                {"key": key, "declared": want, "recovered": got}
                for key, want, got in self.mismatches],
            "ok": self.ok,
            "simulations": self.simulations,
            "records": self.records,
            "evidence": [row.to_dict() for row in self.evidence],
        }

    def summary(self):
        """One-line recovered-parameter digest."""
        rec = self.recovered
        if not rec.get("buffered"):
            bits = ["non-buffered"]
        else:
            entries = rec.get("entries")
            ways = rec.get("associativity")
            if entries is None:
                geometry = "entries>=search-ceiling"
            elif ways is None:
                geometry = "%d entries" % entries
            elif ways == entries:
                geometry = "%d entries, fully assoc" % entries
            else:
                geometry = "%d entries, %d-way" % (entries, ways)
            bits = [geometry]
            if rec.get("counter_bits") is not None:
                bits.append("%d-bit ctr (t=%d)" % (
                    rec["counter_bits"], rec["threshold"]))
            if rec.get("replacement"):
                bits.append(rec["replacement"])
        bits.append("hist %s" % rec.get("history_depth"))
        bits.append("flush %s"
                    % ("hurts" if rec.get("flush_sensitive") else "free"))
        return ", ".join(bits)

    def render(self):
        lines = ["%s: %s" % (self.label, self.summary())]
        for key in sorted(self.recovered):
            value = self.recovered[key]
            marker = ""
            if key in self.declared and value is not None:
                marker = (" (declared %r)" % (self.declared[key],)
                          if self.declared[key] != value
                          else " [= declared]")
            lines.append("  %-16s %r%s" % (key, value, marker))
        if self.mismatches:
            lines.append("  MISMATCH: " + "; ".join(
                "%s declared %r but probes recovered %r"
                % (key, want, got)
                for key, want, got in self.mismatches))
        else:
            lines.append("  verdict: recovered parameters consistent "
                         "with declaration")
        lines.append("  probes: %d simulations, %d records, %.2fs"
                     % (self.simulations, self.records, self.elapsed))
        return "\n".join(lines)

    def __repr__(self):
        return "CharacterizationReport(%s, ok=%s)" % (self.label,
                                                      self.ok)
