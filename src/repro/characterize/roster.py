"""Characterization rosters: the paper's configurations and the gate.

Two entry points back the CLI:

* :func:`run_roster` — characterize a named set of predictors (by
  default the paper's SBTB/CBTB plus the modern zoo) and render the
  recovered-vs-declared diff; exit non-zero on any mismatch.
* :func:`run_self_test` — the ``scripts/check.sh`` gate: a grid of
  small known configurations plus the paper's 256-entry SBTB/CBTB must
  all be recovered *exactly*, and one deliberately mis-declared
  predictor must be flagged.  A clean pass therefore certifies both
  directions: the inference finds real parameters, and it is sharp
  enough to catch a lie.  Exit non-zero on either failure mode.
"""

import json

from repro.predictors import (
    AlwaysTaken,
    Bimodal,
    CounterBTB,
    ForwardSemanticPredictor,
    GShare,
    SimpleBTB,
    Tournament,
)

from repro.characterize.infer import characterize


def _roster():
    """name -> factory, in report order."""
    return (
        # The paper's hardware configurations (Section 2.2).
        ("SBTB-paper", lambda: SimpleBTB(entries=256)),
        ("CBTB-paper", lambda: CounterBTB(entries=256)),
        # The feasibility ablation the paper alludes to ("it may not
        # be feasible to implement full associativity").
        ("SBTB-256x4", lambda: SimpleBTB(entries=256, associativity=4)),
        # Smaller/later-lineage schemes.
        ("SBTB-small", lambda: SimpleBTB(entries=16, associativity=4)),
        ("CBTB-small", lambda: CounterBTB(entries=16, associativity=4,
                                          counter_bits=3, threshold=4)),
        ("gshare", lambda: GShare(history_bits=4, table_bits=10,
                                  entries=32, associativity=4)),
        ("bimodal", lambda: Bimodal(table_bits=10, entries=32,
                                    associativity=4)),
        ("tournament", lambda: Tournament(
            first=Bimodal(table_bits=10, entries=32),
            second=GShare(history_bits=4, table_bits=10, entries=32))),
        ("FS", lambda: ForwardSemanticPredictor(likely_sites={})),
        ("always-taken", AlwaysTaken),
    )


def roster_names():
    return [name for name, _ in _roster()]


def _render_reports(reports, as_json, heading):
    if as_json:
        payload = {
            "reports": [report.to_dict() for report in reports],
            "ok": all(report.ok for report in reports),
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"
    lines = [heading]
    for report in reports:
        lines.append(report.render())
    failures = [report.label for report in reports if not report.ok]
    lines.append("RESULT: %s"
                 % ("PASS — every recovered parameter matches its "
                    "declaration" if not failures
                    else "FAIL — mismatches in %s" % ", ".join(failures)))
    return "\n".join(lines) + "\n"


def run_roster(names=None, as_json=False):
    """Characterize roster entries; returns (text, exit_code)."""
    roster = dict(_roster())
    if names:
        unknown = [name for name in names if name not in roster]
        if unknown:
            return ("characterize: unknown predictor %s (choose from "
                    "%s)\n" % (", ".join(unknown),
                               ", ".join(roster)), 2)
        selected = [(name, roster[name]) for name in names]
    else:
        selected = list(_roster())
    reports = [characterize(factory, label=name)
               for name, factory in selected]
    text = _render_reports(
        reports, as_json,
        "Black-box characterization (probes see PredictionStats only)")
    return text, 0 if all(report.ok for report in reports) else 1


#: The self-test grid: every geometry/counter/history axis at small
#: sizes, plus the paper's configurations (the acceptance bar).
def _self_test_grid():
    return (
        ("SBTB-16", lambda: SimpleBTB(entries=16)),
        ("SBTB-16x4", lambda: SimpleBTB(entries=16, associativity=4)),
        ("SBTB-64x4", lambda: SimpleBTB(entries=64, associativity=4)),
        ("CBTB-16-2bitT2", lambda: CounterBTB(entries=16)),
        ("CBTB-16x4-3bitT4", lambda: CounterBTB(
            entries=16, associativity=4, counter_bits=3, threshold=4)),
        ("CBTB-32x4-1bitT1", lambda: CounterBTB(
            entries=32, associativity=4, counter_bits=1, threshold=1)),
        ("gshare-h4", lambda: GShare(history_bits=4, table_bits=10,
                                     entries=32, associativity=4)),
        ("bimodal-32x4", lambda: Bimodal(table_bits=10, entries=32,
                                         associativity=4)),
        ("FS", lambda: ForwardSemanticPredictor(likely_sites={})),
        ("SBTB-paper", lambda: SimpleBTB(entries=256)),
        ("CBTB-paper", lambda: CounterBTB(entries=256)),
    )


def run_self_test(as_json=False):
    """The check.sh gate; returns (text, exit_code).

    Every grid entry must characterize with zero mismatches, and an
    injected lie (an SBTB built with 64 entries but declaring 128)
    must be flagged on the ``entries`` axis — proving the gate would
    actually fire on a mis-recovery.
    """
    reports = [characterize(factory, label=name)
               for name, factory in _self_test_grid()]
    honest_ok = all(report.ok for report in reports)

    liar = SimpleBTB(entries=64)
    lied = dict(liar.declared_parameters())
    lied["entries"] = 128
    lied["n_sets"] = 128
    lied["associativity"] = 128
    injected = characterize(lambda: SimpleBTB(entries=64),
                            declared=lied, label="SBTB-64-declaring-128")
    flagged = {key for key, _, _ in injected.mismatches}
    injected_caught = "entries" in flagged
    ok = honest_ok and injected_caught

    if as_json:
        payload = {
            "reports": [report.to_dict() for report in reports],
            "injected": injected.to_dict(),
            "injected_caught": injected_caught,
            "ok": ok,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n", (
            0 if ok else 1)

    lines = ["Characterization self-test: %d known configurations + 1 "
             "injected lie" % len(reports)]
    for report in reports:
        status = "ok" if report.ok else "MISMATCH"
        lines.append("  %-18s %-8s %s" % (report.label, status,
                                          report.summary()))
    lines.append("  %-18s %-8s flagged %s"
                 % (injected.label,
                    "ok" if injected_caught else "MISSED",
                    sorted(flagged) if flagged else "nothing"))
    if not honest_ok:
        for report in reports:
            if not report.ok:
                lines.append(report.render())
    if not injected_caught:
        lines.append("  the deliberately mis-declared predictor was "
                     "not flagged — the gate is blind")
    lines.append("RESULT: %s" % ("PASS" if ok else "FAIL"))
    return "\n".join(lines) + "\n", 0 if ok else 1
