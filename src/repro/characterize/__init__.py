"""Black-box predictor characterization.

Recover a predictor's microarchitectural parameters — buffer capacity,
associativity, saturating-counter width and threshold, global-history
depth, replacement policy, flush sensitivity — purely from the
:class:`~repro.predictors.base.PredictionStats` that ``simulate()``
returns for crafted probe traces, the way the BTB reverse-engineering
literature recovers them from silicon.  The recovered configuration is
diffed against what the predictor declares; any disagreement is either
an inference bug or a simulator bug, which makes the harness a test
oracle that grows with every new predictor (see docs/CHARACTERIZE.md).

    from repro.characterize import characterize
    from repro.predictors import SimpleBTB

    report = characterize(lambda: SimpleBTB(entries=256))
    assert report.recovered["entries"] == 256
    assert report.ok  # recovered == declared

The probe traces themselves (:func:`probe_battery`) double as an
adversarial corpus for the conformance engine: overflowing sets,
maximal aliasing, and pathological periodic patterns the program
fuzzer essentially never produces.
"""

from repro.characterize.infer import (
    MAX_COUNTER_BITS,
    MAX_ENTRIES,
    MAX_HISTORY,
    characterize,
)
from repro.characterize.probes import (
    PROBE_FAMILIES,
    chain_trace,
    disagree_trace,
    ladder_trace,
    probe_battery,
    step_trace,
    victim_trace,
)
from repro.characterize.report import CharacterizationReport, ProbeEvidence
from repro.characterize.roster import roster_names, run_roster, run_self_test

__all__ = [
    "MAX_COUNTER_BITS",
    "MAX_ENTRIES",
    "MAX_HISTORY",
    "PROBE_FAMILIES",
    "CharacterizationReport",
    "ProbeEvidence",
    "chain_trace",
    "characterize",
    "disagree_trace",
    "ladder_trace",
    "probe_battery",
    "roster_names",
    "run_roster",
    "run_self_test",
    "step_trace",
    "victim_trace",
]
