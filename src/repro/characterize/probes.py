"""Probe-kernel generator: synthetic branch traces with known answers.

Every probe here is a deterministic :class:`~repro.vm.tracing.BranchTrace`
crafted so that a predictor's *aggregate* response — the
:class:`~repro.predictors.base.PredictionStats` one ``simulate()`` call
returns — pins down one microarchitectural parameter.  The construction
follows the black-box reverse-engineering literature (BTB capacity and
associativity recovery on Arm, history-depth ladders on Firestorm/Oryon)
translated to our trace-driven simulators:

* :func:`chain_trace` — a pointer-chased chain of ``m`` always-taken
  branches at stride ``s``, walked round-robin for ``laps`` laps.  With
  LRU replacement the steady-state buffer-miss rate is a step function
  of ``m``: zero while every site stays resident, one miss per access
  once any set is oversubscribed.  Stride 1 loads all sets evenly
  (capacity); stride = capacity aliases every site into a single set
  (associativity), because the number of sets always divides the entry
  count.
* :func:`step_trace` — one site driven taken ``k`` times, then
  not-taken ``j`` times, then taken ``l`` times.  The number of wrong
  predictions inside each segment is the flip latency of the scheme's
  hysteresis (saturating-counter width and threshold).
* :func:`ladder_trace` — one site executing the periodic pattern
  ``taken^k not-taken``, repeated.  A history predictor with depth
  ``h`` disambiguates every position of the period iff ``k <= h``, so
  the steady-state mispredict rate steps from zero to positive exactly
  at ``k = h + 1``.
* :func:`victim_trace` — warm an aliased set, refresh its LRU entry,
  force one eviction, optionally re-probe the refreshed entry: the
  extra probe misses iff the replacement policy ignored the refresh
  (FIFO-like rather than LRU).
* :func:`disagree_trace` — two interleaved sites with opposite
  outcomes; an adversarial pattern for chooser/agreement machinery.

All probe records are conditional branches (the class every scheme
specialises on) with per-site distinct targets, zero gaps, and no
randomness: the same arguments always yield byte-identical traces,
which is what lets the conformance engine replay every family
differentially.
"""

from repro.vm.tracing import BranchClass, BranchTrace

#: Base address for probe sites — arbitrary, nonzero so site 0 never
#: collides with "absent" sentinels anywhere downstream.
BASE_ADDRESS = 3

#: Offset separating targets from sites (probe traces never take a
#: branch *to* another probe site).
TARGET_OFFSET = 1 << 20


def _finish(trace):
    trace.total_instructions = len(trace)
    return trace


def _target(site):
    return site + TARGET_OFFSET


def probe_sites(m, stride, base=BASE_ADDRESS):
    """The ``m`` site addresses of a stride-``stride`` chain."""
    return [base + index * stride for index in range(m)]


def chain_trace(m, stride, laps, base=BASE_ADDRESS):
    """Round-robin over ``m`` always-taken sites at ``stride``.

    The pointer-chase of the capacity/associativity probes: each lap
    visits every site once, in address order, so per-set access order
    is cyclic and LRU replacement makes residency an all-or-nothing
    step at the set's way count.
    """
    trace = BranchTrace()
    sites = probe_sites(m, stride, base)
    for _ in range(laps):
        for site in sites:
            trace.append(site, BranchClass.CONDITIONAL, True,
                         _target(site), 0)
    return _finish(trace)


def step_trace(takens, not_takens, takens_again, site=BASE_ADDRESS):
    """One site: ``takens`` T, ``not_takens`` N, ``takens_again`` T.

    The counter-width probe.  Segment lengths must exceed the largest
    counter range under test so the first segment saturates the
    counter high and the second saturates it low; the per-segment
    wrong-prediction counts are then exactly the two flip latencies.
    """
    trace = BranchTrace()
    target = _target(site)
    for _ in range(takens):
        trace.append(site, BranchClass.CONDITIONAL, True, target, 0)
    for _ in range(not_takens):
        trace.append(site, BranchClass.CONDITIONAL, False, target, 0)
    for _ in range(takens_again):
        trace.append(site, BranchClass.CONDITIONAL, True, target, 0)
    return _finish(trace)


def ladder_trace(k, periods, site=BASE_ADDRESS):
    """``periods`` repetitions of the pattern ``taken^k not-taken``.

    The history-length ladder: a global-history predictor of depth
    ``h`` sees a distinct history before every position of the period
    while ``k <= h`` (the single not-taken outcome sits at a different
    offset of each history window), so every pattern-table entry
    converges and the steady state is perfect.  At ``k = h + 1`` two
    positions with different outcomes share the all-taken history and
    at least one misprediction per period survives warm-up.
    """
    trace = BranchTrace()
    target = _target(site)
    for _ in range(periods):
        for _ in range(k):
            trace.append(site, BranchClass.CONDITIONAL, True, target, 0)
        trace.append(site, BranchClass.CONDITIONAL, False, target, 0)
    return _finish(trace)


def victim_trace(ways, stride, probe=False, base=BASE_ADDRESS):
    """Warm one set, refresh its LRU entry, evict once, optionally probe.

    Sequence: three laps over ``ways`` aliased sites (fills the set and
    leaves it warm in visit order), one refreshing re-access of the
    first site, one access to a brand-new aliased site (forces exactly
    one eviction), and — with ``probe`` — one final access to the
    first site.  Under LRU the refresh saved the first site (the
    eviction takes the second-oldest); under FIFO/insertion order the
    refresh is ignored and the first site is the victim.  The
    difference in total buffer misses between the ``probe=False`` and
    ``probe=True`` traces is therefore 0 for LRU and 1 for FIFO.
    """
    trace = BranchTrace()
    sites = probe_sites(ways, stride, base)
    for _ in range(3):
        for site in sites:
            trace.append(site, BranchClass.CONDITIONAL, True,
                         _target(site), 0)
    first = sites[0]
    trace.append(first, BranchClass.CONDITIONAL, True, _target(first), 0)
    intruder = base + ways * stride
    trace.append(intruder, BranchClass.CONDITIONAL, True,
                 _target(intruder), 0)
    if probe:
        trace.append(first, BranchClass.CONDITIONAL, True,
                     _target(first), 0)
    return _finish(trace)


def disagree_trace(periods, base=BASE_ADDRESS):
    """Two interleaved sites with opposite, alternating outcomes.

    Site A runs T N T N ..., site B runs N T N T ... — every record
    disagrees with its site's previous outcome and with the other
    site's current one.  Nothing in the repo's fuzzer produces this
    adversarial interleaving; it stresses chooser tables, history
    pollution, and counter hysteresis at once.
    """
    trace = BranchTrace()
    site_a, site_b = base, base + 1
    for period in range(periods):
        taken_a = period % 2 == 0
        trace.append(site_a, BranchClass.CONDITIONAL, taken_a,
                     _target(site_a), 0)
        trace.append(site_b, BranchClass.CONDITIONAL, not taken_a,
                     _target(site_b), 0)
    return _finish(trace)


def probe_battery(entries=16, associativity=None, max_counter=8,
                  history_rungs=(1, 2, 4, 8)):
    """Named probe traces sized for a buffer of ``entries`` entries.

    Returns a list of ``(family, name, trace)`` tuples covering every
    probe family at the given geometry: fitting, exactly-full, and
    overflowing chains (stride 1 and maximally aliasing stride =
    ``entries``), the counter step, a ladder per rung, the
    eviction-victim pair, and the disagreement weave.  This is the
    adversarial corpus the conformance engine replays through the
    reference oracles and the scalar-vs-vector differential: probe
    traces deliberately oversubscribe sets and maximise aliasing —
    regimes the program-skeleton fuzzer essentially never reaches.
    """
    ways = associativity if associativity is not None else entries
    battery = []
    for m, label in ((max(entries // 2, 1), "fit"),
                     (entries, "full"),
                     (entries + max(ways // 2, 1), "overflow"),
                     (2 * entries, "thrash")):
        battery.append(("capacity", "chain-%s-m%d" % (label, m),
                        chain_trace(m, 1, 6)))
    for m, label in ((ways, "full"), (ways + 1, "overflow")):
        battery.append(("alias", "aliased-chain-%s-m%d" % (label, m),
                        chain_trace(m, entries, 6)))
    battery.append(("counter", "step-k%d" % max_counter,
                    step_trace(max_counter + 4, max_counter + 4,
                               max_counter + 4)))
    for rung in history_rungs:
        battery.append(("history", "ladder-k%d" % rung,
                        ladder_trace(rung, 10)))
    for probe in (False, True):
        battery.append(("replacement",
                        "victim-%s" % ("probe" if probe else "base"),
                        victim_trace(max(ways, 2), entries, probe=probe)))
    battery.append(("disagree", "weave-32", disagree_trace(32)))
    return battery


PROBE_FAMILIES = ("capacity", "alias", "counter", "history",
                  "replacement", "disagree")
