"""Black-box inference driver: recover predictor parameters from probes.

The driver never inspects a predictor object.  It is handed a zero-arg
*factory* and observes nothing but the :class:`PredictionStats` that
``simulate()`` returns for crafted probe traces — the same discipline
the silicon reverse-engineering papers are forced into (they only see
retired-mispredict counters).  Warm-up transients are cancelled by a
*steady-state differential*: every measurement runs the same periodic
probe at two lengths on two fresh predictor instances and divides the
difference by the extra periods, so only the converged per-period rate
survives.  On top of that single primitive:

* **buffered** — any chain probe reports ``buffer_accesses > 0`` iff
  the scheme consults a buffer (``hit`` is not ``None``).
* **capacity** — binary search (doubling, then bisection) for the
  longest stride-1 always-taken chain with a zero steady-state
  buffer-miss rate.  The divergence point is exact: consecutive sites
  load the sets evenly, so ``m`` sites fit iff ``m <= entries``.
* **associativity** — the same search at stride = capacity.  The set
  count divides the capacity, so every probed site aliases into one
  set and the divergence point is the way count.
* **counter width / threshold** — flip-latency analysis on
  :func:`~repro.characterize.probes.step_trace`: the number of wrong
  predictions while the outcome is inverted measures the distance from
  one saturation rail to the decision threshold.  For a saturating
  counter in ``[0, 2^b - 1]`` predicting taken at ``>= t``, the
  down-flip costs ``2^b - t`` wrongs and the up-flip ``t``, so both
  parameters fall out of two subtractions.  Only attempted on
  history-free schemes — global history makes a single-site pattern
  index-hop instead of hammering one counter.
* **history depth** — the ladder: largest ``k`` such that the periodic
  pattern ``taken^k not-taken`` reaches a steady state with zero
  mispredictions.  Monotone in ``k``, hence binary searched.
* **replacement policy** — the eviction-victim experiment of
  :func:`~repro.characterize.probes.victim_trace`: refresh the LRU
  entry of a full set, force one eviction, and check whether the
  refresh changed the victim.
* **flush sensitivity** — re-run a resident chain with a flush
  interval; buffered schemes pick up extra misses, software schemes
  are unaffected.

Every conclusion carries a :class:`ProbeEvidence` row recording the
probe family, its parameters, and the raw observation that forced the
conclusion, so a mis-recovery is debuggable from the report alone.
"""

import math
import time

from repro.predictors.base import simulate
from repro.telemetry.core import TELEMETRY

from repro.characterize.probes import (
    chain_trace, ladder_trace, step_trace, victim_trace)
from repro.characterize.report import CharacterizationReport, ProbeEvidence

#: Ceiling for the capacity search — predictors larger than this are
#: reported as ``entries=None`` ("at least MAX_ENTRIES") rather than
#: probed forever.
MAX_ENTRIES = 4096

#: Largest history depth the ladder climbs to.
MAX_HISTORY = 16

#: Largest saturating-counter width the step probe can resolve; the
#: step segments are sized to saturate a counter of this width.
MAX_COUNTER_BITS = 5


class _Probe:
    """Shared bookkeeping for one characterization run.

    ``observe(trace, flush_interval=None) -> PredictionStats`` is the
    single measurement channel — by default it instantiates a fresh
    predictor from ``factory`` and simulates locally, but any callable
    with that shape works, including one that ships the trace to a
    campaign service and returns the shard's stats (see
    :meth:`repro.service.client.ServiceClient.observer`).
    """

    def __init__(self, factory=None, observe=None):
        if factory is None and observe is None:
            raise ValueError("characterize needs a factory or an "
                             "observe callable")
        self.factory = factory
        self._observe = observe
        self.simulations = 0
        self.records = 0
        self.evidence = []

    def run(self, trace, flush_interval=None):
        """One fresh predictor, one trace, one PredictionStats."""
        if self._observe is not None:
            stats = self._observe(trace, flush_interval=flush_interval)
        else:
            stats = simulate(self.factory(), trace,
                             flush_interval=flush_interval)
        self.simulations += 1
        self.records += stats.total
        if TELEMETRY.enabled:
            TELEMETRY.count("characterize.simulations")
            TELEMETRY.count("characterize.records", stats.total)
        return stats

    def note(self, family, name, observation, conclusion, **params):
        self.evidence.append(ProbeEvidence(
            family=family, name=name, params=params,
            observation=observation, conclusion=conclusion))
        if TELEMETRY.enabled:
            TELEMETRY.count("characterize.probes")


def _steady_miss_rate(probe, build, base_units, family, name, **params):
    """Steady-state buffer misses per probe unit.

    ``build(units)`` must return a trace of that many repeated units;
    running at ``base_units`` and ``2 * base_units`` on fresh
    predictors and differencing cancels the warm-up prefix exactly.
    """
    short = probe.run(build(base_units))
    long = probe.run(build(2 * base_units))
    rate = (long.buffer_misses - short.buffer_misses) / base_units
    probe.note(family, name,
               {"units": base_units,
                "short_misses": short.buffer_misses,
                "long_misses": long.buffer_misses},
               "steady miss rate %.3f/unit" % rate, **params)
    return rate


def _steady_wrong_rate(probe, build, base_units, family, name, **params):
    """Steady-state wrong predictions per probe unit (same trick)."""
    short = probe.run(build(base_units))
    long = probe.run(build(2 * base_units))
    wrong_short = short.total - short.correct
    wrong_long = long.total - long.correct
    rate = (wrong_long - wrong_short) / base_units
    probe.note(family, name,
               {"units": base_units,
                "short_wrong": wrong_short, "long_wrong": wrong_long},
               "steady mispredict rate %.3f/unit" % rate, **params)
    return rate


def _chain_laps(m):
    """Laps per measurement: enough that history-driven warm-up (at
    most tens of records) stays inside the cancelled prefix."""
    return max(4, -(-64 // m))


def _chain_fits(probe, m, stride):
    rate = _steady_miss_rate(
        probe, lambda laps: chain_trace(m, stride, laps),
        _chain_laps(m), "capacity" if stride == 1 else "alias",
        "chain-m%d-s%d" % (m, stride), m=m, stride=stride)
    return rate == 0.0


def _max_resident_chain(probe, stride, ceiling):
    """Longest chain with zero steady-state misses: doubling + bisection.

    Returns ``None`` when even ``ceiling`` sites stay resident (the
    structure is larger than the search budget).
    """
    if not _chain_fits(probe, 1, stride):
        return 0
    low = 1
    high = 2
    while high <= ceiling and _chain_fits(probe, high, stride):
        low, high = high, high * 2
    if high > ceiling:
        return None
    while high - low > 1:
        mid = (low + high) // 2
        if _chain_fits(probe, mid, stride):
            low = mid
        else:
            high = mid
    return low


def _infer_buffered(probe):
    stats = probe.run(chain_trace(2, 1, 4))
    buffered = stats.buffer_accesses > 0
    probe.note("capacity", "buffered-detect",
               {"buffer_accesses": stats.buffer_accesses},
               "buffered" if buffered else "non-buffered")
    return buffered


def _infer_geometry(probe, max_entries):
    """Capacity, associativity, and set count via divergence points."""
    entries = _max_resident_chain(probe, 1, max_entries)
    probe.note("capacity", "divergence-point", {"entries": entries},
               "capacity %s" % (entries if entries is not None
                                else ">= %d" % max_entries))
    if not entries:
        return entries, None, None
    ways = _max_resident_chain(probe, entries, max_entries)
    probe.note("alias", "divergence-point", {"ways": ways},
               "associativity %s" % ways)
    if not ways:
        return entries, None, None
    return entries, ways, entries // ways


def _infer_counter(probe, max_counter_bits):
    """Flip latencies -> threshold, counter range, counter width."""
    segment = (1 << max_counter_bits) + 8
    base = probe.run(step_trace(segment, 0, 0))
    down = probe.run(step_trace(segment, segment, 0))
    full = probe.run(step_trace(segment, segment, segment))
    flips_down = segment - (down.correct - base.correct)
    flips_up = segment - (full.correct - down.correct)
    threshold = flips_up
    counter_max = flips_down + flips_up - 1
    bits = None
    if counter_max >= 1 and (counter_max + 1) & counter_max == 0:
        bits = int(math.log2(counter_max + 1))
    probe.note("counter", "flip-latency",
               {"flips_down": flips_down, "flips_up": flips_up,
                "counter_max": counter_max},
               "threshold %d, %s-bit counter"
               % (threshold, bits if bits is not None else "non-power"),
               segment=segment)
    return bits, threshold, flips_down, flips_up


def _ladder_perfect(probe, k):
    rate = _steady_wrong_rate(
        probe, lambda periods: ladder_trace(k, periods), 8,
        "history", "ladder-k%d" % k, k=k)
    return rate == 0.0


def _infer_history(probe, max_history):
    """Largest perfectly-predicted ladder rung, binary searched."""
    if not _ladder_perfect(probe, 1):
        depth = 0
    else:
        low = 1
        high = 2
        while high <= max_history and _ladder_perfect(probe, high):
            low, high = high, high * 2
        if high > max_history:
            depth = max_history
        else:
            while high - low > 1:
                mid = (low + high) // 2
                if _ladder_perfect(probe, mid):
                    low = mid
                else:
                    high = mid
            depth = low
    probe.note("history", "divergence-point", {"depth": depth},
               "history depth %d%s" % (
                   depth, "+" if depth == max_history else ""))
    return depth


def _infer_replacement(probe, entries, ways):
    """LRU vs FIFO-like via the refreshed-victim experiment."""
    if ways is None or ways < 2:
        return None
    base = probe.run(victim_trace(ways, entries, probe=False))
    probed = probe.run(victim_trace(ways, entries, probe=True))
    extra = probed.buffer_misses - base.buffer_misses
    policy = "lru" if extra == 0 else "fifo-like"
    probe.note("replacement", "victim-probe",
               {"extra_misses": extra}, policy, ways=ways)
    return policy


def _infer_flush(probe):
    """Does a context-switch flush cost anything?"""
    trace = chain_trace(8, 1, 8)
    base = probe.run(trace)
    flushed = probe.run(trace, flush_interval=8)
    sensitive = (flushed.buffer_misses > base.buffer_misses
                 or flushed.correct < base.correct)
    probe.note("replacement", "flush-interval",
               {"base_misses": base.buffer_misses,
                "flushed_misses": flushed.buffer_misses,
                "base_correct": base.correct,
                "flushed_correct": flushed.correct},
               "flush-sensitive" if sensitive else "flush-immune")
    return sensitive


def characterize(factory=None, declared=None, label=None,
                 max_entries=MAX_ENTRIES, max_history=MAX_HISTORY,
                 max_counter_bits=MAX_COUNTER_BITS, observe=None):
    """Recover a predictor's configuration through ``simulate()`` only.

    Args:
        factory: zero-argument callable returning a *fresh* predictor
            in its power-on state.  Every probe measurement gets its
            own instance, so the driver never depends on (or perturbs)
            cross-probe state.
        declared: optional dict of claimed parameters to diff against
            the recovered ones (``None`` asks the factory's product
            for :meth:`~repro.predictors.base.Predictor.
            declared_parameters`; with no factory it defaults empty).
        label: display name for the report.
        max_entries: capacity-search ceiling; beyond it ``entries`` is
            reported as ``None``.
        max_history: tallest ladder rung probed.
        max_counter_bits: widest saturating counter the step probe is
            sized for.
        observe: optional ``(trace, flush_interval=...) ->
            PredictionStats`` measurement channel replacing the local
            factory+simulate path — the probe battery itself is
            oblivious to where the stats come from, so a predictor
            reachable only through the campaign service characterizes
            identically (it *is* black-box either way).  Required when
            ``factory`` is omitted.

    Returns:
        :class:`~repro.characterize.report.CharacterizationReport`.
    """
    started = time.perf_counter()
    probe = _Probe(factory, observe=observe)
    if declared is None:
        declared = ({} if factory is None
                    else factory().declared_parameters())
    if label is None:
        label = ("predictor" if factory is None
                 else getattr(factory(), "name", "predictor"))

    recovered = {}
    with TELEMETRY.span("characterize.predictor", label=label):
        with TELEMETRY.span("characterize.probe", family="buffered"):
            recovered["buffered"] = _infer_buffered(probe)

        entries = ways = sets = None
        if recovered["buffered"]:
            with TELEMETRY.span("characterize.probe", family="capacity"):
                entries, ways, sets = _infer_geometry(probe, max_entries)
        recovered["entries"] = entries
        recovered["associativity"] = ways
        recovered["n_sets"] = sets

        with TELEMETRY.span("characterize.probe", family="history"):
            recovered["history_depth"] = _infer_history(probe,
                                                        max_history)

        bits = threshold = flips_down = flips_up = None
        if recovered["buffered"] and recovered["history_depth"] == 0:
            # Global history would spray the single-site step pattern
            # across many counters; the latencies only measure one
            # counter's hysteresis when the scheme is history-free.
            with TELEMETRY.span("characterize.probe", family="counter"):
                bits, threshold, flips_down, flips_up = _infer_counter(
                    probe, max_counter_bits)
        recovered["counter_bits"] = bits
        recovered["threshold"] = threshold
        recovered["flips_down"] = flips_down
        recovered["flips_up"] = flips_up

        replacement = None
        if recovered["buffered"]:
            with TELEMETRY.span("characterize.probe",
                                family="replacement"):
                replacement = _infer_replacement(probe, entries, ways)
        recovered["replacement"] = replacement

        with TELEMETRY.span("characterize.probe", family="flush"):
            recovered["flush_sensitive"] = _infer_flush(probe)

    report = CharacterizationReport(
        label=label, recovered=recovered, declared=dict(declared or {}),
        evidence=probe.evidence, simulations=probe.simulations,
        records=probe.records,
        elapsed=time.perf_counter() - started)
    if TELEMETRY.enabled:
        TELEMETRY.event("characterize.report", label=label,
                        simulations=probe.simulations,
                        records=probe.records,
                        mismatches=len(report.mismatches))
    return report
