"""A set-associative instruction cache simulator.

Built for the paper's spatial-locality claim: "because copying
instructions into forward slots increases the spatial locality of the
program, the expanded static code size does not translate linearly
into increased miss ratios of instruction caches", and the conclusion's
"executing the instructions in forward slots often will cause the
branch target's instructions to be in the instruction cache".

Addresses are instruction indices (one word per instruction); a cache
line holds ``line_words`` consecutive instructions.  LRU replacement
per set, as in :mod:`repro.predictors.assoc_cache`.
"""

from repro.predictors.assoc_cache import AssociativeCache


class CacheStats:
    """Accesses and misses of one simulation."""

    __slots__ = ("accesses", "misses")

    def __init__(self, accesses=0, misses=0):
        self.accesses = accesses
        self.misses = misses

    @property
    def miss_ratio(self):
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def __repr__(self):
        return "CacheStats(%d accesses, %d misses, %.4f%% miss)" % (
            self.accesses, self.misses, 100.0 * self.miss_ratio)


class InstructionCache:
    """A (set-)associative instruction cache over word addresses.

    Args:
        total_words: capacity in instruction words.
        line_words: words per cache line (a power of two).
        associativity: ways per set; ``None`` = fully associative.
    """

    def __init__(self, total_words=1024, line_words=8, associativity=4):
        if line_words <= 0 or total_words <= 0:
            raise ValueError("sizes must be positive")
        if total_words % line_words != 0:
            raise ValueError("line_words must divide total_words")
        self.line_words = line_words
        n_lines = total_words // line_words
        self._lines = AssociativeCache(n_lines, associativity)
        self.stats = CacheStats()

    def access(self, address):
        """Fetch one instruction; returns True on hit."""
        line = address // self.line_words
        self.stats.accesses += 1
        if self._lines.lookup(line) is not None:
            return True
        self.stats.misses += 1
        self._lines.insert(line, True)
        return False

    def run(self, addresses):
        """Feed a full fetch stream; returns the accumulated stats.

        The hot path is inlined (no per-access method call) because
        address traces run to millions of entries.
        """
        line_words = self.line_words
        lookup = self._lines.lookup
        insert = self._lines.insert
        accesses = 0
        misses = 0
        last_line = -1
        for address in addresses:
            accesses += 1
            line = address // line_words
            if line == last_line:
                continue  # sequential run inside one line: guaranteed hit
            last_line = line
            if lookup(line) is None:
                misses += 1
                insert(line, True)
        self.stats.accesses += accesses
        self.stats.misses += misses
        return self.stats

    def access_range(self, start, length):
        """Fetch ``length`` sequential instructions from ``start``.

        Touches each covered cache line once; returns the number of
        misses.  Equivalent to feeding the addresses one by one but
        O(lines) instead of O(instructions).
        """
        if length <= 0:
            return 0
        lookup = self._lines.lookup
        insert = self._lines.insert
        first = start // self.line_words
        last = (start + length - 1) // self.line_words
        misses = 0
        for line in range(first, last + 1):
            if lookup(line) is None:
                misses += 1
                insert(line, True)
        self.stats.accesses += length
        self.stats.misses += misses
        return misses

    def reset(self):
        self._lines.clear()
        self.stats = CacheStats()


def miss_ratio_of(addresses, total_words=1024, line_words=8,
                  associativity=4):
    """Convenience: one-shot miss ratio of a fetch stream."""
    cache = InstructionCache(total_words, line_words, associativity)
    return cache.run(addresses).miss_ratio
