"""Cycle-level simulation of the paper's pipeline.

An in-order, single-issue machine with one-cycle stages: fetch
(1 select + k memory stages), decode (l stages), execute (m stages),
state update.  Instructions retire one per cycle except after a branch
whose handling scheme failed to cover the refill:

* a mispredicted **conditional** branch is discovered at the end of the
  execute unit: the machine squashes the k + l + m instructions fetched
  behind it and refetches, costing k + l + m extra cycles;
* an uncovered **unconditional** branch (e.g. a BTB miss on a jump, or
  any unknown-target indirect jump) is discovered at the end of the
  decode unit: it costs k + l extra cycles;
* a covered (correctly predicted / slot-masked) branch costs nothing
  extra.

Because the machine never stalls for any other reason, total cycles =
pipeline fill + instructions retired + squash penalties, which this
simulator accumulates while replaying a branch trace against a live
predictor.  Comparing its cycles-per-branch against the analytic
equation (which replaces the per-class penalties with the averaged
k + l_bar + m_bar) is the model-validation ablation in DESIGN.md.
"""

from repro.predictors.base import is_correct
from repro.vm.tracing import BranchClass


class CycleStats:
    """Outcome of a cycle simulation.

    ``squashed_by_class`` attributes the squash penalty to branch
    classes (:class:`~repro.vm.tracing.BranchClass` codes): which kind
    of branch a scheme actually pays for.
    """

    __slots__ = ("cycles", "instructions", "branches", "squashed_cycles",
                 "mispredictions", "fill_cycles", "squashed_by_class")

    def __init__(self, cycles, instructions, branches, squashed_cycles,
                 mispredictions, fill_cycles, squashed_by_class=None):
        self.cycles = cycles
        self.instructions = instructions
        self.branches = branches
        self.squashed_cycles = squashed_cycles
        self.mispredictions = mispredictions
        self.fill_cycles = fill_cycles
        self.squashed_by_class = dict(squashed_by_class or {})

    @property
    def cycles_per_instruction(self):
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    @property
    def cost_per_branch(self):
        """Cycles attributable to each branch: 1 + its share of squash.

        This is the quantity the paper's cost equation predicts.
        """
        if self.branches == 0:
            return 0.0
        return 1.0 + self.squashed_cycles / self.branches

    @property
    def squashed_conditional(self):
        """Squash cycles paid at mispredicted conditional branches."""
        return self.squashed_by_class.get(BranchClass.CONDITIONAL, 0)

    @property
    def squashed_unconditional(self):
        """Squash cycles paid at uncovered unconditional branches."""
        return sum(cycles for branch_class, cycles
                   in self.squashed_by_class.items()
                   if branch_class != BranchClass.CONDITIONAL)

    def __repr__(self):
        return ("CycleStats(%d cycles, %d instructions, CPI=%.3f, "
                "cost/branch=%.3f)" % (self.cycles, self.instructions,
                                       self.cycles_per_instruction,
                                       self.cost_per_branch))


class CycleSimulator:
    """Replays a branch trace through the pipeline with a predictor.

    Args:
        config: :class:`~repro.pipeline.config.PipelineConfig`; the
            simulator uses the integer stage counts k, l, m (not the
            averaged penalties — those belong to the analytic model).
        predictor: any :class:`~repro.predictors.base.Predictor`.
        ras_returns: model the shared return-address mechanism (returns
            always covered); matches the accounting of
            :func:`repro.predictors.base.simulate`.
        engine: ``auto`` / ``scalar`` / ``vector`` — the same surface
            as :func:`repro.predictors.base.simulate`.  ``None`` uses
            the process-wide default.  The vector path
            (:mod:`repro.kernels.cycle`) is bit-identical and, like
            ``simulate()``, leaves the predictor object untouched;
            the scalar path advances it record by record.
    """

    def __init__(self, config, predictor, ras_returns=True,
                 engine=None):
        self.config = config
        self.predictor = predictor
        self.ras_returns = ras_returns
        self.engine = engine

    def run(self, trace):
        """Simulate ``trace``; returns :class:`CycleStats`."""
        from repro.kernels import resolve_engine

        resolved = resolve_engine(self.engine, self.predictor, trace)
        if resolved == "vector":
            from repro.kernels.cycle import cycle_kernel

            fields = cycle_kernel(self.config, self.predictor, trace,
                                  self.ras_returns)
            stats = CycleStats(**fields)
            self._report(stats, resolved)
            return stats

        config = self.config
        predictor = self.predictor
        conditional_penalty = config.k + config.l + config.m
        unconditional_penalty = config.k + config.l

        squashed = 0
        squashed_by_class = {}
        mispredictions = 0
        branches = 0

        for site, branch_class, taken, target, _ in trace.records():
            branches += 1
            if branch_class == BranchClass.RETURN and self.ras_returns:
                continue
            prediction = predictor.predict(site, branch_class)
            covered = is_correct(prediction, taken, target)
            predictor.update(site, branch_class, taken, target)
            if covered:
                continue
            mispredictions += 1
            if branch_class == BranchClass.CONDITIONAL:
                penalty = conditional_penalty
            else:
                # Unconditional branches resolve at the end of decode.
                penalty = unconditional_penalty
            squashed += penalty
            squashed_by_class[branch_class] = (
                squashed_by_class.get(branch_class, 0) + penalty)

        fill = config.depth - 1
        instructions = trace.total_instructions
        cycles = fill + instructions + squashed
        stats = CycleStats(cycles, instructions, branches, squashed,
                           mispredictions, fill, squashed_by_class)
        self._report(stats, resolved)
        return stats

    def _report(self, stats, engine):
        from repro.telemetry.core import TELEMETRY
        if TELEMETRY.enabled:
            TELEMETRY.count("cycle_sim.runs")
            TELEMETRY.count("cycle_sim.runs.%s" % engine)
            TELEMETRY.count("cycle_sim.squashed_cycles",
                            stats.squashed_cycles)
            TELEMETRY.event(
                "cycle_sim.run", predictor=self.predictor.name,
                engine=engine, cycles=stats.cycles,
                instructions=stats.instructions,
                branches=stats.branches,
                mispredictions=stats.mispredictions,
                cycles_per_instruction=stats.cycles_per_instruction,
                cost_per_branch=stats.cost_per_branch,
                squashed_by_class={
                    BranchClass.NAMES[code]: cycles
                    for code, cycles in stats.squashed_by_class.items()})

    def run_with_icache(self, trace, entry, icache, miss_penalty=8):
        """Simulate with an instruction cache in the fetch path.

        The fetch stream is reconstructed from the (single-run) trace
        via :mod:`repro.pipeline.fetch_stream`; every cache-line miss
        stalls the pipeline ``miss_penalty`` cycles on top of the
        squash accounting of :meth:`run`.

        Returns (:class:`CycleStats`, cache miss count).  ``icache``
        accumulates its own :class:`~repro.icache.CacheStats`.
        """
        from repro.pipeline.fetch_stream import fetch_segments

        base = self.run(trace)
        misses = 0
        for start, length in fetch_segments(trace, entry):
            misses += icache.access_range(start, length)
        cycles = base.cycles + misses * miss_penalty
        stats = CycleStats(cycles, base.instructions, base.branches,
                           base.squashed_cycles, base.mispredictions,
                           base.fill_cycles, base.squashed_by_class)
        return stats, misses
