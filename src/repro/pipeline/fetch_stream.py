"""Reconstructing the fetch stream from a branch trace.

Between two branches the machine fetches sequentially, so a branch
trace (sites, directions, targets, gaps) plus the entry point fully
determines the instruction-address stream of a single run.  This gives
the instruction-cache and pipeline models a fetch stream without the
memory cost of recording every executed address — and doubles as a
strong internal consistency check on the trace itself (every record's
site must equal the previous landing plus its gap).

Only single-run traces reconstruct (merged multi-run traces have
invisible restarts); :class:`~repro.vm.machine.Machine` address traces
remain available for anything else.
"""


class TraceInconsistency(ValueError):
    """The branch trace does not describe a sequential fetch stream."""


def fetch_segments(trace, entry, validate=True):
    """Sequential fetch segments [(start, length), ...] of one run.

    Each segment covers the non-branch instructions since the previous
    branch plus the branch itself; a final branchless tail (e.g. the
    HALT path) is appended when the instruction count says one exists.
    """
    segments = []
    current = entry
    consumed = 0
    for site, _, taken, target, gap in trace.records():
        if validate and site != current + gap:
            raise TraceInconsistency(
                "record at site %d does not follow landing %d + gap %d"
                % (site, current, gap))
        segments.append((current, gap + 1))
        consumed += gap + 1
        current = target if taken else site + 1
    tail = trace.total_instructions - consumed
    if tail > 0:
        segments.append((current, tail))
    elif validate and tail < 0:
        raise TraceInconsistency(
            "records cover %d instructions but the trace executed %d"
            % (consumed, trace.total_instructions))
    return segments


def fetch_addresses(trace, entry, validate=True):
    """Iterate every fetched instruction address of one run."""
    for start, length in fetch_segments(trace, entry, validate=validate):
        yield from range(start, start + length)
