"""Hardware storage cost of the three schemes.

The paper's closing argument is about silicon: "the hardware schemes
need to be accessed fast by the instruction prefetch pipeline, [so]
these schemes would have to be implemented on-chip ... using up
valuable area.  The Forward Semantic frees this area for other uses."

This module counts the storage each scheme requires so the trade can
be quantified:

* the BTBs store, per entry: a tag (the branch address), the target
  address, the first k instructions of the target path (what masks the
  fetch refill), a valid bit, and — for the CBTB — the n-bit counter;
* the Forward Semantic stores nothing on-chip; its cost is the
  *instruction memory* occupied by forward slots (the Table 5
  expansion) plus one likely bit per branch instruction encoding.
"""


class StorageCost:
    """Bits of storage, split by where they live."""

    __slots__ = ("on_chip_bits", "instruction_memory_bits")

    def __init__(self, on_chip_bits, instruction_memory_bits):
        self.on_chip_bits = on_chip_bits
        self.instruction_memory_bits = instruction_memory_bits

    @property
    def total_bits(self):
        return self.on_chip_bits + self.instruction_memory_bits

    def __repr__(self):
        return "StorageCost(on_chip=%d, instr_mem=%d)" % (
            self.on_chip_bits, self.instruction_memory_bits)


def btb_storage(entries, k, counter_bits=0, address_bits=32,
                instruction_bits=32):
    """On-chip storage of an SBTB (counter_bits=0) or CBTB.

    Per entry: tag + target + k stored target-path instructions +
    valid bit + counter.
    """
    if entries <= 0 or k < 0:
        raise ValueError("entries must be positive and k non-negative")
    per_entry = (address_bits          # associative tag
                 + address_bits        # branch target
                 + k * instruction_bits
                 + 1                   # valid
                 + counter_bits)
    return StorageCost(entries * per_entry, 0)


def sbtb_storage(entries=256, k=1, address_bits=32, instruction_bits=32):
    """The paper's SBTB configuration."""
    return btb_storage(entries, k, counter_bits=0,
                       address_bits=address_bits,
                       instruction_bits=instruction_bits)


def cbtb_storage(entries=256, k=1, counter_bits=2, address_bits=32,
                 instruction_bits=32):
    """The paper's CBTB configuration."""
    return btb_storage(entries, k, counter_bits=counter_bits,
                       address_bits=address_bits,
                       instruction_bits=instruction_bits)


def forward_semantic_storage(expansion_report, static_size=None,
                             instruction_bits=32):
    """Storage of the Forward Semantic: zero on-chip; code expansion
    (slots) in instruction memory, plus the likely bit which fits in
    the branch instruction encoding (one bit per static branch, folded
    into the instruction word -> no extra storage counted).

    Args:
        expansion_report: :class:`~repro.traceopt.ExpansionReport` for
            the chosen k + l.
        static_size: optional override of the original program size.
    """
    original = (static_size if static_size is not None
                else expansion_report.original_size)
    extra_instructions = expansion_report.expanded_size - original
    return StorageCost(0, extra_instructions * instruction_bits)


def compare_storage(expansion_report, entries=256, k=1, counter_bits=2,
                    instruction_bits=32):
    """Side-by-side storage of the three schemes at one design point.

    Returns {"SBTB": StorageCost, "CBTB": ..., "FS": ...}.
    """
    return {
        "SBTB": sbtb_storage(entries, k, instruction_bits=instruction_bits),
        "CBTB": cbtb_storage(entries, k, counter_bits=counter_bits,
                             instruction_bits=instruction_bits),
        "FS": forward_semantic_storage(expansion_report,
                                       instruction_bits=instruction_bits),
    }
