"""The paper's pipelined microarchitecture model.

The pipeline has four units in series (Figure 1): instruction fetch
(one next-address-selection stage plus k memory stages), instruction
decode (l stages, average flush penalty l_bar), instruction execution
(m stages, average flush penalty m_bar), and state update.

:mod:`repro.pipeline.cost_model` implements the paper's branch-cost
equation ``cost = A + (k + l_bar + m_bar)(1 - A)``;
:mod:`repro.pipeline.cycle_sim` is a cycle-level simulator of the same
machine used to validate the analytic model (an ablation — the paper
itself uses the equation).
"""

from repro.pipeline.config import PipelineConfig
from repro.pipeline.cost_model import (
    branch_cost,
    branch_cost_batch,
    branch_cost_series,
    cost_from_stats,
)
from repro.pipeline.cycle_sim import CycleSimulator, CycleStats
from repro.pipeline.fetch_stream import (
    TraceInconsistency,
    fetch_addresses,
    fetch_segments,
)
from repro.pipeline.hardware_cost import (
    StorageCost,
    btb_storage,
    cbtb_storage,
    compare_storage,
    forward_semantic_storage,
    sbtb_storage,
)

__all__ = [
    "PipelineConfig",
    "branch_cost",
    "branch_cost_batch",
    "branch_cost_series",
    "cost_from_stats",
    "CycleSimulator",
    "CycleStats",
    "TraceInconsistency",
    "fetch_addresses",
    "fetch_segments",
    "StorageCost",
    "btb_storage",
    "sbtb_storage",
    "cbtb_storage",
    "forward_semantic_storage",
    "compare_storage",
]
