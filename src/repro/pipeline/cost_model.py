"""The paper's analytic branch-cost model (Section 2.3).

Whenever a prediction is incorrect, k + l_bar + m_bar instructions are
flushed; a correct prediction is fully covered by the scheme in use.
With prediction accuracy A, the expected cost of one branch is::

    cost = A + (k + l_bar + m_bar) * (1 - A)

measured in clock cycles with one-cycle stages.
"""


def branch_cost(accuracy, k=None, l_bar=None, m_bar=None, config=None):
    """Evaluate the cost equation.

    Pass either a :class:`~repro.pipeline.config.PipelineConfig` via
    ``config`` or the three raw parameters.

    >>> round(branch_cost(0.9, k=1, l_bar=1, m_bar=1), 3)
    1.2
    """
    if config is not None:
        if not (k is None and l_bar is None and m_bar is None):
            raise ValueError("pass either config or raw parameters, not both")
        flush = config.flush_penalty
    else:
        if k is None or l_bar is None or m_bar is None:
            raise ValueError("k, l_bar and m_bar are all required")
        flush = k + l_bar + m_bar
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError("accuracy must lie in [0, 1]")
    if flush < 0:
        raise ValueError("flush penalty must be non-negative")
    return accuracy + flush * (1.0 - accuracy)


def branch_cost_series(accuracy, k, lm_values):
    """Cost as a function of l_bar + m_bar for fixed k (Figures 3-4).

    Args:
        accuracy: prediction accuracy A.
        k: fetch-pipeline depth.
        lm_values: iterable of l_bar + m_bar points.

    Returns:
        list of (l_bar + m_bar, cost) pairs.
    """
    series = []
    for lm in lm_values:
        series.append((lm, branch_cost(accuracy, k=k, l_bar=lm, m_bar=0.0)))
    return series


def cost_from_stats(stats, k, l_bar, m_bar):
    """Branch cost using a measured :class:`PredictionStats` accuracy."""
    return branch_cost(stats.accuracy, k=k, l_bar=l_bar, m_bar=m_bar)


def speedup_over(cost_a, cost_b):
    """How much cheaper scheme A's branches are than scheme B's."""
    if cost_a <= 0:
        raise ValueError("costs must be positive")
    return cost_b / cost_a
