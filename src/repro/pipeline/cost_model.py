"""The paper's analytic branch-cost model (Section 2.3).

Whenever a prediction is incorrect, k + l_bar + m_bar instructions are
flushed; a correct prediction is fully covered by the scheme in use.
With prediction accuracy A, the expected cost of one branch is::

    cost = A + (k + l_bar + m_bar) * (1 - A)

measured in clock cycles with one-cycle stages.

The equation is evaluated elementwise in float64 whether computed
scalar or in a numpy batch, so :func:`branch_cost_batch` and
:func:`branch_cost_series` are bit-identical to mapping
:func:`branch_cost` over their inputs.
"""

import numpy as np


def branch_cost(accuracy, k=None, l_bar=None, m_bar=None, config=None):
    """Evaluate the cost equation.

    Pass either a :class:`~repro.pipeline.config.PipelineConfig` via
    ``config`` or the three raw parameters.

    >>> round(branch_cost(0.9, k=1, l_bar=1, m_bar=1), 3)
    1.2
    """
    if config is not None:
        if not (k is None and l_bar is None and m_bar is None):
            raise ValueError("pass either config or raw parameters, not both")
        flush = config.flush_penalty
    else:
        if k is None or l_bar is None or m_bar is None:
            raise ValueError("k, l_bar and m_bar are all required")
        flush = k + l_bar + m_bar
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError("accuracy must lie in [0, 1]")
    if flush < 0:
        raise ValueError("flush penalty must be non-negative")
    return accuracy + flush * (1.0 - accuracy)


def branch_cost_series(accuracy, k, lm_values):
    """Cost as a function of l_bar + m_bar for fixed k (Figures 3-4).

    Args:
        accuracy: prediction accuracy A.
        k: fetch-pipeline depth.
        lm_values: iterable of l_bar + m_bar points.

    Returns:
        list of (l_bar + m_bar, cost) pairs.
    """
    lm_list = list(lm_values)
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError("accuracy must lie in [0, 1]")
    flushes = k + np.asarray(lm_list, dtype=np.float64)
    if flushes.size and flushes.min() < 0:
        raise ValueError("flush penalty must be non-negative")
    costs = accuracy + flushes * (1.0 - accuracy)
    return list(zip(lm_list, (float(cost) for cost in costs)))


def branch_cost_batch(accuracies, k, l_bar, m_bar):
    """The cost equation over many accuracies at one pipeline point.

    Vectorized form used by the table aggregation paths; returns a
    list of costs in input order.
    """
    values = np.asarray(list(accuracies), dtype=np.float64)
    if values.size and not (0.0 <= values.min()
                            and values.max() <= 1.0):
        raise ValueError("accuracy must lie in [0, 1]")
    flush = k + l_bar + m_bar
    if flush < 0:
        raise ValueError("flush penalty must be non-negative")
    return [float(cost) for cost in values + flush * (1.0 - values)]


def cost_from_stats(stats, k, l_bar, m_bar):
    """Branch cost using a measured :class:`PredictionStats` accuracy."""
    return branch_cost(stats.accuracy, k=k, l_bar=l_bar, m_bar=m_bar)


def speedup_over(cost_a, cost_b):
    """How much cheaper scheme A's branches are than scheme B's."""
    if cost_a <= 0:
        raise ValueError("costs must be positive")
    return cost_b / cost_a
