"""Pipeline configuration (the paper's k, l, m, l_bar, m_bar)."""


class PipelineConfig:
    """Parameters of the pipelined microarchitecture.

    Args:
        k: instruction-memory access stages in the fetch unit (the
            fetch unit has k + 1 stages including next-address
            selection).
        l: decode stages.
        m: execute stages.
        l_bar: average decode-flush penalty, 0 <= l_bar <= l; defaults
            to l (the RISC case the paper notes).
        m_bar: average execute-flush penalty; defaults to
            f_cond * m — the paper's value for compiler-implemented
            static interlocking, where f_cond is the fraction of
            branches that are conditional.
        f_cond: fraction of dynamic branches that are conditional
            (used only for the m_bar default).
    """

    __slots__ = ("k", "l", "m", "l_bar", "m_bar", "f_cond")

    def __init__(self, k, l, m, l_bar=None, m_bar=None, f_cond=1.0):
        if k < 0 or l < 0 or m < 0:
            raise ValueError("stage counts must be non-negative")
        if not 0.0 <= f_cond <= 1.0:
            raise ValueError("f_cond must lie in [0, 1]")
        self.k = k
        self.l = l
        self.m = m
        self.f_cond = f_cond
        self.l_bar = float(l) if l_bar is None else float(l_bar)
        self.m_bar = (f_cond * m) if m_bar is None else float(m_bar)
        if not 0.0 <= self.l_bar <= l:
            raise ValueError("l_bar must lie in [0, l]")
        if not 0.0 <= self.m_bar <= m:
            raise ValueError("m_bar must lie in [0, m]")

    @property
    def flush_penalty(self):
        """Average instructions flushed on a misprediction:
        k + l_bar + m_bar."""
        return self.k + self.l_bar + self.m_bar

    @property
    def depth(self):
        """Total pipeline stages: (k + 1) + l + m + 1 (state update)."""
        return self.k + 1 + self.l + self.m + 1

    def __repr__(self):
        return ("PipelineConfig(k=%d, l=%d, m=%d, l_bar=%.2f, m_bar=%.2f)"
                % (self.k, self.l, self.m, self.l_bar, self.m_bar))

    def __eq__(self, other):
        if not isinstance(other, PipelineConfig):
            return NotImplemented
        return (self.k, self.l, self.m, self.l_bar, self.m_bar) == (
            other.k, other.l, other.m, other.l_bar, other.m_bar)
