"""Batch kernels for the software-only schemes (FS, static baselines).

These predictors carry no run-time state at all — predictions are a
pure per-site function — so their kernels are table lookups: map each
distinct site through the predictor's dicts once, then gather.  None
of them accesses a buffer; the hit column is -1 ("no buffer") for
every record, keeping them out of miss-ratio accounting exactly like
the scalar ``hit=None``.

Direction-only schemes score with an any-target sentinel in the
scalar engine; here that is simply ``target_match = pred_taken``.
"""

import numpy as np

from repro.vm.tracing import BranchClass


def _no_buffer(n):
    return np.full(n, -1, dtype=np.int8)


def _site_table(enc, fn, dtype):
    """Evaluate ``fn`` once per distinct site, gathered per record."""
    unique, inverse = enc.unique_sites()
    values = np.fromiter((fn(int(site)) for site in unique), dtype,
                         count=unique.shape[0])
    return values[inverse]


def fs_kernel(predictor, enc):
    n = len(enc)
    likely = _site_table(
        enc, lambda s: predictor._likely.get(s, False), bool)
    has_target = _site_table(
        enc, lambda s: s in predictor._targets, bool)
    static_target = _site_table(
        enc, lambda s: predictor._targets.get(s, 0), np.int64)

    conditional = enc.classes == BranchClass.CONDITIONAL
    direct = enc.classes == BranchClass.UNCONDITIONAL_KNOWN
    pred_taken = (conditional & likely) | direct
    # Sites without program text fall back to the any-target sentinel
    # (statically-encoded target, direction-only scoring).
    target_match = pred_taken & (~has_target
                                 | (static_target == enc.targets))
    return pred_taken, target_match, _no_buffer(n)


def always_taken_kernel(predictor, enc):
    n = len(enc)
    pred_taken = np.ones(n, dtype=bool)
    return pred_taken, pred_taken.copy(), _no_buffer(n)


def always_not_taken_kernel(predictor, enc):
    n = len(enc)
    pred_taken = np.zeros(n, dtype=bool)
    return pred_taken, pred_taken.copy(), _no_buffer(n)


def btfnt_kernel(predictor, enc):
    n = len(enc)
    pred_taken = _site_table(
        enc, lambda s: predictor._backward.get(s, False), bool)
    return pred_taken, pred_taken.copy(), _no_buffer(n)
