"""Fold per-record kernel outcomes into ``PredictionStats``.

A kernel answers three per-record questions — predicted direction,
predicted-target match, buffer hit (-1 none / 0 miss / 1 hit) — and
this module reproduces, in array form, exactly what the scalar
simulator's per-record loop does with them: the filtering rules
(``conditional_only``, the return-address substitution), the scoring
rule of :func:`repro.predictors.base.is_correct`, and the per-class
dictionary bookkeeping including its key-presence semantics (a class
appears in ``by_class_correct`` only once a record of that class was
predicted correctly).
"""

import numpy as np

from repro.vm.tracing import BranchClass


def assemble_stats(kernel, predictor, enc, conditional_only=False,
                   ras_returns=True):
    """Run ``kernel`` over the encoded trace; returns PredictionStats.

    Mirrors the scalar simulator's record filtering: with
    ``conditional_only`` every non-conditional record is skipped
    outright; otherwise with ``ras_returns`` return records bypass the
    predictor and score as correct non-buffer predictions.
    """
    from repro.predictors.base import PredictionStats

    stats = PredictionStats()
    returns_credited = 0
    if conditional_only:
        sub = enc.subset("conditional",
                         enc.classes == BranchClass.CONDITIONAL)
    elif ras_returns:
        is_return = enc.classes == BranchClass.RETURN
        returns_credited = int(np.count_nonzero(is_return))
        sub = (enc.subset("no-returns", ~is_return)
               if returns_credited else enc)
    else:
        sub = enc

    if len(sub):
        pred_taken, target_match, hit = kernel(predictor, sub)
        correct = np.where(sub.takens, pred_taken & target_match,
                           ~pred_taken)
        stats.total = len(sub)
        stats.correct = int(np.count_nonzero(correct))
        stats.buffer_accesses = int(np.count_nonzero(hit >= 0))
        stats.buffer_misses = int(np.count_nonzero(hit == 0))
        classes = sub.classes.astype(np.int64)
        totals = np.bincount(classes, minlength=4)
        corrects = np.bincount(classes[correct], minlength=4)
        for branch_class in range(4):
            if totals[branch_class]:
                stats.by_class_total[branch_class] = (
                    int(totals[branch_class]))
            if corrects[branch_class]:
                stats.by_class_correct[branch_class] = (
                    int(corrects[branch_class]))

    if returns_credited:
        stats.total += returns_credited
        stats.correct += returns_credited
        stats.by_class_total[BranchClass.RETURN] = (
            stats.by_class_total.get(BranchClass.RETURN, 0)
            + returns_credited)
        stats.by_class_correct[BranchClass.RETURN] = (
            stats.by_class_correct.get(BranchClass.RETURN, 0)
            + returns_credited)
    return stats
