"""Segmented array primitives shared by the batch kernels.

Every kernel reduces to the same few questions asked per record about
*earlier records in some group* (same branch site, same cache set, same
counter index):

* :func:`previous_index` — where did this group last occur?
* :func:`last_marked_index` — where did it last occur *with a write*?
* :func:`running_total` — how much has accumulated in the group so far?
* :func:`exclusive_states` — what state had the group's small state
  machine reached?

All helpers take a :class:`Groups` (a stable sort of records by group
key, so each group is a contiguous segment in sorted order) and return
answers scattered back to original record order.

The state scan exploits that every transition in the predictor zoo —
saturating increment, saturating decrement, allocation to a constant —
is a *clamped add* ``f(s) = clip(s + delta, low, high)``, a family
closed under composition:

    (g o f)(s) = clip(s + d_f + d_g,
                      clip(low_f + d_g, low_g, high_g),
                      clip(high_f + d_g, low_g, high_g))

so a segmented scan needs only three integers per record instead of a
full transition table, independent of the number of counter states.

Two scan strategies implement the same composition, selected by input
size.  Small inputs use a segmented Hillis-Steele doubling scan
(``O(n log n)``, minimal setup).  Large inputs use a blocked
work-efficient scan: the sorted domain is cut into fixed-size blocks,
each block is swept once with every block's sweep vectorized together
(one NumPy op per block *column*, not per element), block totals are
combined with a tiny doubling scan, and a final vectorized pass
composes each block's carry into its elements — ``O(n)`` element work
with ``O(block)`` interpreter overhead.  Segment boundaries are
carried as start flags through both scans (Blelloch's segmented
operator: a flagged right operand resets the composition), so a block
never needs to know where segments begin.
"""

import numpy as np


class Groups:
    """Records grouped by an integer key, order-preserving per group.

    Attributes (all over the *sorted* domain ``order``):
        order: stable permutation sorting records by key — within a
            group, sorted rows keep original record order.
        starts: True at each group's first sorted row.
        seg_ids: group ordinal per sorted row.
    """

    __slots__ = ("n", "order", "starts", "seg_ids")

    def __init__(self, keys):
        keys = np.asarray(keys)
        self.n = int(keys.shape[0])
        self.order = np.argsort(keys, kind="stable")
        starts = np.empty(self.n, dtype=bool)
        if self.n:
            sorted_keys = keys[self.order]
            starts[0] = True
            np.not_equal(sorted_keys[1:], sorted_keys[:-1],
                         out=starts[1:])
        self.starts = starts
        self.seg_ids = (np.cumsum(starts, dtype=np.int64) - 1 if self.n
                        else np.zeros(0, dtype=np.int64))


def previous_index(groups):
    """Original index of each record's previous same-group record.

    Returns an int64 array in original record order; -1 marks a
    group's first record.
    """
    out = np.full(groups.n, -1, dtype=np.int64)
    if groups.n == 0:
        return out
    prev_sorted = np.empty(groups.n, dtype=np.int64)
    prev_sorted[0] = -1
    prev_sorted[1:] = groups.order[:-1]
    prev_sorted[groups.starts] = -1
    out[groups.order] = prev_sorted
    return out


def last_marked_index(groups, marked):
    """Original index of the most recent *earlier* marked record in the
    same group; -1 when no earlier record of the group is marked.
    """
    n = groups.n
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    # int32 arithmetic when the per-segment bias trick cannot
    # overflow it; int64 otherwise (huge traces with many groups).
    segments = int(groups.seg_ids[-1]) + 1
    wide = (segments - 1) * (n + 1) + n >= np.int64(1) << 31
    dtype = np.int64 if wide else np.int32
    marked_sorted = np.asarray(marked, dtype=bool)[groups.order]
    # Carrier values: sorted-row number + 1 at marks, 0 elsewhere, so a
    # running max finds the latest mark and 0 still means "none".
    carrier = np.where(marked_sorted, np.arange(1, n + 1, dtype=dtype),
                       dtype(0))
    exclusive = np.empty_like(carrier)
    exclusive[0] = 0
    exclusive[1:] = carrier[:-1]
    exclusive[groups.starts] = 0
    # Per-segment max without a loop: bias each segment into its own
    # disjoint value range, accumulate globally, un-bias.  A previous
    # segment's biased values are all smaller than the next segment's
    # bias, so the running max cannot leak across a boundary.
    bias = groups.seg_ids.astype(dtype) * dtype(n + 1)
    latest = np.maximum.accumulate(exclusive + bias) - bias
    found = latest > 0
    result_sorted = np.full(n, -1, dtype=np.int64)
    result_sorted[found] = groups.order[latest[found] - 1]
    out[groups.order] = result_sorted
    return out


def running_total(groups, values):
    """Inclusive per-group cumulative sum, in original record order."""
    n = groups.n
    out = np.zeros(n, dtype=np.int64)
    if n == 0:
        return out
    sorted_values = np.asarray(values)[groups.order]
    total = np.cumsum(sorted_values, dtype=np.int64)
    start_rows = np.nonzero(groups.starts)[0]
    segment_base = np.where(start_rows > 0, total[start_rows - 1], 0)
    out[groups.order] = total - segment_base[groups.seg_ids]
    return out


#: Identity-map bound: wider than any real counter range, narrow
#: enough that compositions never overflow int32.
_UNBOUNDED = np.int32(1) << 20

#: Inputs at least this long use the blocked work-efficient scan; the
#: doubling scan wins below it (less setup, and tiny traces are cheap
#: either way).
_BLOCKED_MIN = 4096

#: Block width of the work-efficient scan: the sweep runs this many
#: vectorized steps, each touching one element per block, so interpreter
#: overhead is ``O(block)`` while element work stays ``O(n)``.
_BLOCK = 32


def _doubling_inclusive(delta, low, high, flags):
    """Segmented inclusive scan by doubling, in place; O(n log n)."""
    n = delta.shape[0]
    stride = 1
    while stride < n:
        b_f = flags[stride:]
        d_f, lo_f, hi_f = delta[:-stride], low[:-stride], high[:-stride]
        d_g, lo_g, hi_g = delta[stride:], low[stride:], high[stride:]
        n_d = np.where(b_f, d_g, d_f + d_g)
        n_lo = np.where(b_f, lo_g,
                        np.minimum(np.maximum(lo_f + d_g, lo_g), hi_g))
        n_hi = np.where(b_f, hi_g,
                        np.minimum(np.maximum(hi_f + d_g, lo_g), hi_g))
        n_f = b_f | flags[:-stride]
        delta[stride:] = n_d
        low[stride:] = n_lo
        high[stride:] = n_hi
        flags[stride:] = n_f
        stride <<= 1


def _blocked_inclusive(delta, low, high, flags):
    """Segmented inclusive scan, blocked work-efficient; O(n) work.

    Returns new (delta, low, high) arrays of the input length; the
    inputs are consumed (padded copies are made internally).
    """
    n = delta.shape[0]
    m = -(-n // _BLOCK)
    pad = m * _BLOCK - n
    if pad:
        # Padding rows are flagged segment starts: they can never
        # absorb a real prefix and are sliced off at the end.
        delta = np.concatenate(
            [delta, np.zeros(pad, dtype=np.int32)])
        low = np.concatenate(
            [low, np.full(pad, -_UNBOUNDED, dtype=np.int32)])
        high = np.concatenate(
            [high, np.full(pad, _UNBOUNDED, dtype=np.int32)])
        flags = np.concatenate([flags, np.ones(pad, dtype=bool)])
    # Transposed layout: row j holds element j of *every* block, so
    # each sweep step reads and writes contiguous m-vectors.
    d = np.ascontiguousarray(delta.reshape(m, _BLOCK).transpose())
    lo = np.ascontiguousarray(low.reshape(m, _BLOCK).transpose())
    hi = np.ascontiguousarray(high.reshape(m, _BLOCK).transpose())
    f = np.ascontiguousarray(flags.reshape(m, _BLOCK).transpose())
    # Intra-block sweep: one vectorized step per block position turns
    # each row into the inclusive composition from its block (or
    # segment) start; the flag row becomes "prefix saw a start".
    for j in range(1, _BLOCK):
        b_f = f[j]
        d_g, lo_g, hi_g = d[j], lo[j], hi[j]
        n_d = d[j - 1] + d_g
        n_lo = np.minimum(np.maximum(lo[j - 1] + d_g, lo_g), hi_g)
        n_hi = np.minimum(np.maximum(hi[j - 1] + d_g, lo_g), hi_g)
        d[j] = np.where(b_f, d_g, n_d)
        lo[j] = np.where(b_f, lo_g, n_lo)
        hi[j] = np.where(b_f, hi_g, n_hi)
        f[j] |= f[j - 1]
    # Inter-block: exclusive carries from the block totals (the last
    # row), via the doubling scan over m entries.
    c_d = np.empty(m, dtype=np.int32)
    c_lo = np.empty(m, dtype=np.int32)
    c_hi = np.empty(m, dtype=np.int32)
    c_f = np.empty(m, dtype=bool)
    c_d[0], c_lo[0], c_hi[0], c_f[0] = 0, -_UNBOUNDED, _UNBOUNDED, False
    c_d[1:] = d[-1, :-1]
    c_lo[1:] = lo[-1, :-1]
    c_hi[1:] = hi[-1, :-1]
    c_f[1:] = f[-1, :-1]
    _doubling_inclusive(c_d, c_lo, c_hi, c_f)
    # Apply: elements whose in-block prefix saw no segment start
    # compose the block carry underneath; flagged prefixes already
    # start at their segment start.
    out_d = np.where(f, d, c_d + d)
    out_lo = np.where(f, lo, np.minimum(np.maximum(c_lo + d, lo), hi))
    out_hi = np.where(f, hi, np.minimum(np.maximum(c_hi + d, lo), hi))
    return (out_d.transpose().ravel()[:n],
            out_lo.transpose().ravel()[:n],
            out_hi.transpose().ravel()[:n])


def _inclusive_compose(delta, low, high, flags):
    """Dispatch the segmented inclusive scan; consumes its inputs."""
    if delta.shape[0] >= _BLOCKED_MIN:
        return _blocked_inclusive(delta, low, high, flags)
    _doubling_inclusive(delta, low, high, flags)
    return delta, low, high


def exclusive_states(groups, deltas, lows, highs, init_state,
                     inits=None):
    """Run each group's state machine; the state *before* each record.

    Record ``j``'s transition is the clamped add
    ``clip(s + deltas[j], lows[j], highs[j])`` (all in original record
    order): saturating up/down steps bound by the counter range, or an
    allocation encoded as ``delta 0, low == high == value``.  Each
    group starts in ``init_state`` — moot for groups whose first
    transition is an allocation.  Returns int32 pre-record states in
    original record order.

    ``inits``, when given, is a per-record int32 array (original
    order) holding each record's *group's* initial state — the same
    value across a group; chunked execution uses it to seed every
    group with its carried-in counter instead of one global constant.
    """
    n = groups.n
    if n == 0:
        return np.zeros(0, dtype=np.int32)
    order = groups.order
    # The exclusive shift: row j carries the previous in-group
    # record's transition, group firsts the identity; the segmented
    # scan then composes each row into its exclusive in-group prefix.
    delta = np.empty(n, dtype=np.int32)
    low = np.empty(n, dtype=np.int32)
    high = np.empty(n, dtype=np.int32)
    delta[1:] = np.asarray(deltas, dtype=np.int32)[order][:-1]
    low[1:] = np.asarray(lows, dtype=np.int32)[order][:-1]
    high[1:] = np.asarray(highs, dtype=np.int32)[order][:-1]
    delta[groups.starts] = 0
    low[groups.starts] = -_UNBOUNDED
    high[groups.starts] = _UNBOUNDED
    delta, low, high = _inclusive_compose(delta, low, high,
                                          groups.starts.copy())
    if inits is None:
        init = np.int32(init_state)
    else:
        init = np.asarray(inits, dtype=np.int32)[order]
    out = np.empty(n, dtype=np.int32)
    out[order] = np.minimum(np.maximum(init + delta, low), high)
    return out


def segment_compositions(groups, deltas, lows, highs):
    """Each group's whole-transition composition, in group order.

    Composes every record's clamped-add transition within its group
    (first to last) and returns ``(delta, low, high)`` int32 arrays,
    one entry per group, ordered by group ordinal (ascending key).
    Applying the triple to a state ``s`` —
    ``clip(s + delta, low, high)`` — yields the state after the
    group's last record.  Chunked execution ships these as the
    per-chunk counter summaries that the coordinator folds.
    """
    n = groups.n
    if n == 0:
        empty = np.zeros(0, dtype=np.int32)
        return empty, empty.copy(), empty.copy()
    order = groups.order
    delta = np.ascontiguousarray(
        np.asarray(deltas, dtype=np.int32)[order])
    low = np.ascontiguousarray(np.asarray(lows, dtype=np.int32)[order])
    high = np.ascontiguousarray(
        np.asarray(highs, dtype=np.int32)[order])
    delta, low, high = _inclusive_compose(delta, low, high,
                                          groups.starts.copy())
    ends = np.empty(int(groups.seg_ids[-1]) + 1, dtype=np.int64)
    start_rows = np.nonzero(groups.starts)[0]
    ends[:-1] = start_rows[1:] - 1
    ends[-1] = n - 1
    return delta[ends], low[ends], high[ends]


def compose(first, second):
    """Compose two clamped-add triples: apply ``first`` then ``second``.

    Operands are ``(delta, low, high)`` tuples of equal-shaped int32
    arrays (or scalars); returns the composed triple.  The identity is
    ``(0, -UNBOUNDED, UNBOUNDED)`` — see :data:`identity`.
    """
    d_f, lo_f, hi_f = first
    d_g, lo_g, hi_g = second
    return (d_f + d_g,
            np.minimum(np.maximum(lo_f + d_g, lo_g), hi_g),
            np.minimum(np.maximum(hi_f + d_g, lo_g), hi_g))


def apply_state(state, triple):
    """Apply a clamped-add triple to a state (arrays or scalars)."""
    delta, low, high = triple
    return np.minimum(np.maximum(state + delta, low), high)


def identity(shape=None):
    """The identity clamped-add triple, scalar or array-shaped."""
    if shape is None:
        return (np.int32(0), np.int32(-_UNBOUNDED), _UNBOUNDED)
    return (np.zeros(shape, dtype=np.int32),
            np.full(shape, -_UNBOUNDED, dtype=np.int32),
            np.full(shape, _UNBOUNDED, dtype=np.int32))
