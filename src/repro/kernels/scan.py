"""Segmented array primitives shared by the batch kernels.

Every kernel reduces to the same few questions asked per record about
*earlier records in some group* (same branch site, same cache set, same
counter index):

* :func:`previous_index` — where did this group last occur?
* :func:`last_marked_index` — where did it last occur *with a write*?
* :func:`running_total` — how much has accumulated in the group so far?
* :func:`exclusive_states` — what state had the group's small state
  machine reached?

All helpers take a :class:`Groups` (a stable sort of records by group
key, so each group is a contiguous segment in sorted order) and return
answers scattered back to original record order.

The state scan exploits that every transition in the predictor zoo —
saturating increment, saturating decrement, allocation to a constant —
is a *clamped add* ``f(s) = clip(s + delta, low, high)``, a family
closed under composition:

    (g o f)(s) = clip(s + d_f + d_g,
                      clip(low_f + d_g, low_g, high_g),
                      clip(high_f + d_g, low_g, high_g))

so a segmented Hillis-Steele doubling scan needs only three integers
per record instead of a full transition table: ``O(n log n)`` with
tiny constants, independent of the number of counter states.
"""

import numpy as np


class Groups:
    """Records grouped by an integer key, order-preserving per group.

    Attributes (all over the *sorted* domain ``order``):
        order: stable permutation sorting records by key — within a
            group, sorted rows keep original record order.
        starts: True at each group's first sorted row.
        seg_ids: group ordinal per sorted row.
    """

    __slots__ = ("n", "order", "starts", "seg_ids")

    def __init__(self, keys):
        keys = np.asarray(keys)
        self.n = int(keys.shape[0])
        self.order = np.argsort(keys, kind="stable")
        starts = np.empty(self.n, dtype=bool)
        if self.n:
            sorted_keys = keys[self.order]
            starts[0] = True
            np.not_equal(sorted_keys[1:], sorted_keys[:-1],
                         out=starts[1:])
        self.starts = starts
        self.seg_ids = (np.cumsum(starts) - 1 if self.n
                        else np.zeros(0, dtype=np.int64))


def previous_index(groups):
    """Original index of each record's previous same-group record.

    Returns an int64 array in original record order; -1 marks a
    group's first record.
    """
    out = np.full(groups.n, -1, dtype=np.int64)
    if groups.n == 0:
        return out
    rows = np.nonzero(~groups.starts)[0]
    prev_sorted = np.full(groups.n, -1, dtype=np.int64)
    prev_sorted[rows] = groups.order[rows - 1]
    out[groups.order] = prev_sorted
    return out


def last_marked_index(groups, marked):
    """Original index of the most recent *earlier* marked record in the
    same group; -1 when no earlier record of the group is marked.
    """
    n = groups.n
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    marked_sorted = np.asarray(marked, dtype=bool)[groups.order]
    # Carrier values: sorted-row number + 1 at marks, 0 elsewhere, so a
    # running max finds the latest mark and 0 still means "none".
    carrier = np.where(marked_sorted,
                       np.arange(1, n + 1, dtype=np.int64), 0)
    exclusive = np.empty_like(carrier)
    exclusive[0] = 0
    exclusive[1:] = carrier[:-1]
    exclusive[groups.starts] = 0
    # Per-segment max without a loop: bias each segment into its own
    # disjoint value range, accumulate globally, un-bias.  A previous
    # segment's biased values are all smaller than the next segment's
    # bias, so the running max cannot leak across a boundary.
    bias = groups.seg_ids * np.int64(n + 1)
    latest = np.maximum.accumulate(exclusive + bias) - bias
    found = latest > 0
    result_sorted = np.full(n, -1, dtype=np.int64)
    result_sorted[found] = groups.order[latest[found] - 1]
    out[groups.order] = result_sorted
    return out


def running_total(groups, values):
    """Inclusive per-group cumulative sum, in original record order."""
    n = groups.n
    out = np.zeros(n, dtype=np.int64)
    if n == 0:
        return out
    sorted_values = np.asarray(values, dtype=np.int64)[groups.order]
    total = np.cumsum(sorted_values)
    start_rows = np.nonzero(groups.starts)[0]
    segment_base = np.where(start_rows > 0, total[start_rows - 1], 0)
    out[groups.order] = total - segment_base[groups.seg_ids]
    return out


#: Identity-map bound: wider than any real counter range, narrow
#: enough that compositions never overflow int32.
_UNBOUNDED = np.int32(1) << 20


def exclusive_states(groups, deltas, lows, highs, init_state):
    """Run each group's state machine; the state *before* each record.

    Record ``j``'s transition is the clamped add
    ``clip(s + deltas[j], lows[j], highs[j])`` (all in original record
    order): saturating up/down steps bound by the counter range, or an
    allocation encoded as ``delta 0, low == high == value``.  Each
    group starts in ``init_state`` — moot for groups whose first
    transition is an allocation.  Returns int32 pre-record states in
    original record order.
    """
    n = groups.n
    if n == 0:
        return np.zeros(0, dtype=np.int32)
    order = groups.order
    # The exclusive shift: row j carries the previous in-group
    # record's transition, group firsts the identity; doubling then
    # composes each row into its whole exclusive in-group prefix.
    delta = np.empty(n, dtype=np.int32)
    low = np.empty(n, dtype=np.int32)
    high = np.empty(n, dtype=np.int32)
    delta[1:] = np.asarray(deltas, dtype=np.int32)[order][:-1]
    low[1:] = np.asarray(lows, dtype=np.int32)[order][:-1]
    high[1:] = np.asarray(highs, dtype=np.int32)[order][:-1]
    delta[groups.starts] = 0
    low[groups.starts] = -_UNBOUNDED
    high[groups.starts] = _UNBOUNDED
    rows = np.arange(n)
    segment_start = np.maximum.accumulate(
        np.where(groups.starts, rows, 0))
    pos = rows - segment_start
    stride = 1
    while True:
        active = np.nonzero(pos >= stride)[0]
        if active.size == 0:
            break
        earlier = active - stride
        # Compose: f = prefix ending at j - stride, g = window ending
        # at j.  Gather everything before assigning anything — rows in
        # ``earlier`` may also be in ``active``.
        d_f, lo_f, hi_f = delta[earlier], low[earlier], high[earlier]
        d_g, lo_g, hi_g = delta[active], low[active], high[active]
        delta[active] = d_f + d_g
        low[active] = np.clip(lo_f + d_g, lo_g, hi_g)
        high[active] = np.clip(hi_f + d_g, lo_g, hi_g)
        stride <<= 1
    out = np.empty(n, dtype=np.int32)
    out[order] = np.clip(np.int32(init_state) + delta, low, high)
    return out
