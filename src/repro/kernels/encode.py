"""Column-array encoding of branch traces for the batch kernels.

:class:`~repro.vm.tracing.BranchTrace` stores records in plain Python
lists (cheap to append while the VM runs).  The kernels want NumPy
arrays; :class:`EncodedTrace` is that view, built once per trace and
memoized on the trace object so repeated simulations — a sweep runs
every scheme over the same trace — pay the list-to-array cost once.
Traces loaded from the ``.npz`` cache already hold arrays, and the
loader stashes the encoding directly without a round-trip through
lists.

An encoding also memoizes the derived structures the kernels keep
asking for — the stable per-site grouping, per-cache-set groupings,
the distinct-site table, filtered sub-encodings — because a sweep
simulates several schemes over the same trace and the sort work is
identical across them.

For multi-process (chunked) execution an encoding can be persisted as
**memory-mapped columnar storage**: one ``.npy`` file per column plus
a small ``meta.json``, written once by the coordinator and opened with
``mmap_mode="r"`` by every worker (:func:`save_columns` /
:func:`load_columns`).  ``.npz`` members cannot be memmapped — the zip
container forces a full read — which is why the layout is a directory
of raw ``.npy`` files; a worker that loads ``[start:stop)`` faults in
only its chunk's pages, so the encode cost is paid once no matter how
many workers attach.

This module deliberately imports nothing from ``repro`` outside the
kernels package, so the trace layer can depend on it without cycles.
"""

import json
from pathlib import Path

import numpy as np

_COLUMNS = ("sites", "classes", "takens", "targets", "gaps")


class EncodedTrace:
    """The five trace columns as NumPy arrays, in record order."""

    __slots__ = ("sites", "classes", "takens", "targets", "gaps",
                 "total_instructions", "_memo")

    def __init__(self, sites, classes, takens, targets, gaps,
                 total_instructions=0):
        self.sites = sites
        self.classes = classes
        self.takens = takens
        self.targets = targets
        self.gaps = gaps
        self.total_instructions = total_instructions
        self._memo = {}

    def __len__(self):
        return int(self.sites.shape[0])

    @classmethod
    def from_columns(cls, sites, classes, takens, targets, gaps,
                     total_instructions=0):
        """Build from list or array columns, normalising dtypes."""
        return cls(
            np.asarray(sites, dtype=np.int64),
            np.asarray(classes, dtype=np.int8),
            np.asarray(takens, dtype=np.int8).astype(bool),
            np.asarray(targets, dtype=np.int64),
            np.asarray(gaps, dtype=np.int64),
            int(total_instructions),
        )

    @classmethod
    def of(cls, trace):
        """The (memoized) encoding of a :class:`BranchTrace`.

        The cached encoding is keyed on the trace length: appending or
        merging records invalidates it naturally.  In-place mutation of
        existing records would not be noticed — nothing in the codebase
        does that to a trace that is being simulated.
        """
        cached = getattr(trace, "_encoded", None)
        if cached is not None and len(cached) == len(trace):
            return cached
        encoded = cls.from_columns(
            trace.sites, trace.classes, trace.takens, trace.targets,
            trace.gaps, trace.total_instructions)
        trace._encoded = encoded
        return encoded

    def select(self, mask):
        """A new encoding holding only the records where ``mask``."""
        return EncodedTrace(
            self.sites[mask], self.classes[mask], self.takens[mask],
            self.targets[mask], self.gaps[mask],
            self.total_instructions)

    # -- memoized derived structures --------------------------------------

    def subset(self, key, mask):
        """Memoized :meth:`select` — ``key`` names the filter rule."""
        cached = self._memo.get(("subset", key))
        if cached is None:
            cached = self._memo[("subset", key)] = self.select(mask)
        return cached

    def site_groups(self):
        """Records grouped by branch site (memoized)."""
        from repro.kernels.scan import Groups

        cached = self._memo.get("site_groups")
        if cached is None:
            cached = self._memo["site_groups"] = Groups(self.sites)
        return cached

    def set_groups(self, n_sets):
        """Records grouped by cache set (memoized per set count)."""
        from repro.kernels.scan import Groups

        cached = self._memo.get(("set_groups", n_sets))
        if cached is None:
            cached = Groups(self.sites % n_sets)
            self._memo[("set_groups", n_sets)] = cached
        return cached

    def unique_sites(self):
        """``(distinct_sites, inverse)`` as from np.unique (memoized)."""
        cached = self._memo.get("unique_sites")
        if cached is None:
            cached = np.unique(self.sites, return_inverse=True)
            self._memo["unique_sites"] = cached
        return cached


# -- memory-mapped columnar storage --------------------------------------


def save_columns(enc, directory):
    """Persist ``enc`` as a directory of per-column ``.npy`` files.

    ``takens`` is stored as int8 (bool arrays round-trip through it);
    record count and ``total_instructions`` live in ``meta.json``.
    Returns the directory as a :class:`~pathlib.Path`.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name in _COLUMNS:
        column = getattr(enc, name)
        if column.dtype == bool:
            column = column.astype(np.int8)
        np.save(directory / ("%s.npy" % name), column)
    meta = {"records": len(enc),
            "total_instructions": enc.total_instructions}
    (directory / "meta.json").write_text(json.dumps(meta))
    return directory


def load_columns(directory, start=None, stop=None):
    """Open columnar storage; returns an :class:`EncodedTrace`.

    Columns are opened with ``mmap_mode="r"`` and sliced lazily:
    ``[start:stop)`` selects a chunk without reading the rest of the
    file.  The slices are copied into private arrays (a chunk is meant
    to be scanned repeatedly; repeated page faults would defeat the
    point), so the maps close with this call's locals.
    """
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    window = slice(start, stop)
    columns = {}
    for name in _COLUMNS:
        mapped = np.load(directory / ("%s.npy" % name), mmap_mode="r")
        column = np.array(mapped[window])
        if name == "takens":
            column = column.astype(bool)
        columns[name] = column
    return EncodedTrace(columns["sites"], columns["classes"],
                        columns["takens"], columns["targets"],
                        columns["gaps"],
                        int(meta["total_instructions"]))
