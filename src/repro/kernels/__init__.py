"""Vectorized simulation kernels (the ``--engine=vector`` path).

The scalar simulator in :mod:`repro.predictors.base` walks a branch
trace one record at a time through Python objects — honest, simple,
and the throughput ceiling of every sweep and fuzz campaign.  This
package re-expresses the same predictors as NumPy array programs:

* traces are encoded once into column arrays
  (:class:`~repro.kernels.encode.EncodedTrace`), reusing the arrays
  the ``.npz`` trace cache already stores;
* per-predictor kernels compute every record's prediction outcome in
  a handful of whole-trace array passes (:mod:`~repro.kernels.tables`
  for the SBTB/CBTB associative buffers,
  :mod:`~repro.kernels.direction` for gshare/bimodal,
  :mod:`~repro.kernels.static` for the FS and static baselines);
* the associative-table kernels partition work by cache set and drop
  to a tight per-set scalar replay only for sets under real capacity
  pressure (see docs/PERFORMANCE.md for the closed forms);
* :mod:`~repro.kernels.aggregate` folds per-record outcomes into the
  same :class:`~repro.predictors.base.PredictionStats` the scalar
  simulator produces.

The contract is **bit identity**: for every supported predictor and
every trace, the vector engine returns a ``PredictionStats`` equal
field-for-field to the scalar simulator's.  The differential
equivalence tests, the conformance engine cross-check, and the golden
tables all enforce it; a kernel that is fast but drifts is a bug.

Engine selection lives in :mod:`~repro.kernels.engine`:
``simulate(..., engine="auto")`` (the default) uses a kernel when one
exists and the trace is large enough to amortise array setup, and the
scalar loop otherwise.  The vector engine never mutates the predictor
object it is handed — buffer-internal telemetry (occupancy, eviction
counts) is a scalar-engine feature.
"""

from repro.kernels.encode import EncodedTrace
from repro.kernels.engine import (
    AUTO_THRESHOLD,
    ENGINES,
    get_default_engine,
    resolve_engine,
    set_default_engine,
)


def kernel_for(predictor):
    """The batch kernel for ``predictor``, or None when unsupported.

    Dispatch is by exact type, not isinstance: a subclass may override
    ``predict``/``update`` in ways the closed forms do not model, so it
    falls back to the scalar engine until it registers its own kernel.
    """
    from repro.kernels import direction, static, tables
    from repro.predictors.bimodal import Bimodal
    from repro.predictors.cbtb import CounterBTB
    from repro.predictors.fs import ForwardSemanticPredictor
    from repro.predictors.sbtb import SimpleBTB
    from repro.predictors.static_schemes import (
        AlwaysNotTaken,
        AlwaysTaken,
        BackwardTakenForwardNotTaken,
    )
    from repro.predictors.twolevel import GShare

    registry = {
        SimpleBTB: tables.sbtb_kernel,
        CounterBTB: tables.cbtb_kernel,
        GShare: direction.gshare_kernel,
        Bimodal: direction.bimodal_kernel,
        ForwardSemanticPredictor: static.fs_kernel,
        AlwaysTaken: static.always_taken_kernel,
        AlwaysNotTaken: static.always_not_taken_kernel,
        BackwardTakenForwardNotTaken: static.btfnt_kernel,
    }
    return registry.get(type(predictor))


def supports(predictor):
    """True when the vector engine has a kernel for ``predictor``."""
    return kernel_for(predictor) is not None


def is_pristine(predictor):
    """True when ``predictor`` is in its freshly-constructed state.

    The closed forms reconstruct buffer contents from the trace alone,
    which is only valid when the simulation starts from empty buffers
    and initial counters — how every runner and sweep builds its
    predictors.  A warm predictor (reused across simulate calls
    without ``reset()``) is routed to the scalar engine instead.
    """
    from repro.predictors.bimodal import Bimodal
    from repro.predictors.cbtb import CounterBTB
    from repro.predictors.sbtb import SimpleBTB
    from repro.predictors.twolevel import GShare

    if isinstance(predictor, (SimpleBTB, CounterBTB)):
        return len(predictor._cache) == 0
    if isinstance(predictor, GShare):
        return (predictor.history == 0
                and len(predictor._targets) == 0
                and predictor.counters.count(1) == len(predictor.counters))
    if isinstance(predictor, Bimodal):
        return (len(predictor._targets) == 0
                and predictor.counters.count(1) == len(predictor.counters))
    return True     # the software schemes carry no run-time state


def simulate_vector(predictor, trace, conditional_only=False,
                    ras_returns=True):
    """Run ``predictor`` over ``trace`` with its batch kernel.

    Mirrors :func:`repro.predictors.base.simulate` exactly (without
    ``flush_interval``, which the engine resolver routes to the scalar
    loop).  Raises ValueError for unsupported predictors — callers go
    through :func:`resolve_engine` first.
    """
    from repro.kernels.aggregate import assemble_stats

    kernel = kernel_for(predictor)
    if kernel is None:
        raise ValueError("no vector kernel for %r" % type(predictor).__name__)
    return assemble_stats(kernel, predictor, EncodedTrace.of(trace),
                          conditional_only=conditional_only,
                          ras_returns=ras_returns)


__all__ = [
    "AUTO_THRESHOLD",
    "ENGINES",
    "EncodedTrace",
    "get_default_engine",
    "is_pristine",
    "kernel_for",
    "resolve_engine",
    "set_default_engine",
    "simulate_vector",
    "supports",
]
