"""Blocked LRU eviction kernel for overflowing BTB sets.

The closed-form kernels in :mod:`repro.kernels.tables` and
:mod:`repro.kernels.direction` are exact until a cache set evicts.
This module replaces the old per-set scalar dict replay with a blocked
iteration that stays in NumPy: the records of *all* overflowing sets
are regrouped into rounds — round ``r`` holds the ``r``-th record of
every overflowing set — and each round is one batch of vectorized
cache transitions, applied to every set at once.

The inter-round state is a closed-form summary of each set: a dense
``(sets, ways)`` key/value (and, for the CBTB, counter) matrix kept in
recency order — empty slots packed at the low end, LRU at the first
occupied column, MRU at the last column.  Every LRU transition is then
a single gather per round through an *augmented* column space::

    index 0          a synthesized empty slot
    index 1 .. W     the set's current ways (LRU .. MRU)
    index W + 1      the record's would-be new entry

with one gather row per op:

* ``noop``          ``[1, 2, .., W]`` — identity
* ``move(way)``     drop ``way``, shift the ways above it down, put
  ``way`` at the MRU column
* ``delete(way)``   drop ``way``, shift the ways below it up, pull an
  empty slot into the low end
* ``insert``        shift everything down one and put the new entry at
  the MRU column — column 0's old content (an empty slot, or the LRU
  entry when the set is full) falls off the end, which *is* the
  eviction; no occupancy bookkeeping is needed

Throughput is proportional to the number of *concurrently* overflowing
sets: a trace that hammers one set degenerates to one record per round
and runs at interpreter speed, while spread pressure (the realistic
case — small direct-mapped or 2-way ablations) keeps whole rounds
dense.  Either way there is no scalar per-record replay and results
are bit-identical to the event-loop predictors.

The eviction *screen* lives here too (:func:`overflow_rows`) so every
kernel shares the same exact boundary rule: a set routes to this
kernel only when its no-eviction occupancy trajectory strictly exceeds
the way count — ``occupancy == ways`` fills the set without evicting
and stays on the closed-form path.
"""

import numpy as np

from repro.kernels import scan

_EMPTY = np.int64(-1)


def overflow_rows(set_ids, occupancy, ways):
    """Mask of records in sets whose occupancy ever exceeds ``ways``.

    ``occupancy`` is the no-eviction occupancy trajectory (valid up to
    the first eviction, which is exactly what the screen needs).
    Returns ``None`` when no set overflows.  The comparison is strict:
    a set that exactly fills its ways never evicts, so it keeps the
    closed-form answers.
    """
    overflowed = occupancy > ways
    if not overflowed.any():
        return None
    hot = np.unique(set_ids[overflowed])
    return np.isin(set_ids, hot)


def sbtb_evict(rows, set_ids, sites, takens, targets, ways, present,
               stored):
    """Replay overflowing SBTB sets; fixes ``present``/``stored``.

    Op table: hit & taken — move to MRU and store the new target;
    hit & not-taken — delete; miss & taken — insert (evicting the LRU
    entry when full); miss & not-taken — no-op.
    """
    _replay("sbtb", rows, set_ids, sites, takens, targets, ways,
            present=present, stored=stored)


def cbtb_evict(rows, set_ids, sites, takens, targets, ways, threshold,
               counter_max, present, pred_taken, stored):
    """Replay overflowing CBTB sets.

    Every hit moves the entry to MRU (the predict-path lookup refresh)
    and then bumps its counter in place — up saturating at
    ``counter_max`` on taken (also rewriting the target), down
    saturating at 0 otherwise.  Every miss allocates at
    ``threshold``/``threshold - 1``, evicting the LRU entry when full.
    """
    _replay("cbtb", rows, set_ids, sites, takens, targets, ways,
            present=present, stored=stored, pred_taken=pred_taken,
            threshold=threshold, counter_max=counter_max)


def store_evict(rows, set_ids, sites, takens, targets, refreshes, ways,
                present, stored):
    """Replay overflowing direction-scheme target-store sets.

    The predict path refreshes recency only when it performs a lookup
    (``refreshes``: non-conditionals, and conditionals whose direction
    predictor said taken); the update path inserts on taken.  Net ops:
    hit & (taken | refresh) — move (storing the target when taken);
    miss & taken — insert; anything else — no-op.
    """
    _replay("store", rows, set_ids, sites, takens, targets, ways,
            present=present, stored=stored, refreshes=refreshes)


def _replay(mode, rows, set_ids, sites, takens, targets, ways, *,
            present, stored, pred_taken=None, refreshes=None,
            threshold=0, counter_max=0):
    """Run the round-blocked LRU replay and scatter per-record results."""
    n = rows.shape[0]
    if n == 0:
        return
    r_sites = sites[rows]
    r_takens = takens[rows]
    r_targets = targets[rows]
    r_refresh = refreshes[rows] if refreshes is not None else None
    dense = np.unique(set_ids[rows], return_inverse=True)[1]
    n_sets = int(dense.max()) + 1

    # Round r = the r-th record of each overflowing set: position
    # within the set, then a stable sort by position (ties keep trace
    # order, though rows within a round are independent by
    # construction — one record per set).
    pos = scan.running_total(scan.Groups(dense),
                             np.ones(n, dtype=np.int32)) - 1
    round_order = np.argsort(pos, kind="stable")
    n_rounds = int(pos[round_order[-1]]) + 1
    bounds = np.searchsorted(pos[round_order],
                             np.arange(n_rounds + 1))

    w = int(ways)
    ar_w = np.arange(w, dtype=np.int64)
    g_noop = 1 + ar_w
    g_ins = 2 + ar_w
    g_ins[-1] = w + 1
    keys = np.full((n_sets, w), _EMPTY, dtype=np.int64)
    vals = np.zeros((n_sets, w), dtype=np.int64)
    cnts = (np.zeros((n_sets, w), dtype=np.int64)
            if mode == "cbtb" else None)

    for r in range(n_rounds):
        idx = round_order[bounds[r]:bounds[r + 1]]
        sel = dense[idx]
        s = r_sites[idx]
        tk = r_takens[idx]
        tg = r_targets[idx]
        m = idx.shape[0]
        rr = np.arange(m)

        board = keys[sel]
        match = board == s[:, None]
        hit = match.any(axis=1)
        way = np.argmax(match, axis=1)
        old_val = vals[sel][rr, way]

        out = rows[idx]
        present[out] = hit
        stored[out] = np.where(hit, old_val, 0)

        if mode == "sbtb":
            op_move = hit & tk
            op_del = hit & ~tk
            op_ins = ~hit & tk
        elif mode == "cbtb":
            old_cnt = cnts[sel][rr, way]
            pred_taken[out] = hit & (old_cnt >= threshold)
            op_move = hit
            op_del = np.zeros(m, dtype=bool)
            op_ins = ~hit
        else:
            op_move = hit & (tk | r_refresh[idx])
            op_del = np.zeros(m, dtype=bool)
            op_ins = ~hit & tk

        wcol = way[:, None]
        g_move = 1 + ar_w + (ar_w >= wcol)
        g_move[:, -1] = 1 + way
        g_del = np.where(ar_w <= wcol, ar_w, 1 + ar_w)
        gather = np.where(
            op_move[:, None], g_move,
            np.where(op_del[:, None], g_del,
                     np.where(op_ins[:, None], g_ins, g_noop)))

        aug = np.empty((m, w + 2), dtype=np.int64)
        aug[:, 0] = _EMPTY
        aug[:, 1:w + 1] = board
        aug[:, w + 1] = s
        keys[sel] = np.take_along_axis(aug, gather, axis=1)
        aug[:, 0] = 0
        aug[:, 1:w + 1] = vals[sel]
        aug[:, w + 1] = tg
        vals[sel] = np.take_along_axis(aug, gather, axis=1)

        if mode == "cbtb":
            aug[:, 1:w + 1] = cnts[sel]
            aug[:, w + 1] = np.where(tk, threshold, threshold - 1)
            cnts[sel] = np.take_along_axis(aug, gather, axis=1)
            # In-place counter walk of the touched (now MRU) entry.
            bumped = np.where(tk,
                              np.minimum(old_cnt + 1, counter_max),
                              np.maximum(old_cnt - 1, 0))
            cnts[sel[hit], -1] = bumped[hit]
            write = hit & tk
            vals[sel[write], -1] = tg[write]
        elif mode == "sbtb":
            vals[sel[op_move], -1] = tg[op_move]
        else:
            write = hit & tk
            vals[sel[write], -1] = tg[write]
