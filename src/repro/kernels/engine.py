"""Engine selection: scalar loop vs vectorized kernels.

Three engine names flow through ``simulate()``, the suite runner, and
the CLI's ``--engine`` flag:

* ``scalar`` — the record-at-a-time simulator (the reference).
* ``vector`` — the batch kernels of this package, with a scalar
  fallback only where no kernel exists or the run needs per-record
  hooks (``flush_interval``).
* ``auto`` — ``vector`` when a kernel exists and the trace has at
  least :data:`AUTO_THRESHOLD` records (array setup has a fixed cost
  that tiny traces never amortise), ``scalar`` otherwise.

The resolved choice is what telemetry reports and what run manifests
record; both engines are bit-identical in their results, so the choice
is purely a throughput decision.
"""

ENGINE_AUTO = "auto"
ENGINE_SCALAR = "scalar"
ENGINE_VECTOR = "vector"

ENGINES = (ENGINE_AUTO, ENGINE_SCALAR, ENGINE_VECTOR)

#: Records below which ``auto`` stays scalar: the crossover where
#: whole-trace array passes beat the per-record loop sits well under
#: this, but small traces are cheap either way and the scalar engine
#: additionally leaves the predictor object warm for inspection.
AUTO_THRESHOLD = 2048

_default_engine = ENGINE_AUTO


def get_default_engine():
    """The engine ``simulate()`` uses when none is passed."""
    return _default_engine


def set_default_engine(engine):
    """Set the process-wide default engine; returns the previous one.

    The CLI sets this from ``--engine`` so library code that calls
    ``simulate()`` without an engine argument (sweeps, ablations)
    follows the user's choice.
    """
    global _default_engine
    if engine not in ENGINES:
        raise ValueError("unknown engine %r (expected one of %s)"
                         % (engine, ", ".join(ENGINES)))
    previous = _default_engine
    _default_engine = engine
    return previous


def resolve_engine(engine, predictor, trace, flush_interval=None):
    """The engine a simulation will actually run on.

    Returns ``"scalar"`` or ``"vector"`` — never ``"auto"``.  The
    scalar engine wins whenever the vector engine cannot reproduce the
    run bit-for-bit or has nothing to accelerate: no kernel for the
    predictor type, a ``flush_interval`` (context-switch ablation)
    that needs a hook between records, or a predictor whose buffers
    are already warm (the closed forms assume an initial state).
    """
    from repro.kernels import is_pristine, supports

    if engine is None:
        engine = _default_engine
    if engine not in ENGINES:
        raise ValueError("unknown engine %r (expected one of %s)"
                         % (engine, ", ".join(ENGINES)))
    if (flush_interval is not None or not supports(predictor)
            or not is_pristine(predictor)):
        return ENGINE_SCALAR
    if engine == ENGINE_AUTO:
        return (ENGINE_VECTOR if len(trace) >= AUTO_THRESHOLD
                else ENGINE_SCALAR)
    return engine
