"""Chunked multi-process execution of the vector engine.

Splits an :class:`~repro.kernels.encode.EncodedTrace` into contiguous
segments, runs each segment's kernel work in parallel, and stitches
the boundaries *exactly*, so an N-chunk / N-worker run is bit-for-bit
the single-chunk run.  The classic two-phase scan parallelization,
lifted to whole predictors:

* **Phase 1 (parallel)** — each chunk is summarized in closed form:
  per-site tail state (last execution, last write), per-counter-index
  clamped-add compositions (:func:`repro.kernels.scan
  .segment_compositions`), and for gshare the head records whose table
  index still depends on the incoming history register plus the packed
  history tail.
* **Fold (coordinator, serial but tiny)** — the summaries are folded
  left to right, yielding each chunk's *entry carry*: the warm state a
  scalar simulator would have reached at that boundary — per-site
  presence/counter/target, the direction-table snapshot, the history
  register.  This is the "re-run a short warm tail" of the boundary,
  collapsed to closed form: composing the summaries replays exactly
  the records that could matter, without touching the records again.
* **Phase 2 (parallel)** — each chunk re-runs its records through the
  ordinary kernels seeded with its carry (``exclusive_states(...,
  inits=...)``), and reduces to a fixed-width tally vector; tallies
  merge by addition, reproducing ``assemble_stats`` and the cycle
  simulator's accounting bit-for-bit.

Cache sets that overflow are the one global coupling the carries do
not cover (LRU order mixes sites across chunk boundaries): the
coordinator screens for them globally (the same exact screen the
kernels use), excludes their records from every chunk tally, and runs
them once through the blocked eviction kernel
(:mod:`repro.kernels.evict`) — direction bits for those records come
back from phase 2, since the gshare/bimodal direction machinery is
tagless and therefore chunks cleanly even under store pressure.

Process mode ships chunks through
:func:`repro.resilience.supervisor.run_supervised` — the supervisor's
timeout / retry / partial-failure machinery — with the trace shared as
memory-mapped columnar storage (:func:`repro.kernels.encode
.save_columns`), so workers fault in only their own pages.  Workers
communicate results through ``.npz`` files in the scratch directory; a
chunk whose worker fails permanently is recomputed inline, so the
answer is always complete and identical.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.kernels import encode, evict, scan
from repro.vm.tracing import BranchClass

#: Tally vector layout: four scalars then three per-class blocks.
_T_TOTAL, _T_CORRECT, _T_ACCESSES, _T_MISSES = range(4)
_T_CLASS_TOTAL = 4      # 4 entries
_T_CLASS_CORRECT = 8    # 4 entries
_T_UNCOVERED = 12       # 4 entries
_T_WIDTH = 16


def plan_chunks(n, chunks):
    """Contiguous ``[start, stop)`` bounds covering ``n`` records."""
    chunks = max(1, min(int(chunks), max(int(n), 1)))
    edges = np.linspace(0, n, chunks + 1).astype(np.int64)
    return [(int(edges[i]), int(edges[i + 1]))
            for i in range(chunks) if edges[i + 1] > edges[i]]


def _family(predictor):
    from repro.predictors.bimodal import Bimodal
    from repro.predictors.cbtb import CounterBTB
    from repro.predictors.sbtb import SimpleBTB
    from repro.predictors.twolevel import GShare

    if type(predictor) is SimpleBTB:
        return "sbtb"
    if type(predictor) is CounterBTB:
        return "cbtb"
    if type(predictor) is GShare:
        return "gshare"
    if type(predictor) is Bimodal:
        return "bimodal"
    from repro.kernels import supports
    if supports(predictor):
        return "static"
    return None


def supports_chunked(predictor):
    """True when chunked execution can run ``predictor`` exactly."""
    from repro.kernels import is_pristine

    return _family(predictor) is not None and is_pristine(predictor)


# -- phase 1: per-chunk closed-form summaries ----------------------------


def _segment_layout(groups):
    """(start_rows, end_rows) of each segment in sorted order."""
    start_rows = np.nonzero(groups.starts)[0]
    ends = np.empty(start_rows.shape[0], dtype=np.int64)
    ends[:-1] = start_rows[1:] - 1
    ends[-1] = groups.n - 1
    return start_rows, ends


def _last_marked_per_segment(groups, marked_original):
    """Sorted-row index of each segment's last marked record, or -1."""
    start_rows, _ = _segment_layout(groups)
    rows = np.arange(groups.n, dtype=np.int64)
    value = np.where(marked_original[groups.order], rows, -1)
    return np.maximum.reduceat(value, start_rows)


def _summarize(predictor, enc):
    """Phase-1 closed-form summary of one chunk (dict of arrays)."""
    family = _family(predictor)
    if family == "static":
        return {}
    groups = enc.site_groups()
    start_rows, ends = _segment_layout(groups)
    sites_u = enc.sites[groups.order[start_rows]]
    summary = {"sites": sites_u}

    if family == "sbtb":
        last_rows = groups.order[ends]
        summary["last_taken"] = enc.takens[last_rows].astype(np.int8)
        summary["last_target"] = enc.targets[last_rows]
        return summary

    if family == "cbtb":
        n = len(enc)
        counter_max = predictor.counter_max
        threshold = predictor.threshold
        first_rows = groups.order[start_rows]
        delta = np.where(enc.takens, np.int32(1), np.int32(-1))
        low = np.zeros(n, dtype=np.int32)
        high = np.full(n, counter_max, dtype=np.int32)
        # Neutralize each site's chunk-first transition: the rest
        # composes once, then both "globally first" (allocation) and
        # "seen before" (saturating step) variants graft on in O(sites).
        ident = scan.identity()
        delta[first_rows], low[first_rows], high[first_rows] = ident
        comp_rest = scan.segment_compositions(groups, delta, low, high)
        tk_first = enc.takens[first_rows]
        step = (np.where(tk_first, np.int32(1), np.int32(-1)),
                np.zeros(len(sites_u), dtype=np.int32),
                np.full(len(sites_u), counter_max, dtype=np.int32))
        alloc_value = np.where(tk_first, np.int32(threshold),
                               np.int32(threshold - 1))
        alloc = (np.zeros(len(sites_u), dtype=np.int32), alloc_value,
                 alloc_value)
        for prefix, comp in (("seen", scan.compose(step, comp_rest)),
                             ("new", scan.compose(alloc, comp_rest))):
            summary["%s_d" % prefix] = comp[0]
            summary["%s_lo" % prefix] = comp[1]
            summary["%s_hi" % prefix] = comp[2]
        # Last write per site, again in both variants: an allocation
        # writes, so the "new" variant always has one.
        last_w_seen = _last_marked_per_segment(groups, enc.takens)
        wrote_new = enc.takens.copy()
        wrote_new[first_rows] = True
        last_w_new = _last_marked_per_segment(groups, wrote_new)
        summary["seen_has_write"] = (last_w_seen >= 0).astype(np.int8)
        summary["seen_target"] = np.where(
            last_w_seen >= 0,
            enc.targets[groups.order[np.maximum(last_w_seen, 0)]], 0)
        summary["new_target"] = enc.targets[groups.order[last_w_new]]
        return summary

    # gshare / bimodal: target store tail + direction-table summaries.
    last_taken = _last_marked_per_segment(groups, enc.takens)
    summary["has_taken"] = (last_taken >= 0).astype(np.int8)
    summary["taken_target"] = np.where(
        last_taken >= 0,
        enc.targets[groups.order[np.maximum(last_taken, 0)]], 0)

    conditional = enc.classes == BranchClass.CONDITIONAL
    cond_sites = enc.sites[conditional]
    cond_takens = enc.takens[conditional]
    count = cond_sites.shape[0]
    bits = predictor.history_bits if family == "gshare" else 0
    head = min(bits, count)
    summary["cond_count"] = np.int64(count)
    summary["head_sites"] = cond_sites[:head]
    summary["head_takens"] = cond_takens[:head].astype(np.int8)
    # Body records' table indices need only in-chunk history.
    history = np.zeros(count, dtype=np.int64)
    outcomes = cond_takens.astype(np.int64)
    for bit in range(min(bits, max(count - 1, 0))):
        history[bit + 1:] += outcomes[:count - (bit + 1)] << bit
    index = ((cond_sites[head:] ^ history[head:])
             & predictor.table_mask)
    index_groups = scan.Groups(index)
    body = count - head
    comps = scan.segment_compositions(
        index_groups,
        np.where(cond_takens[head:], np.int32(1), np.int32(-1)),
        np.zeros(body, dtype=np.int32),
        np.full(body, 3, dtype=np.int32))
    body_starts = np.nonzero(index_groups.starts)[0]
    summary["index"] = index[index_groups.order[body_starts]]
    summary["index_d"], summary["index_lo"], summary["index_hi"] = comps
    tail = min(bits, count)
    tail_outcomes = cond_takens[count - tail:][::-1].astype(np.int64)
    summary["tail_bits"] = np.int64(
        int((tail_outcomes << np.arange(tail)).sum()) if tail else 0)
    return summary


# -- fold: summaries -> per-chunk entry carries --------------------------


def _fold(predictor, summaries):
    """Fold phase-1 summaries left to right; per-chunk entry carries.

    The carry for chunk ``j`` is the boundary state after chunks
    ``0..j-1``: exactly what re-running the warm tail would leave
    behind, spliced from the closed-form summaries instead.
    """
    family = _family(predictor)
    if family == "static":
        return [{} for _ in summaries]
    carries = []
    state = {}      # site -> family-specific tuple
    if family in ("gshare", "bimodal"):
        table = np.full(predictor.table_mask + 1, 1, dtype=np.int32)
        bits = predictor.history_bits if family == "gshare" else 0
        hmask = (1 << bits) - 1
        history = 0
    for summary in summaries:
        sites = summary["sites"]
        carry = {}
        if family == "sbtb":
            entries = [state.get(site, (0, 0)) for site in
                       sites.tolist()]
            carry["enter_present"] = np.array(
                [taken for taken, _ in entries], dtype=np.int8)
            carry["enter_stored"] = np.array(
                [target for _, target in entries], dtype=np.int64)
            for position, site in enumerate(sites.tolist()):
                state[site] = (int(summary["last_taken"][position]),
                               int(summary["last_target"][position]))
        elif family == "cbtb":
            present = np.array([site in state for site in
                                sites.tolist()], dtype=bool)
            entries = [state.get(site, (0, 0)) for site in
                       sites.tolist()]
            carry["enter_present"] = present.astype(np.int8)
            carry["enter_counter"] = np.array(
                [counter for counter, _ in entries], dtype=np.int32)
            carry["enter_stored"] = np.array(
                [target for _, target in entries], dtype=np.int64)
            for position, site in enumerate(sites.tolist()):
                if present[position]:
                    counter, stored = state[site]
                    prefix = "seen"
                    if not summary["seen_has_write"][position]:
                        target = stored
                    else:
                        target = int(summary["seen_target"][position])
                else:
                    counter, prefix = 0, "new"
                    target = int(summary["new_target"][position])
                counter = int(min(max(
                    counter + summary["%s_d" % prefix][position],
                    summary["%s_lo" % prefix][position]),
                    summary["%s_hi" % prefix][position]))
                state[site] = (counter, target)
        else:
            entries = [state.get(site) for site in sites.tolist()]
            carry["enter_present"] = np.array(
                [entry is not None for entry in entries], dtype=np.int8)
            carry["enter_stored"] = np.array(
                [entry if entry is not None else 0
                 for entry in entries], dtype=np.int64)
            for position, site in enumerate(sites.tolist()):
                if summary["has_taken"][position]:
                    state[site] = int(summary["taken_target"][position])
            # Direction table: snapshot first, then advance — head
            # records sequentially (their indices need the incoming
            # history register), the body via its compositions.
            carry["enter_table"] = table.copy()
            carry["enter_history"] = np.int64(history)
            running = history
            for site, taken in zip(summary["head_sites"].tolist(),
                                   summary["head_takens"].tolist()):
                slot = (site ^ running) & predictor.table_mask
                step = 1 if taken else -1
                table[slot] = min(max(table[slot] + step, 0), 3)
                running = ((running << 1) | taken) & hmask
            index = summary["index"]
            table[index] = scan.apply_state(
                table[index], (summary["index_d"],
                               summary["index_lo"],
                               summary["index_hi"]))
            count = int(summary["cond_count"])
            tail_bits = int(summary["tail_bits"])
            if count >= bits:
                history = tail_bits
            else:
                history = ((history << count) | tail_bits) & hmask
        carries.append(carry)
    return carries


# -- phase 2: carry-seeded scoring ---------------------------------------


def _score(predictor, enc, carry):
    """Per-record ``(pred_taken, target_match, hit, direction)``.

    ``direction`` is None except for the direction schemes, where the
    coordinator needs it to replay overflowing store sets.
    """
    family = _family(predictor)
    if family == "static":
        from repro.kernels import kernel_for

        pred_taken, target_match, hit = kernel_for(predictor)(
            predictor, enc)
        return pred_taken, target_match, hit, None

    n = len(enc)
    groups = enc.site_groups()
    sites_u, inverse = enc.unique_sites()
    prev = scan.previous_index(groups)
    first = prev < 0
    safe_prev = np.maximum(prev, 0)

    if family == "sbtb":
        enter_present = carry["enter_present"].astype(bool)[inverse]
        present = np.where(first, enter_present,
                           enc.takens[safe_prev] & ~first)
        stored = np.where(first, carry["enter_stored"][inverse],
                          enc.targets[safe_prev])
        target_match = present & (stored == enc.targets)
        return present, target_match, present.astype(np.int8), None

    if family == "cbtb":
        enter_present = carry["enter_present"].astype(bool)[inverse]
        present = ~first | enter_present
        global_first = first & ~enter_present
        delta = np.where(enc.takens, np.int32(1), np.int32(-1))
        low = np.zeros(n, dtype=np.int32)
        high = np.full(n, predictor.counter_max, dtype=np.int32)
        allocated = np.where(enc.takens, np.int32(predictor.threshold),
                             np.int32(predictor.threshold - 1))
        delta[global_first] = 0
        low[global_first] = allocated[global_first]
        high[global_first] = allocated[global_first]
        counter = scan.exclusive_states(
            groups, delta, low, high, 0,
            inits=carry["enter_counter"][inverse])
        wrote = enc.takens | global_first
        last_write = scan.last_marked_index(groups, wrote)
        stored = np.where(
            last_write >= 0,
            enc.targets[np.maximum(last_write, 0)],
            np.where(enter_present, carry["enter_stored"][inverse], 0))
        pred_taken = present & (counter >= predictor.threshold)
        target_match = pred_taken & (stored == enc.targets)
        return (pred_taken, target_match, present.astype(np.int8),
                None)

    # gshare / bimodal: direction from the carried table snapshot,
    # presence/targets from the carried store tail.
    conditional = enc.classes == BranchClass.CONDITIONAL
    cond_sites = enc.sites[conditional]
    cond_takens = enc.takens[conditional]
    count = cond_sites.shape[0]
    bits = predictor.history_bits if family == "gshare" else 0
    history = np.zeros(count, dtype=np.int64)
    outcomes = cond_takens.astype(np.int64)
    for bit in range(min(bits, max(count - 1, 0))):
        history[bit + 1:] += outcomes[:count - (bit + 1)] << bit
    head = min(bits, count)
    if head:
        entry_history = int(carry["enter_history"])
        hmask = (1 << bits) - 1
        positions = np.arange(head, dtype=np.int64)
        history[:head] |= (entry_history << positions) & hmask
    index = (cond_sites ^ history) & predictor.table_mask
    counter = scan.exclusive_states(
        scan.Groups(index),
        np.where(cond_takens, np.int32(1), np.int32(-1)),
        np.zeros(count, dtype=np.int32),
        np.full(count, 3, dtype=np.int32),
        1, inits=carry["enter_table"][index])
    direction = np.ones(n, dtype=bool)
    direction[conditional] = counter >= 2

    last_taken = scan.last_marked_index(groups, enc.takens)
    enter_present = carry["enter_present"].astype(bool)[inverse]
    present = (last_taken >= 0) | enter_present
    stored = np.where(last_taken >= 0,
                      enc.targets[np.maximum(last_taken, 0)],
                      np.where(enter_present,
                               carry["enter_stored"][inverse], 0))
    pred_taken = present & direction
    target_match = pred_taken & (stored == enc.targets)
    return pred_taken, target_match, present.astype(np.int8), direction


def _tally(enc, triple, include):
    """Reduce per-record outcomes to the additive tally vector."""
    pred_taken, target_match, hit = triple
    correct = np.where(enc.takens, pred_taken & target_match,
                       ~pred_taken)
    classes = enc.classes.astype(np.int64)
    out = np.zeros(_T_WIDTH, dtype=np.int64)
    out[_T_TOTAL] = np.count_nonzero(include)
    out[_T_CORRECT] = np.count_nonzero(correct & include)
    out[_T_ACCESSES] = np.count_nonzero((hit >= 0) & include)
    out[_T_MISSES] = np.count_nonzero((hit == 0) & include)
    out[_T_CLASS_TOTAL:_T_CLASS_TOTAL + 4] = np.bincount(
        classes[include], minlength=4)
    out[_T_CLASS_CORRECT:_T_CLASS_CORRECT + 4] = np.bincount(
        classes[correct & include], minlength=4)
    out[_T_UNCOVERED:_T_UNCOVERED + 4] = np.bincount(
        classes[~correct & include], minlength=4)
    return out


def _score_chunk(predictor, enc, carry, hot_sets, chunk_start):
    """Phase-2 chunk work: tally + overflow-row direction bits."""
    pred_taken, target_match, hit, direction = _score(predictor, enc,
                                                      carry)
    include = np.ones(len(enc), dtype=bool)
    if hot_sets is not None and hot_sets.shape[0]:
        n_sets = _store_cache(predictor).n_sets
        excluded = np.isin(enc.sites % n_sets, hot_sets)
        include &= ~excluded
    else:
        excluded = np.zeros(len(enc), dtype=bool)
    result = {"tally": _tally(enc, (pred_taken, target_match, hit),
                              include)}
    rows = np.nonzero(excluded)[0]
    result["over_rows"] = rows + chunk_start
    if direction is not None:
        result["over_direction"] = direction[rows].astype(np.int8)
    return result


def _store_cache(predictor):
    """The predictor's target-store AssociativeCache."""
    cache = getattr(predictor, "_cache", None)
    if cache is None:
        cache = getattr(predictor, "_targets", None)
    return cache


# -- coordinator: screens and the global eviction replay -----------------


def _overflow_mask(predictor, enc):
    """Global overflow-row mask over ``enc`` (None when no eviction).

    The same exact per-family occupancy screens the kernels apply,
    evaluated once on the coordinator: eviction entangles sets across
    chunk boundaries, so their records bypass the chunk tallies and
    replay once through :mod:`repro.kernels.evict`.
    """
    family = _family(predictor)
    if family == "static" or len(enc) == 0:
        return None
    cache = _store_cache(predictor)
    set_ids = enc.sites % cache.n_sets
    groups = enc.site_groups()
    prev = scan.previous_index(groups)
    has_prev = prev >= 0
    if family == "sbtb":
        present = np.zeros(len(enc), dtype=bool)
        present[has_prev] = enc.takens[prev[has_prev]]
        delta = np.zeros(len(enc), dtype=np.int64)
        delta[enc.takens & ~present] = 1
        delta[~enc.takens & present] = -1
    elif family == "cbtb":
        delta = ~has_prev
    else:
        present = scan.last_marked_index(groups, enc.takens) >= 0
        delta = enc.takens & ~present
    occupancy = scan.running_total(enc.set_groups(cache.n_sets), delta)
    return evict.overflow_rows(set_ids, occupancy,
                               cache.associativity)


def _evict_tally(predictor, enc, rows, refreshes):
    """Replay overflow rows through the eviction kernel and tally."""
    family = _family(predictor)
    cache = _store_cache(predictor)
    n = len(enc)
    set_ids = enc.sites % cache.n_sets
    present = np.zeros(n, dtype=bool)
    stored = np.zeros(n, dtype=np.int64)
    if family == "sbtb":
        evict.sbtb_evict(rows, set_ids, enc.sites, enc.takens,
                         enc.targets, cache.associativity, present,
                         stored)
        pred_taken = present
    elif family == "cbtb":
        pred_taken = np.zeros(n, dtype=bool)
        evict.cbtb_evict(rows, set_ids, enc.sites, enc.takens,
                         enc.targets, cache.associativity,
                         predictor.threshold, predictor.counter_max,
                         present, pred_taken, stored)
    else:
        evict.store_evict(rows, set_ids, enc.sites, enc.takens,
                          enc.targets, refreshes, cache.associativity,
                          present, stored)
        # The refresh mask doubles as the direction array: for
        # conditionals the refresh bit *is* the predicted direction,
        # and for everything else both are True by convention.
        pred_taken = present & refreshes
    target_match = pred_taken & (stored == enc.targets)
    include = np.zeros(n, dtype=bool)
    include[rows] = True
    return _tally(enc, (pred_taken, target_match,
                        present.astype(np.int8)), include)


# -- execution modes -----------------------------------------------------


def _phase1_task(payload):
    enc = encode.load_columns(payload["store"], payload["start"],
                              payload["stop"])
    summary = _summarize(payload["predictor"], enc)
    np.savez(payload["out"], **summary)


def _phase2_task(payload):
    enc = encode.load_columns(payload["store"], payload["start"],
                              payload["stop"])
    with np.load(payload["carry"]) as carry_file:
        carry = {key: carry_file[key] for key in carry_file.files}
    hot = carry.pop("hot_sets", None)
    result = _score_chunk(payload["predictor"], enc, carry, hot,
                          payload["start"])
    np.savez(payload["out"], **result)


def _load_npz(path):
    with np.load(path) as data:
        return {key: data[key] for key in data.files}


def _run_supervised_phase(tag, payloads, task, workers, supervise):
    """Run one phase under the supervisor; inline-recompute failures."""
    from repro.resilience.supervisor import run_supervised

    tasks = [("%s-%d" % (tag, position), payload)
             for position, payload in enumerate(payloads)]
    run_supervised(tasks, task, workers=workers, **supervise)
    results = []
    for payload in payloads:
        out = Path(str(payload["out"]) if str(payload["out"]).endswith(
            ".npz") else str(payload["out"]) + ".npz")
        if out.exists():
            results.append(_load_npz(out))
        else:
            # Permanent worker failure: graceful degradation, the
            # chunk recomputes in-process so the run still completes.
            task(payload)
            results.append(_load_npz(out))
    return results


def chunked_tallies(predictor, sub, *, chunks=4, workers=None,
                    process=False, scratch=None, supervise=None,
                    bounds=None):
    """Merged tally vector for ``sub`` (an already-filtered encoding).

    Returns the additive tally of every record in ``sub``, computed in
    ``chunks`` segments, in-process (``process=False``) or on
    supervised worker processes.  ``bounds`` overrides the even split
    with explicit ``[start, stop)`` pairs — the property tests feed
    adversarial segmentations (single-record chunks, cuts inside
    branch bursts) through it.  The pairs are interpreted over the
    filtered record subsequence, clamped to it, and empty chunks are
    dropped (a caller tiling the unfiltered trace stays valid).
    """
    if not supports_chunked(predictor):
        raise ValueError("chunked execution unsupported for %r"
                         % type(predictor).__name__)
    n = len(sub)
    if n == 0:
        return np.zeros(_T_WIDTH, dtype=np.int64)
    if bounds is None:
        bounds = plan_chunks(n, chunks)
    else:
        bounds = [(max(int(start), 0), min(int(stop), n))
                  for start, stop in bounds]
        bounds = [(start, stop) for start, stop in bounds
                  if stop > start]
    if workers is None:
        workers = len(bounds)
    supervise = dict(supervise or {})
    supervise.setdefault("timeout", 120)

    mask = _overflow_mask(predictor, sub)
    cache = _store_cache(predictor)
    if mask is None:
        hot_sets = np.zeros(0, dtype=np.int64)
    else:
        set_ids = sub.sites % cache.n_sets
        hot_sets = np.unique(set_ids[np.nonzero(mask)[0]])

    if process:
        base = Path(scratch) if scratch is not None else Path(
            tempfile.mkdtemp(prefix="repro-chunked-"))
        base.mkdir(parents=True, exist_ok=True)
        store = encode.save_columns(sub, base / "trace")
        payloads = [
            {"store": str(store), "start": start, "stop": stop,
             "predictor": predictor,
             "out": str(base / ("p1_%d" % position))}
            for position, (start, stop) in enumerate(bounds)]
        summaries = _run_supervised_phase("chunk-p1", payloads,
                                          _phase1_task, workers,
                                          supervise)
        carries = _fold(predictor, summaries)
        payloads2 = []
        for position, (start, stop) in enumerate(bounds):
            carry_path = base / ("carry_%d.npz" % position)
            np.savez(carry_path, hot_sets=hot_sets,
                     **carries[position])
            payloads2.append(
                {"store": str(store), "start": start, "stop": stop,
                 "predictor": predictor, "carry": str(carry_path),
                 "out": str(base / ("p2_%d" % position))})
        results = _run_supervised_phase("chunk-p2", payloads2,
                                        _phase2_task, workers,
                                        supervise)
    else:
        pieces = [sub.select(slice(start, stop))
                  for start, stop in bounds]
        summaries = [_summarize(predictor, piece) for piece in pieces]
        carries = _fold(predictor, summaries)
        results = [
            _score_chunk(predictor, piece, carries[position], hot_sets,
                         bounds[position][0])
            for position, piece in enumerate(pieces)]

    tally = np.zeros(_T_WIDTH, dtype=np.int64)
    for result in results:
        tally += result["tally"]

    if mask is not None:
        rows = np.concatenate([result["over_rows"]
                               for result in results])
        order = np.argsort(rows, kind="stable")
        rows = rows[order]
        refreshes = None
        if _family(predictor) in ("gshare", "bimodal"):
            direction_bits = np.concatenate(
                [result["over_direction"] for result in results]
            )[order].astype(bool)
            conditional = sub.classes == BranchClass.CONDITIONAL
            refreshes = np.ones(n, dtype=bool)
            refreshes[rows] = ~conditional[rows] | direction_bits
        tally += _evict_tally(predictor, sub, rows, refreshes)

    from repro.telemetry.core import TELEMETRY
    if TELEMETRY.enabled:
        TELEMETRY.count("chunked.runs")
        TELEMETRY.count("chunked.chunks", len(bounds))
        TELEMETRY.event("chunked.run", predictor=predictor.name,
                        records=n, chunks=len(bounds), workers=workers,
                        mode="process" if process else "inline",
                        overflow_rows=0 if mask is None
                        else int(np.count_nonzero(mask)))
    return tally


# -- public results ------------------------------------------------------


def chunked_stats(predictor, trace, *, chunks=4, workers=None,
                  process=False, conditional_only=False,
                  ras_returns=True, scratch=None, supervise=None,
                  bounds=None):
    """``PredictionStats`` for ``trace``, computed in chunks.

    Bit-identical to ``simulate(predictor, trace)`` for every
    supported (pristine, kernel-backed) predictor, for every chunk
    count and worker count.
    """
    from repro.predictors.base import PredictionStats

    enc = encode.EncodedTrace.of(trace)
    returns_credited = 0
    if conditional_only:
        sub = enc.subset("conditional",
                         enc.classes == BranchClass.CONDITIONAL)
    elif ras_returns:
        is_return = enc.classes == BranchClass.RETURN
        returns_credited = int(np.count_nonzero(is_return))
        sub = (enc.subset("no-returns", ~is_return)
               if returns_credited else enc)
    else:
        sub = enc

    tally = chunked_tallies(predictor, sub, chunks=chunks,
                            workers=workers, process=process,
                            scratch=scratch, supervise=supervise,
                            bounds=bounds)
    stats = PredictionStats()
    stats.total = int(tally[_T_TOTAL])
    stats.correct = int(tally[_T_CORRECT])
    stats.buffer_accesses = int(tally[_T_ACCESSES])
    stats.buffer_misses = int(tally[_T_MISSES])
    for branch_class in range(4):
        total = int(tally[_T_CLASS_TOTAL + branch_class])
        correct = int(tally[_T_CLASS_CORRECT + branch_class])
        if total:
            stats.by_class_total[branch_class] = total
        if correct:
            stats.by_class_correct[branch_class] = correct
    if returns_credited:
        stats.total += returns_credited
        stats.correct += returns_credited
        stats.by_class_total[BranchClass.RETURN] = (
            stats.by_class_total.get(BranchClass.RETURN, 0)
            + returns_credited)
        stats.by_class_correct[BranchClass.RETURN] = (
            stats.by_class_correct.get(BranchClass.RETURN, 0)
            + returns_credited)
    return stats


def chunked_cycle_stats(config, predictor, trace, *, chunks=4,
                        workers=None, process=False, ras_returns=True,
                        scratch=None, supervise=None, bounds=None):
    """``CycleStats`` for ``trace``, computed in chunks.

    Bit-identical to ``CycleSimulator(config, predictor,
    ras_returns).run(trace)`` for every supported predictor.
    """
    from repro.pipeline.cycle_sim import CycleStats

    enc = encode.EncodedTrace.of(trace)
    sub = enc
    if ras_returns:
        is_return = enc.classes == BranchClass.RETURN
        if is_return.any():
            sub = enc.subset("no-returns", ~is_return)

    tally = chunked_tallies(predictor, sub, chunks=chunks,
                            workers=workers, process=process,
                            scratch=scratch, supervise=supervise,
                            bounds=bounds)
    conditional_penalty = config.k + config.l + config.m
    unconditional_penalty = config.k + config.l
    squashed_by_class = {}
    for code in range(4):
        count = int(tally[_T_UNCOVERED + code])
        if count:
            penalty = (conditional_penalty
                       if code == BranchClass.CONDITIONAL
                       else unconditional_penalty)
            squashed_by_class[code] = count * penalty
    squashed = sum(squashed_by_class.values())
    mispredictions = int(tally[_T_UNCOVERED:_T_UNCOVERED + 4].sum())
    fill = config.depth - 1
    instructions = trace.total_instructions
    return CycleStats(fill + instructions + squashed, instructions,
                      len(enc), squashed, mispredictions, fill,
                      squashed_by_class)
