"""Batch kernels for the direction-table schemes (gshare, bimodal).

Both schemes split cleanly into two independent machines:

* a **direction predictor** — tagless 2-bit counters, so no
  eviction ever: the counter walk is exact for the whole trace.  For
  gshare the table index needs the global history before each
  conditional record, which is just the previous ``history_bits``
  conditional outcomes packed into an integer — a handful of
  shift-and-add passes, no scan needed.  For bimodal the index is the
  site address masked.
* a **target store** — the same 256-entry BTB as the paper's schemes.
  Taken executions insert, nothing deletes, so while a set has not
  evicted, presence is "some earlier taken execution" and the stored
  target is the latest such execution's.  The eviction screen and the
  blocked replay (:mod:`repro.kernels.evict`) mirror
  :mod:`repro.kernels.tables`; the replay needs one extra input, the
  direction bit, because only predicted-taken conditionals touch (and
  therefore refresh) the store on the predict path.

Hit/miss accounting collapses nicely: in every predict case the hit
flag equals target-store presence (a confirmed lookup, a
predicted-taken lookup miss, or the not-taken path's ``contains``).
"""

import numpy as np

from repro.kernels import evict, scan
from repro.vm.tracing import BranchClass


def gshare_kernel(predictor, enc):
    conditional = enc.classes == BranchClass.CONDITIONAL
    direction = np.ones(len(enc), dtype=bool)
    direction[conditional] = _gshare_direction(predictor,
                                               enc.sites[conditional],
                                               enc.takens[conditional])
    return _with_target_store(predictor._targets, enc, conditional,
                              direction)


def bimodal_kernel(predictor, enc):
    conditional = enc.classes == BranchClass.CONDITIONAL
    index = enc.sites[conditional] & predictor.table_mask
    counter = _counter_scan(index, enc.takens[conditional])
    direction = np.ones(len(enc), dtype=bool)
    direction[conditional] = counter >= 2
    return _with_target_store(predictor._targets, enc, conditional,
                              direction)


def _gshare_direction(predictor, sites, takens):
    """Predicted direction of each conditional record."""
    n = sites.shape[0]
    # history before record k = the previous history_bits outcomes,
    # bit b holding outcome k-1-b.
    history = np.zeros(n, dtype=np.int64)
    outcomes = takens.astype(np.int64)
    # Bits beyond the record count never contribute (and a negative
    # slice bound would wrap), so stop at n - 1 shifts.
    for bit in range(min(predictor.history_bits, max(n - 1, 0))):
        history[bit + 1:] += outcomes[:n - (bit + 1)] << bit
    index = (sites ^ history) & predictor.table_mask
    return _counter_scan(index, takens) >= 2


def _counter_scan(index, takens):
    """Pre-record 2-bit counter values, per table index, init 1."""
    n = index.shape[0]
    delta = np.where(takens, np.int32(1), np.int32(-1))
    low = np.zeros(n, dtype=np.int32)
    high = np.full(n, 3, dtype=np.int32)
    return scan.exclusive_states(scan.Groups(index), delta, low, high,
                                 1)


def _with_target_store(cache, enc, conditional, direction):
    """Score records given per-record direction predictions.

    ``direction`` is True for non-conditional records (their predicted
    direction is presence itself), so uniformly:
    predicted-taken = present & direction, hit = present.
    """
    n = len(enc)
    sites, takens, targets = enc.sites, enc.takens, enc.targets

    site_groups = enc.site_groups()
    last_taken = scan.last_marked_index(site_groups, takens)
    present = last_taken >= 0
    stored = np.zeros(n, dtype=np.int64)
    stored[present] = targets[last_taken[present]]

    # Eviction screen: only a first taken execution allocates, nothing
    # deletes, so occupancy is the running count of those events.
    set_ids = sites % cache.n_sets
    allocates = takens & ~present
    occupancy = scan.running_total(enc.set_groups(cache.n_sets),
                                   allocates)
    mask = evict.overflow_rows(set_ids, occupancy, cache.associativity)
    if mask is not None:
        refreshes = ~conditional | direction
        evict.store_evict(np.nonzero(mask)[0], set_ids, sites, takens,
                          targets, refreshes, cache.associativity,
                          present, stored)

    pred_taken = present & direction
    target_match = pred_taken & (stored == targets)
    return pred_taken, target_match, present.astype(np.int8)
