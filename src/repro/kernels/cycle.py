"""Vectorized cycle-level simulation.

The scalar :class:`~repro.pipeline.cycle_sim.CycleSimulator` replays a
trace record-at-a-time against a live predictor; because the modeled
machine never stalls for anything but branch squashes, its entire
event loop collapses into array passes:

1. **Squash classes** — run the predictor's batch kernel
   (:func:`repro.kernels.kernel_for`) over the encoded trace: the
   per-record ``(pred_taken, target_match)`` pair decides coverage
   exactly as ``is_correct`` does, so ``uncovered`` records are known
   without stepping the machine.
2. **Cycle accounting** — each uncovered record pays a fixed,
   class-determined penalty (``k + l + m`` for conditionals resolved
   at execute, ``k + l`` for the rest resolved at decode), so the
   squash totals are segmented sums over the class axis (a bincount —
   the degenerate prefix-scan where only the final per-segment value
   is kept), and ``cycles = (depth - 1) + instructions + squashed`` in
   closed form.

Bit-identity with the event loop is the contract: the
``tests/test_cycle_kernel_equivalence.py`` battery and the conformance
harness cross-check every field, including the key-presence semantics
of ``squashed_by_class`` (a class appears exactly when at least one of
its records went uncovered, even at zero penalty).
"""

import numpy as np

from repro.kernels.encode import EncodedTrace
from repro.vm.tracing import BranchClass


def cycle_kernel(config, predictor, trace, ras_returns=True):
    """Raw cycle accounting for ``trace``; returns a plain dict.

    The caller (:class:`~repro.pipeline.cycle_sim.CycleSimulator`)
    wraps the result in :class:`~repro.pipeline.cycle_sim.CycleStats`;
    keeping this module free of pipeline imports avoids a cycle.
    """
    from repro.kernels import kernel_for

    enc = EncodedTrace.of(trace)
    # With the return-address mechanism the scalar loop never shows
    # return records to the predictor, so the kernel must evolve its
    # buffers over the same no-returns subsequence.
    sub = enc
    if ras_returns:
        is_return = enc.classes == BranchClass.RETURN
        if is_return.any():
            sub = enc.subset("no-returns", ~is_return)
    if len(sub):
        pred_taken, target_match, _hit = kernel_for(predictor)(
            predictor, sub)
        covered = np.where(sub.takens, pred_taken & target_match,
                           ~pred_taken)
        uncovered = ~covered
        counts = np.bincount(sub.classes[uncovered], minlength=4)
    else:
        uncovered = np.zeros(0, dtype=bool)
        counts = np.zeros(4, dtype=np.int64)
    conditional_penalty = config.k + config.l + config.m
    unconditional_penalty = config.k + config.l
    squashed_by_class = {}
    for code, count in enumerate(counts.tolist()):
        if count:
            penalty = (conditional_penalty
                       if code == BranchClass.CONDITIONAL
                       else unconditional_penalty)
            squashed_by_class[code] = count * penalty
    squashed = sum(squashed_by_class.values())

    fill = config.depth - 1
    instructions = trace.total_instructions
    return {
        "cycles": fill + instructions + squashed,
        "instructions": instructions,
        "branches": len(enc),
        "squashed_cycles": squashed,
        "mispredictions": int(np.count_nonzero(uncovered)),
        "fill_cycles": fill,
        "squashed_by_class": squashed_by_class,
    }
