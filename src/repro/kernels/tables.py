"""Batch kernels for the paper's associative-table schemes.

Both BTB kernels exploit the same structure: while no cache set has
ever evicted, buffer contents are a pure function of each site's own
history, so presence, counters, and stored targets all come from the
segmented scans in :mod:`repro.kernels.scan`:

* **SBTB** — an entry exists for a site exactly when the site's
  previous execution was taken (taken inserts/refreshes, not-taken
  deletes), and its target is whatever that execution wrote.
* **CBTB** — an entry exists once the site has executed at all (first
  execution allocates, nothing deletes), its counter follows the
  site's private saturating walk, and its target is the last
  allocation-or-taken write.

Eviction is detected exactly, per set, from the same closed forms: the
no-eviction occupancy trajectory coincides with the real one up to the
first eviction, and that first eviction is precisely the first record
where the trajectory would exceed the set's way count.  Sets that
never cross the line keep the closed-form answers; sets that do are
re-simulated together by the blocked LRU replay in
:mod:`repro.kernels.evict` — vectorized across all overflowing sets,
bit-identical to the AssociativeCache recency contract.  The paper's
configuration — 256 entries, fully associative, against benchmarks
with at most a couple hundred static branch sites — never overflows,
so the eviction path is exercised by the small-buffer ablations and
the equivalence tests, not the headline workload.

Each kernel returns ``(pred_taken, target_match, hit)`` arrays over
the encoded records; scoring and aggregation live in
:mod:`repro.kernels.aggregate`.
"""

import numpy as np

from repro.kernels import evict, scan


def sbtb_kernel(predictor, enc):
    """SimpleBTB: present iff the previous execution was taken."""
    cache = predictor._cache
    n = len(enc)
    sites, takens, targets = enc.sites, enc.takens, enc.targets

    site_groups = enc.site_groups()
    prev = scan.previous_index(site_groups)
    has_prev = prev >= 0
    present = np.zeros(n, dtype=bool)
    present[has_prev] = takens[prev[has_prev]]
    stored = np.zeros(n, dtype=np.int64)
    stored[has_prev] = targets[prev[has_prev]]

    # Eviction screen: +1 on allocation, -1 on deletion, per set.
    set_ids = sites % cache.n_sets
    delta = np.zeros(n, dtype=np.int64)
    delta[takens & ~present] = 1
    delta[~takens & present] = -1
    occupancy = scan.running_total(enc.set_groups(cache.n_sets), delta)
    mask = evict.overflow_rows(set_ids, occupancy, cache.associativity)
    if mask is not None:
        evict.sbtb_evict(np.nonzero(mask)[0], set_ids, sites, takens,
                         targets, cache.associativity, present, stored)

    target_match = present & (stored == targets)
    return present, target_match, present.astype(np.int8)


def cbtb_kernel(predictor, enc):
    """CounterBTB: presence from first execution, counters scanned."""
    cache = predictor._cache
    threshold = predictor.threshold
    counter_max = predictor.counter_max
    n = len(enc)
    sites, takens, targets = enc.sites, enc.takens, enc.targets

    site_groups = enc.site_groups()
    prev = scan.previous_index(site_groups)
    present = prev >= 0
    is_first = ~present

    # Counter before each execution, via the per-site saturating walk.
    # The allocating first execution is a constant map (insert
    # overwrites whatever the state "was"), so init_state is moot.
    delta = np.where(takens, np.int32(1), np.int32(-1))
    low = np.zeros(n, dtype=np.int32)
    high = np.full(n, counter_max, dtype=np.int32)
    allocated = np.where(takens, np.int32(threshold),
                         np.int32(threshold - 1))
    delta[is_first] = 0
    low[is_first] = allocated[is_first]
    high[is_first] = allocated[is_first]
    counter = scan.exclusive_states(site_groups, delta, low, high, 0)

    # Stored target: written at allocation and on every taken update.
    wrote = takens | is_first
    last_write = scan.last_marked_index(site_groups, wrote)
    has_write = last_write >= 0
    stored = np.zeros(n, dtype=np.int64)
    stored[has_write] = targets[last_write[has_write]]

    pred_taken = present & (counter >= threshold)

    # Eviction screen: occupancy only grows (allocation per distinct
    # site, no deletion), so a set overflows iff its distinct-site
    # count ever exceeds the way count.
    set_ids = sites % cache.n_sets
    occupancy = scan.running_total(enc.set_groups(cache.n_sets),
                                   is_first)
    mask = evict.overflow_rows(set_ids, occupancy, cache.associativity)
    if mask is not None:
        evict.cbtb_evict(np.nonzero(mask)[0], set_ids, sites, takens,
                         targets, cache.associativity, threshold,
                         counter_max, present, pred_taken, stored)

    target_match = pred_taken & (stored == targets)
    return pred_taken, target_match, present.astype(np.int8)
