"""Semantic analysis for Minic.

Performs, in order:

1. constant folding over the whole AST (literal arithmetic, trivial
   identities) — the only "optimization" the paper's results depend on
   is that the compiled code is reasonable, not bloated;
2. symbol resolution and checking: duplicate definitions, undeclared
   names, scalar/array misuse, call arity, break/continue placement;
3. construction of the symbol tables the code generator consumes.

The analysis returns a :class:`UnitInfo` with global layout and
per-function scope information.
"""

from repro.lang import ast

BUILTINS = {
    # name -> (number of arguments, returns a value)
    "getc": (1, True),
    "putc": (1, False),
    "puti": (1, False),
}


class SemanticError(Exception):
    """Raised on semantically invalid Minic programs."""

    def __init__(self, message, line):
        super().__init__("line %d: %s" % (line, message))
        self.line = line


class GlobalSymbol:
    """A global scalar or array placed in data memory."""

    __slots__ = ("name", "offset", "size", "is_array", "init")

    def __init__(self, name, offset, size, is_array, init):
        self.name = name
        self.offset = offset
        self.size = size
        self.is_array = is_array
        self.init = init


class FunctionInfo:
    """Scope information for one function."""

    __slots__ = ("name", "params", "local_arrays", "definition")

    def __init__(self, name, params, definition):
        self.name = name
        self.params = params
        self.local_arrays = {}  # name -> GlobalSymbol (static storage)
        self.definition = definition


class UnitInfo:
    """Result of semantic analysis."""

    def __init__(self):
        self.globals = {}     # name -> GlobalSymbol
        self.functions = {}   # name -> FunctionInfo
        self.globals_size = 0


# --- constant folding -----------------------------------------------------


def _fold_unary(op, value, line):
    if op == "-":
        return ast.IntLit(-value, line)
    if op == "!":
        return ast.IntLit(0 if value else 1, line)
    return ast.IntLit(~value, line)


def _fold_binary(op, left, right, line):
    if op == "/":
        if right == 0:
            return None  # leave for runtime
        quotient = abs(left) // abs(right)
        value = quotient if (left < 0) == (right < 0) else -quotient
    elif op == "%":
        if right == 0:
            return None
        remainder = abs(left) % abs(right)
        value = remainder if left >= 0 else -remainder
    elif op == "+":
        value = left + right
    elif op == "-":
        value = left - right
    elif op == "*":
        value = left * right
    elif op == "<<":
        value = left << (right & 63)
    elif op == ">>":
        value = left >> (right & 63)
    elif op == "&":
        value = left & right
    elif op == "|":
        value = left | right
    elif op == "^":
        value = left ^ right
    elif op == "==":
        value = 1 if left == right else 0
    elif op == "!=":
        value = 1 if left != right else 0
    elif op == "<":
        value = 1 if left < right else 0
    elif op == "<=":
        value = 1 if left <= right else 0
    elif op == ">":
        value = 1 if left > right else 0
    elif op == ">=":
        value = 1 if left >= right else 0
    elif op == "&&":
        value = 1 if left and right else 0
    else:  # "||"
        value = 1 if left or right else 0
    return ast.IntLit(value, line)


def fold_expr(expr):
    """Recursively fold constant subexpressions; returns a new/old node."""
    if isinstance(expr, ast.Unary):
        operand = fold_expr(expr.operand)
        if isinstance(operand, ast.IntLit):
            return _fold_unary(expr.op, operand.value, expr.line)
        expr.operand = operand
        return expr
    if isinstance(expr, ast.Binary):
        left = fold_expr(expr.left)
        right = fold_expr(expr.right)
        if isinstance(left, ast.IntLit) and isinstance(right, ast.IntLit):
            folded = _fold_binary(expr.op, left.value, right.value, expr.line)
            if folded is not None:
                return folded
        expr.left = left
        expr.right = right
        return expr
    if isinstance(expr, ast.Index):
        expr.index = fold_expr(expr.index)
        return expr
    if isinstance(expr, ast.Call):
        expr.args = [fold_expr(argument) for argument in expr.args]
        return expr
    return expr


def fold_statement(statement):
    """Fold constants inside a statement tree, in place where possible."""
    if isinstance(statement, ast.Block):
        statement.statements = [fold_statement(s) for s in statement.statements]
    elif isinstance(statement, ast.LocalDecl):
        if statement.init is not None:
            statement.init = fold_expr(statement.init)
    elif isinstance(statement, ast.Assign):
        statement.target = fold_expr(statement.target)
        statement.value = fold_expr(statement.value)
    elif isinstance(statement, ast.If):
        statement.cond = fold_expr(statement.cond)
        statement.then_branch = fold_statement(statement.then_branch)
        if statement.else_branch is not None:
            statement.else_branch = fold_statement(statement.else_branch)
    elif isinstance(statement, ast.While):
        statement.cond = fold_expr(statement.cond)
        statement.body = fold_statement(statement.body)
    elif isinstance(statement, ast.DoWhile):
        statement.cond = fold_expr(statement.cond)
        statement.body = fold_statement(statement.body)
    elif isinstance(statement, ast.For):
        if statement.init is not None:
            statement.init = fold_statement(statement.init)
        if statement.cond is not None:
            statement.cond = fold_expr(statement.cond)
        if statement.step is not None:
            statement.step = fold_statement(statement.step)
        statement.body = fold_statement(statement.body)
    elif isinstance(statement, ast.Switch):
        statement.expr = fold_expr(statement.expr)
        for case in statement.cases:
            case.body = [fold_statement(s) for s in case.body]
    elif isinstance(statement, ast.Return):
        if statement.value is not None:
            statement.value = fold_expr(statement.value)
    elif isinstance(statement, ast.ExprStmt):
        statement.expr = fold_expr(statement.expr)
    return statement


# --- checking ----------------------------------------------------------------


class _Checker:
    """Walks a function body validating name uses and control placement."""

    def __init__(self, unit_info, function_info):
        self.unit = unit_info
        self.function = function_info
        self.scalars = set(function_info.params)
        self.loop_depth = 0
        self.switch_depth = 0

    def error(self, message, line):
        raise SemanticError("%s (in function %s)" % (message, self.function.name),
                            line)

    # name classification -------------------------------------------------

    def is_scalar(self, name):
        if name in self.scalars:
            return True
        symbol = self.unit.globals.get(name)
        return symbol is not None and not symbol.is_array

    def is_array(self, name):
        if name in self.function.local_arrays:
            return True
        symbol = self.unit.globals.get(name)
        return symbol is not None and symbol.is_array

    def known(self, name):
        return (name in self.scalars or name in self.function.local_arrays
                or name in self.unit.globals)

    # statements --------------------------------------------------------------

    def check_statement(self, statement):
        if isinstance(statement, ast.Block):
            for child in statement.statements:
                self.check_statement(child)
        elif isinstance(statement, ast.LocalDecl):
            name = statement.name
            if name in self.scalars or name in self.function.local_arrays:
                self.error("duplicate local %r" % name, statement.line)
            if statement.is_array:
                if statement.size <= 0:
                    self.error("array %r must have positive size" % name,
                               statement.line)
                self.function.local_arrays[name] = None  # storage assigned later
            else:
                self.scalars.add(name)
                if statement.init is not None:
                    self.check_expr(statement.init)
        elif isinstance(statement, ast.Assign):
            target = statement.target
            if isinstance(target, ast.Var):
                if not self.known(target.name):
                    self.error("assignment to undeclared %r" % target.name,
                               target.line)
                if self.is_array(target.name):
                    self.error("array %r assigned without index" % target.name,
                               target.line)
            else:
                if not self.is_array(target.name):
                    self.error("%r indexed but not an array" % target.name,
                               target.line)
                self.check_expr(target.index)
            self.check_expr(statement.value)
        elif isinstance(statement, ast.If):
            self.check_expr(statement.cond)
            self.check_statement(statement.then_branch)
            if statement.else_branch is not None:
                self.check_statement(statement.else_branch)
        elif isinstance(statement, (ast.While, ast.DoWhile)):
            self.check_expr(statement.cond)
            self.loop_depth += 1
            self.check_statement(statement.body)
            self.loop_depth -= 1
        elif isinstance(statement, ast.For):
            if statement.init is not None:
                self.check_statement(statement.init)
            if statement.cond is not None:
                self.check_expr(statement.cond)
            if statement.step is not None:
                self.check_statement(statement.step)
            self.loop_depth += 1
            self.check_statement(statement.body)
            self.loop_depth -= 1
        elif isinstance(statement, ast.Switch):
            self.check_expr(statement.expr)
            seen_values = set()
            for case in statement.cases:
                for value in case.values:
                    if value in seen_values:
                        self.error("duplicate case value %d" % value, case.line)
                    seen_values.add(value)
            self.switch_depth += 1
            for case in statement.cases:
                for child in case.body:
                    self.check_statement(child)
            self.switch_depth -= 1
        elif isinstance(statement, ast.Break):
            if self.loop_depth == 0 and self.switch_depth == 0:
                self.error("break outside loop or switch", statement.line)
        elif isinstance(statement, ast.Continue):
            if self.loop_depth == 0:
                self.error("continue outside loop", statement.line)
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                self.check_expr(statement.value)
        elif isinstance(statement, ast.ExprStmt):
            self.check_expr(statement.expr)
        else:  # pragma: no cover
            self.error("unknown statement %r" % statement, statement.line)

    # expressions -----------------------------------------------------------------

    def check_expr(self, expr):
        if isinstance(expr, ast.IntLit):
            return
        if isinstance(expr, ast.Var):
            if not self.known(expr.name):
                self.error("use of undeclared %r" % expr.name, expr.line)
            if self.is_array(expr.name):
                self.error("array %r used without index" % expr.name, expr.line)
            return
        if isinstance(expr, ast.Index):
            if not self.is_array(expr.name):
                self.error("%r indexed but not an array" % expr.name, expr.line)
            self.check_expr(expr.index)
            return
        if isinstance(expr, ast.Call):
            self.check_call(expr)
            return
        if isinstance(expr, ast.Unary):
            self.check_expr(expr.operand)
            return
        if isinstance(expr, ast.Binary):
            self.check_expr(expr.left)
            self.check_expr(expr.right)
            return
        self.error("unknown expression %r" % expr, expr.line)  # pragma: no cover

    def check_call(self, call):
        if call.name in BUILTINS:
            arity, _ = BUILTINS[call.name]
            if len(call.args) != arity:
                self.error("%s() takes %d argument(s)" % (call.name, arity),
                           call.line)
            if call.name == "getc" and not isinstance(call.args[0], ast.IntLit):
                self.error("getc() stream must be a constant", call.line)
            for argument in call.args:
                self.check_expr(argument)
            return
        target = self.unit.functions.get(call.name)
        if target is None:
            self.error("call to undefined function %r" % call.name, call.line)
        if len(call.args) != len(target.params):
            self.error(
                "%s() takes %d argument(s), got %d"
                % (call.name, len(target.params), len(call.args)),
                call.line,
            )
        for argument in call.args:
            self.check_expr(argument)


def analyze(unit):
    """Analyze a folded translation unit; returns :class:`UnitInfo`.

    Mutates the AST in place (constant folding) and assigns static
    storage for globals and local arrays.
    """
    info = UnitInfo()

    for declaration in unit.globals:
        if declaration.name in info.globals:
            raise SemanticError("duplicate global %r" % declaration.name,
                                declaration.line)
        size, init = _global_layout(declaration)
        symbol = GlobalSymbol(declaration.name, info.globals_size, size,
                              declaration.is_array, init)
        info.globals[declaration.name] = symbol
        info.globals_size += size

    for function in unit.functions:
        if function.name in info.functions or function.name in BUILTINS:
            raise SemanticError("duplicate function %r" % function.name,
                                function.line)
        if function.name in info.globals:
            raise SemanticError(
                "function %r collides with a global" % function.name,
                function.line)
        if len(set(function.params)) != len(function.params):
            raise SemanticError("duplicate parameter in %r" % function.name,
                                function.line)
        info.functions[function.name] = FunctionInfo(
            function.name, list(function.params), function)

    if "main" not in info.functions:
        raise SemanticError("program has no main()", unit.line)
    if info.functions["main"].params:
        raise SemanticError("main() takes no parameters",
                            info.functions["main"].definition.line)

    for function in unit.functions:
        function.body = fold_statement(function.body)
        checker = _Checker(info, info.functions[function.name])
        checker.check_statement(function.body)
        # Assign static storage for local arrays found during checking.
        function_info = info.functions[function.name]
        for name in sorted(function_info.local_arrays):
            if function_info.local_arrays[name] is not None:
                continue
            size = _find_local_array_size(function.body, name)
            symbol = GlobalSymbol("%s.%s" % (function.name, name),
                                  info.globals_size, size, True, None)
            function_info.local_arrays[name] = symbol
            info.globals_size += size

    return info


def _global_layout(declaration):
    """Compute (words, initial values) for a global declaration."""
    if not declaration.is_array:
        init = declaration.init if declaration.init is not None else 0
        if not isinstance(init, int):
            raise SemanticError("scalar initializer must be a constant",
                                declaration.line)
        return 1, init
    init = declaration.init or []
    size = declaration.size
    if size == -1:
        size = len(init)
        if size == 0:
            raise SemanticError(
                "array %r has neither size nor initializer" % declaration.name,
                declaration.line)
    if size <= 0:
        raise SemanticError("array %r must have positive size" % declaration.name,
                            declaration.line)
    if len(init) > size:
        raise SemanticError(
            "initializer longer than array %r" % declaration.name,
            declaration.line)
    return size, list(init)


def _find_local_array_size(statement, name):
    """Locate the LocalDecl for ``name`` and return its size."""
    if isinstance(statement, ast.LocalDecl):
        if statement.name == name and statement.is_array:
            return statement.size
        return None
    children = []
    if isinstance(statement, ast.Block):
        children = statement.statements
    elif isinstance(statement, ast.If):
        children = [statement.then_branch]
        if statement.else_branch is not None:
            children.append(statement.else_branch)
    elif isinstance(statement, (ast.While, ast.DoWhile)):
        children = [statement.body]
    elif isinstance(statement, ast.For):
        children = [child for child in
                    (statement.init, statement.step, statement.body)
                    if child is not None]
    elif isinstance(statement, ast.Switch):
        children = [child for case in statement.cases for child in case.body]
    for child in children:
        size = _find_local_array_size(child, name)
        if size is not None:
            return size
    return None
