"""Minic: a small C-like language and its optimizing compiler.

Minic stands in for the C subset the IMPACT compiler consumed in the
paper.  The ten benchmark programs of the suite are written in Minic and
compiled to the intermediate ISA of :mod:`repro.isa`.

Language summary::

    // comments, /* block comments */
    int g;                      // global scalar (zero initialised)
    int table[8] = {1,2,3};     // global array, trailing zeros implied
    int msg[] = "hi";           // char-code array + NUL terminator

    int add(int a, int b) { return a + b; }

    int main() {
        int i;                  // scalar locals live in registers
        int buf[64];            // local arrays get static storage
        for (i = 0; i < 10; i = i + 1) {
            if (i % 2 == 0 && i != 4) putc('0' + i);
        }
        while (1) { break; }
        do { i = i - 1; } while (i > 0);
        switch (i) {            // dense switches become jump tables
            case 0: case 1: return 1;
            default: break;
        }
        return 0;
    }

Builtins: ``getc(stream)`` reads one byte from input stream ``stream``
(a compile-time constant; -1 at end), ``putc(c)`` writes a byte,
``puti(n)`` writes a decimal number.

All values are integers (Python-width; shifts are masked to 64 bits by
the VM).  There are no pointers; programs index global arrays instead,
in the style of early C.  Local arrays have static storage, so functions
that declare them must not recurse (the compiler does not check this).
"""

from repro.lang.lexer import tokenize, Token, LexerError
from repro.lang.parser import parse, ParseError
from repro.lang.semantics import analyze, SemanticError
from repro.lang.compiler import compile_source, CompileError

__all__ = [
    "tokenize",
    "Token",
    "LexerError",
    "parse",
    "ParseError",
    "analyze",
    "SemanticError",
    "compile_source",
    "CompileError",
]
