"""Abstract syntax tree node types for Minic.

Nodes are plain classes with positional constructors; every node keeps
the source ``line`` that produced it for diagnostics.
"""


class Node:
    """Base class for all AST nodes."""

    __slots__ = ("line",)

    def __init__(self, line):
        self.line = line


# --- top level ------------------------------------------------------------


class TranslationUnit(Node):
    """A whole Minic source file."""

    __slots__ = ("globals", "functions")

    def __init__(self, globals_, functions, line=1):
        super().__init__(line)
        self.globals = globals_
        self.functions = functions


class GlobalDecl(Node):
    """``int name;``, ``int name = 3;``, ``int name[N] = {...};``

    size is None for scalars; -1 for arrays whose size is inferred from
    the initializer.  init is None, an int, or a list of ints.
    """

    __slots__ = ("name", "size", "init")

    def __init__(self, name, size, init, line):
        super().__init__(line)
        self.name = name
        self.size = size
        self.init = init

    @property
    def is_array(self):
        return self.size is not None


class FuncDef(Node):
    """A function definition: all params and the return type are int."""

    __slots__ = ("name", "params", "body")

    def __init__(self, name, params, body, line):
        super().__init__(line)
        self.name = name
        self.params = params
        self.body = body


# --- statements --------------------------------------------------------------


class Block(Node):
    __slots__ = ("statements",)

    def __init__(self, statements, line):
        super().__init__(line)
        self.statements = statements


class LocalDecl(Node):
    """``int x;`` / ``int x = e;`` / ``int buf[N];`` inside a function."""

    __slots__ = ("name", "size", "init")

    def __init__(self, name, size, init, line):
        super().__init__(line)
        self.name = name
        self.size = size
        self.init = init

    @property
    def is_array(self):
        return self.size is not None


class Assign(Node):
    """``name = e;`` or ``name[i] = e;`` — target is Var or Index."""

    __slots__ = ("target", "value")

    def __init__(self, target, value, line):
        super().__init__(line)
        self.target = target
        self.value = value


class If(Node):
    __slots__ = ("cond", "then_branch", "else_branch")

    def __init__(self, cond, then_branch, else_branch, line):
        super().__init__(line)
        self.cond = cond
        self.then_branch = then_branch
        self.else_branch = else_branch


class While(Node):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body, line):
        super().__init__(line)
        self.cond = cond
        self.body = body


class DoWhile(Node):
    __slots__ = ("body", "cond")

    def __init__(self, body, cond, line):
        super().__init__(line)
        self.body = body
        self.cond = cond


class For(Node):
    """``for (init; cond; step) body`` — init/step are statements or None,
    cond is an expression or None (None means forever)."""

    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body, line):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class SwitchCase(Node):
    """One ``case``/``default`` group; execution falls through to the
    next group unless the body breaks (C semantics)."""

    __slots__ = ("values", "is_default", "body")

    def __init__(self, values, is_default, body, line):
        super().__init__(line)
        self.values = values
        self.is_default = is_default
        self.body = body


class Switch(Node):
    __slots__ = ("expr", "cases")

    def __init__(self, expr, cases, line):
        super().__init__(line)
        self.expr = expr
        self.cases = cases


class Break(Node):
    __slots__ = ()


class Continue(Node):
    __slots__ = ()


class Return(Node):
    __slots__ = ("value",)

    def __init__(self, value, line):
        super().__init__(line)
        self.value = value


class ExprStmt(Node):
    __slots__ = ("expr",)

    def __init__(self, expr, line):
        super().__init__(line)
        self.expr = expr


# --- expressions -----------------------------------------------------------------


class IntLit(Node):
    __slots__ = ("value",)

    def __init__(self, value, line):
        super().__init__(line)
        self.value = value


class Var(Node):
    __slots__ = ("name",)

    def __init__(self, name, line):
        super().__init__(line)
        self.name = name


class Index(Node):
    """``name[expr]`` — arrays are always named directly."""

    __slots__ = ("name", "index")

    def __init__(self, name, index, line):
        super().__init__(line)
        self.name = name
        self.index = index


class Call(Node):
    __slots__ = ("name", "args")

    def __init__(self, name, args, line):
        super().__init__(line)
        self.name = name
        self.args = args


class Unary(Node):
    """op in {'-', '!', '~'}"""

    __slots__ = ("op", "operand")

    def __init__(self, op, operand, line):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Node):
    """op in {'||','&&','|','^','&','==','!=','<','<=','>','>=',
    '<<','>>','+','-','*','/','%'}"""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right, line):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


COMPARISON_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})
LOGICAL_OPS = frozenset({"&&", "||"})
