"""Tokenizer for Minic."""

KEYWORDS = frozenset({
    "int", "if", "else", "while", "for", "do", "switch", "case",
    "default", "break", "continue", "return",
})

# Multi-character operators must be matched before their prefixes.
_OPERATORS = [
    "<<=", ">>=",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++", "--",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ":",
]

_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11,
}


class LexerError(Exception):
    """Raised on malformed source text."""

    def __init__(self, message, line):
        super().__init__("line %d: %s" % (line, message))
        self.line = line


class Token:
    """A lexical token.

    kind: "name", "int", "string", "keyword", an operator string, or
        "eof".
    value: identifier text, integer value, decoded string bytes, or the
        operator/keyword itself.
    """

    __slots__ = ("kind", "value", "line")

    def __init__(self, kind, value, line):
        self.kind = kind
        self.value = value
        self.line = line

    def __repr__(self):
        return "Token(%r, %r, line=%d)" % (self.kind, self.value, self.line)

    def __eq__(self, other):
        if not isinstance(other, Token):
            return NotImplemented
        return (self.kind, self.value, self.line) == (
            other.kind, other.value, other.line)


def tokenize(text):
    """Convert Minic source into a list of tokens ending with ``eof``."""
    tokens = []
    position = 0
    line = 1
    length = len(text)

    while position < length:
        char = text[position]

        if char == "\n":
            line += 1
            position += 1
            continue
        if char in " \t\r":
            position += 1
            continue

        if text.startswith("//", position):
            end = text.find("\n", position)
            position = length if end == -1 else end
            continue
        if text.startswith("/*", position):
            end = text.find("*/", position + 2)
            if end == -1:
                raise LexerError("unterminated block comment", line)
            line += text.count("\n", position, end)
            position = end + 2
            continue

        if char.isdigit():
            start = position
            if text.startswith("0x", position) or text.startswith("0X", position):
                position += 2
                while position < length and text[position] in "0123456789abcdefABCDEF":
                    position += 1
                if position == start + 2:
                    raise LexerError("malformed hex literal", line)
                tokens.append(Token("int", int(text[start:position], 16), line))
            else:
                while position < length and text[position].isdigit():
                    position += 1
                tokens.append(Token("int", int(text[start:position]), line))
            continue

        if char.isalpha() or char == "_":
            start = position
            while position < length and (text[position].isalnum() or text[position] == "_"):
                position += 1
            word = text[start:position]
            if word in KEYWORDS:
                tokens.append(Token("keyword", word, line))
            else:
                tokens.append(Token("name", word, line))
            continue

        if char == "'":
            value, position = _char_literal(text, position, line)
            tokens.append(Token("int", value, line))
            continue

        if char == '"':
            value, position, line = _string_literal(text, position, line)
            tokens.append(Token("string", value, line))
            continue

        for operator in _OPERATORS:
            if text.startswith(operator, position):
                tokens.append(Token(operator, operator, line))
                position += len(operator)
                break
        else:
            raise LexerError("unexpected character %r" % char, line)

    tokens.append(Token("eof", None, line))
    return tokens


def _char_literal(text, position, line):
    """Parse a character literal starting at ``position`` (the quote)."""
    position += 1
    if position >= len(text):
        raise LexerError("unterminated character literal", line)
    if text[position] == "\\":
        position += 1
        if position >= len(text) or text[position] not in _ESCAPES:
            raise LexerError("bad escape in character literal", line)
        value = _ESCAPES[text[position]]
        position += 1
    else:
        value = ord(text[position])
        position += 1
    if position >= len(text) or text[position] != "'":
        raise LexerError("unterminated character literal", line)
    return value, position + 1


def _string_literal(text, position, line):
    """Parse a string literal; returns (bytes-values, new position, line)."""
    position += 1
    values = []
    while True:
        if position >= len(text):
            raise LexerError("unterminated string literal", line)
        char = text[position]
        if char == '"':
            return values, position + 1, line
        if char == "\n":
            raise LexerError("newline in string literal", line)
        if char == "\\":
            position += 1
            if position >= len(text) or text[position] not in _ESCAPES:
                raise LexerError("bad escape in string literal", line)
            values.append(_ESCAPES[text[position]])
            position += 1
        else:
            values.append(ord(char))
            position += 1
