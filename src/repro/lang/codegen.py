"""Code generation: Minic AST -> intermediate-ISA Program.

Conventions:

* arguments arrive in registers 0..n-1 of a fresh frame (the VM's CALL
  semantics); register n holds the constant zero for global addressing,
* named scalar locals live in registers, local arrays in static storage,
* comparisons compile into compare-and-branch instructions directly
  (the paper's assumption), with short-circuit ``&&``/``||``,
* loops are rotated so the loop back-edge is a single conditional
  branch at the bottom (one branch per iteration, mostly taken —
  matching the branch mix of code from real compilers),
* dense ``switch`` statements become bounds-checked jump tables
  (``TABLE`` + ``JIND``, an unknown-target unconditional branch);
  sparse ones become compare chains.

The emitted program starts at a synthetic ``__start`` function that
stores non-zero global initializers and calls ``main``.
"""

from repro.isa.opcodes import Opcode, invert_branch
from repro.isa.program import Program
from repro.lang import ast

_COMPARE_OPS = {
    "==": Opcode.BEQ,
    "!=": Opcode.BNE,
    "<": Opcode.BLT,
    "<=": Opcode.BLE,
    ">": Opcode.BGT,
    ">=": Opcode.BGE,
}

_ARITH_OPS = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.REM,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
}

# A switch becomes a jump table when it has at least this many distinct
# case values and the value range is no sparser than this factor.
_JUMP_TABLE_MIN_CASES = 6
_JUMP_TABLE_MAX_SPARSITY = 4


class CodegenError(Exception):
    """Raised on internal code-generation failures."""


class _FunctionEmitter:
    """Generates code for one function."""

    def __init__(self, generator, function, function_info):
        self.generator = generator
        self.program = generator.program
        self.function = function
        self.info = function_info
        self.registers = {name: index
                          for index, name in enumerate(function.params)}
        self.zero = len(function.params)
        self.next_register = self.zero + 1
        self.free_temps = []
        self.live_temps = set()
        self.break_labels = []
        self.continue_labels = []
        self.epilogue = generator.new_label(function.name, "epilogue")
        self.current_line = function.line

    # -- registers -----------------------------------------------------------

    def alloc(self):
        if self.free_temps:
            register = self.free_temps.pop()
        else:
            register = self.next_register
            self.next_register += 1
        self.live_temps.add(register)
        return register

    def free(self, register):
        """Release ``register`` if it is a live temporary (no-op otherwise)."""
        if register in self.live_temps:
            self.live_temps.remove(register)
            self.free_temps.append(register)

    def named_register(self, name):
        if name not in self.registers:
            self.registers[name] = self.next_register
            self.next_register += 1
        return self.registers[name]

    # -- symbols -----------------------------------------------------------------

    def array_symbol(self, name):
        symbol = self.info.local_arrays.get(name)
        if symbol is not None:
            return symbol
        return self.generator.info.globals[name]

    def global_scalar(self, name):
        if name in self.registers or name in self.function.params:
            return None
        symbol = self.generator.info.globals.get(name)
        if symbol is not None and not symbol.is_array:
            return symbol
        return None

    def is_local_scalar(self, name):
        if name in self.registers:
            return True
        return self.global_scalar(name) is None

    # -- emission ------------------------------------------------------------------

    def emit(self, op, **kwargs):
        address = self.program.emit(op, **kwargs)
        if self.current_line:
            self.program.lines[address] = self.current_line
        return address

    def mark(self, label):
        self.program.mark_label(label)

    def new_label(self, hint):
        return self.generator.new_label(self.function.name, hint)

    # -- function body ---------------------------------------------------------------

    def run(self):
        label = "_func_%s" % self.function.name
        self.mark(label)
        self.program.functions[self.function.name] = label
        self.emit(Opcode.LI, dest=self.zero, imm=0)
        self.statement(self.function.body)
        self.mark(self.epilogue)
        self.emit(Opcode.RET)

    # -- statements -------------------------------------------------------------------

    def statement(self, node):
        self.current_line = node.line
        if isinstance(node, ast.Block):
            for child in node.statements:
                self.statement(child)
        elif isinstance(node, ast.LocalDecl):
            if node.is_array:
                return  # static storage, nothing to emit
            register = self.named_register(node.name)
            if node.init is not None:
                self.value(node.init, dest=register)
        elif isinstance(node, ast.Assign):
            self.assign(node)
        elif isinstance(node, ast.If):
            self.if_statement(node)
        elif isinstance(node, ast.While):
            self.while_statement(node)
        elif isinstance(node, ast.DoWhile):
            self.do_while_statement(node)
        elif isinstance(node, ast.For):
            self.for_statement(node)
        elif isinstance(node, ast.Switch):
            self.switch_statement(node)
        elif isinstance(node, ast.Break):
            if not self.break_labels:
                raise CodegenError("break outside loop or switch")
            self.emit(Opcode.JUMP, target=self.break_labels[-1])
        elif isinstance(node, ast.Continue):
            if not self.continue_labels:
                raise CodegenError("continue outside loop")
            self.emit(Opcode.JUMP, target=self.continue_labels[-1])
        elif isinstance(node, ast.Return):
            if node.value is not None:
                register = self.value(node.value)
                self.emit(Opcode.RETV, a=register)
                self.free(register)
            self.emit(Opcode.JUMP, target=self.epilogue)
        elif isinstance(node, ast.ExprStmt):
            self.expression_statement(node.expr)
        else:  # pragma: no cover
            raise CodegenError("unknown statement %r" % node)

    def expression_statement(self, expr):
        if isinstance(expr, ast.Call):
            self.call(expr, want_result=False)
            return
        register = self.value(expr)
        self.free(register)

    def assign(self, node):
        target = node.target
        if isinstance(target, ast.Var):
            symbol = self.global_scalar(target.name)
            if symbol is None:
                register = self.named_register(target.name)
                self.value(node.value, dest=register)
            else:
                register = self.value(node.value)
                self.emit(Opcode.STORE, a=register, b=self.zero,
                          imm=symbol.offset)
                self.free(register)
            return
        symbol = self.array_symbol(target.name)
        index = self.value(target.index)
        register = self.value(node.value)
        self.emit(Opcode.STORE, a=register, b=index, imm=symbol.offset)
        self.free(index)
        self.free(register)

    def if_statement(self, node):
        end_label = self.new_label("endif")
        if node.else_branch is None:
            self.branch_false(node.cond, end_label)
            self.statement(node.then_branch)
            self.mark(end_label)
            return
        else_label = self.new_label("else")
        self.branch_false(node.cond, else_label)
        self.statement(node.then_branch)
        self.emit(Opcode.JUMP, target=end_label)
        self.mark(else_label)
        self.statement(node.else_branch)
        self.mark(end_label)

    def while_statement(self, node):
        cond_label = self.new_label("wcond")
        body_label = self.new_label("wbody")
        end_label = self.new_label("wend")
        self.emit(Opcode.JUMP, target=cond_label)
        self.mark(body_label)
        self.break_labels.append(end_label)
        self.continue_labels.append(cond_label)
        self.statement(node.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.mark(cond_label)
        self.branch_true(node.cond, body_label)
        self.mark(end_label)

    def do_while_statement(self, node):
        body_label = self.new_label("dbody")
        cond_label = self.new_label("dcond")
        end_label = self.new_label("dend")
        self.mark(body_label)
        self.break_labels.append(end_label)
        self.continue_labels.append(cond_label)
        self.statement(node.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.mark(cond_label)
        self.branch_true(node.cond, body_label)
        self.mark(end_label)

    def for_statement(self, node):
        if node.init is not None:
            self.statement(node.init)
        body_label = self.new_label("fbody")
        step_label = self.new_label("fstep")
        end_label = self.new_label("fend")
        if node.cond is not None:
            cond_label = self.new_label("fcond")
            self.emit(Opcode.JUMP, target=cond_label)
        self.mark(body_label)
        self.break_labels.append(end_label)
        self.continue_labels.append(step_label)
        self.statement(node.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.mark(step_label)
        if node.step is not None:
            self.statement(node.step)
        if node.cond is not None:
            self.mark(cond_label)
            self.branch_true(node.cond, body_label)
        else:
            self.emit(Opcode.JUMP, target=body_label)
        self.mark(end_label)

    # -- switch ------------------------------------------------------------------------

    def switch_statement(self, node):
        end_label = self.new_label("swend")
        case_labels = [self.new_label("case") for _ in node.cases]
        default_label = end_label
        for case, label in zip(node.cases, case_labels):
            if case.is_default:
                default_label = label

        value_to_label = {}
        for case, label in zip(node.cases, case_labels):
            for value in case.values:
                value_to_label[value] = label

        selector = self.value(node.expr)
        if self._use_jump_table(value_to_label):
            self._emit_jump_table(selector, value_to_label, default_label)
        else:
            self._emit_compare_chain(selector, value_to_label, default_label)
        self.free(selector)

        self.break_labels.append(end_label)
        for case, label in zip(node.cases, case_labels):
            self.mark(label)
            for child in case.body:
                self.statement(child)
            # Fall through to the next case, as in C.
        self.break_labels.pop()
        self.mark(end_label)

    def _use_jump_table(self, value_to_label):
        if len(value_to_label) < _JUMP_TABLE_MIN_CASES:
            return False
        low, high = min(value_to_label), max(value_to_label)
        span = high - low + 1
        return span <= _JUMP_TABLE_MAX_SPARSITY * len(value_to_label)

    def _emit_jump_table(self, selector, value_to_label, default_label):
        low, high = min(value_to_label), max(value_to_label)
        entries = [value_to_label.get(value, default_label)
                   for value in range(low, high + 1)]
        table_name = self.new_label("jt")
        table_id = self.program.add_jump_table(table_name, entries)

        bound = self.alloc()
        self.emit(Opcode.LI, dest=bound, imm=low)
        self.emit(Opcode.BLT, a=selector, b=bound, target=default_label)
        self.emit(Opcode.LI, dest=bound, imm=high)
        self.emit(Opcode.BGT, a=selector, b=bound, target=default_label)
        self.emit(Opcode.LI, dest=bound, imm=low)
        index = self.alloc()
        self.emit(Opcode.SUB, dest=index, a=selector, b=bound)
        address = bound  # reuse
        self.emit(Opcode.TABLE, dest=address, imm=table_id, a=index)
        self.emit(Opcode.JIND, a=address)
        self.free(bound)
        self.free(index)

    def _emit_compare_chain(self, selector, value_to_label, default_label):
        probe = self.alloc()
        for value, label in sorted(value_to_label.items()):
            self.emit(Opcode.LI, dest=probe, imm=value)
            self.emit(Opcode.BEQ, a=selector, b=probe, target=label)
        self.emit(Opcode.JUMP, target=default_label)
        self.free(probe)

    # -- conditions ---------------------------------------------------------------------

    def branch_true(self, expr, label):
        """Emit code that jumps to ``label`` when ``expr`` is true."""
        # Loop back-edges emit their condition after the body; the
        # condition's own line keeps the line table accurate there.
        self.current_line = expr.line
        if isinstance(expr, ast.Binary) and expr.op in _COMPARE_OPS:
            left = self.value(expr.left)
            right = self.value(expr.right)
            self.emit(_COMPARE_OPS[expr.op], a=left, b=right, target=label)
            self.free(left)
            self.free(right)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            skip = self.new_label("andskip")
            self.branch_false(expr.left, skip)
            self.branch_true(expr.right, label)
            self.mark(skip)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            self.branch_true(expr.left, label)
            self.branch_true(expr.right, label)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.branch_false(expr.operand, label)
            return
        if isinstance(expr, ast.IntLit):
            if expr.value:
                self.emit(Opcode.JUMP, target=label)
            return
        register = self.value(expr)
        self.emit(Opcode.BNE, a=register, b=self.zero, target=label)
        self.free(register)

    def branch_false(self, expr, label):
        """Emit code that jumps to ``label`` when ``expr`` is false."""
        self.current_line = expr.line
        if isinstance(expr, ast.Binary) and expr.op in _COMPARE_OPS:
            left = self.value(expr.left)
            right = self.value(expr.right)
            opcode = invert_branch(_COMPARE_OPS[expr.op])
            self.emit(opcode, a=left, b=right, target=label)
            self.free(left)
            self.free(right)
            return
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            self.branch_false(expr.left, label)
            self.branch_false(expr.right, label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            skip = self.new_label("orskip")
            self.branch_true(expr.left, skip)
            self.branch_false(expr.right, label)
            self.mark(skip)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.branch_true(expr.operand, label)
            return
        if isinstance(expr, ast.IntLit):
            if not expr.value:
                self.emit(Opcode.JUMP, target=label)
            return
        register = self.value(expr)
        self.emit(Opcode.BEQ, a=register, b=self.zero, target=label)
        self.free(register)

    # -- expressions ------------------------------------------------------------------------

    def value(self, expr, dest=None):
        """Emit code computing ``expr``; returns the result register.

        When ``dest`` is given the result is placed there and ``dest``
        is returned; otherwise the result may be a fresh temporary
        (caller frees) or a named register (freeing is a no-op).
        """
        if isinstance(expr, ast.IntLit):
            register = dest if dest is not None else self.alloc()
            self.emit(Opcode.LI, dest=register, imm=expr.value)
            return register

        if isinstance(expr, ast.Var):
            symbol = self.global_scalar(expr.name)
            if symbol is None:
                register = self.named_register(expr.name)
                if dest is not None and dest != register:
                    self.emit(Opcode.MOV, dest=dest, a=register)
                    return dest
                return register
            register = dest if dest is not None else self.alloc()
            self.emit(Opcode.LOAD, dest=register, a=self.zero,
                      imm=symbol.offset)
            return register

        if isinstance(expr, ast.Index):
            symbol = self.array_symbol(expr.name)
            index = self.value(expr.index)
            register = dest if dest is not None else self.alloc()
            self.emit(Opcode.LOAD, dest=register, a=index, imm=symbol.offset)
            self.free(index)
            return register

        if isinstance(expr, ast.Call):
            return self.call(expr, want_result=True, dest=dest)

        if isinstance(expr, ast.Unary):
            if expr.op == "!":
                return self._materialize_bool(expr, dest)
            operand = self.value(expr.operand)
            register = dest if dest is not None else self.alloc()
            opcode = Opcode.NEG if expr.op == "-" else Opcode.NOT
            self.emit(opcode, dest=register, a=operand)
            self.free(operand)
            return register

        if isinstance(expr, ast.Binary):
            if expr.op in _ARITH_OPS:
                left = self.value(expr.left)
                right = self.value(expr.right)
                register = dest if dest is not None else self.alloc()
                self.emit(_ARITH_OPS[expr.op], dest=register, a=left, b=right)
                self.free(left)
                self.free(right)
                return register
            return self._materialize_bool(expr, dest)

        raise CodegenError("unknown expression %r" % expr)  # pragma: no cover

    def _materialize_bool(self, expr, dest):
        """Compute a comparison/logical expression as a 0/1 value.

        The result is staged in a fresh temporary (never directly in
        ``dest``) because ``expr`` may read ``dest`` — e.g.
        ``flag = !flag`` — and the staging register is written before
        the expression is evaluated.
        """
        register = self.alloc()
        done = self.new_label("bool")
        self.emit(Opcode.LI, dest=register, imm=1)
        self.branch_true(expr, done)
        self.emit(Opcode.LI, dest=register, imm=0)
        self.mark(done)
        if dest is not None and dest != register:
            self.emit(Opcode.MOV, dest=dest, a=register)
            self.free(register)
            return dest
        return register

    def call(self, expr, want_result, dest=None):
        name = expr.name
        if name == "getc":
            register = dest if dest is not None else self.alloc()
            self.emit(Opcode.GETC, dest=register, imm=expr.args[0].value)
            return register
        if name in ("putc", "puti"):
            argument = self.value(expr.args[0])
            opcode = Opcode.PUTC if name == "putc" else Opcode.PUTI
            self.emit(opcode, a=argument)
            self.free(argument)
            if not want_result:
                return None
            register = dest if dest is not None else self.alloc()
            self.emit(Opcode.LI, dest=register, imm=0)
            return register

        argument_registers = [self.value(argument) for argument in expr.args]
        for position, register in enumerate(argument_registers):
            self.emit(Opcode.ARG, imm=position, a=register)
        for register in argument_registers:
            self.free(register)
        self.emit(Opcode.CALL, target="_func_%s" % name)
        if not want_result:
            return None
        register = dest if dest is not None else self.alloc()
        self.emit(Opcode.RESULT, dest=register)
        return register


class CodeGenerator:
    """Drives code generation for a whole translation unit."""

    def __init__(self, unit, info, name="program"):
        self.unit = unit
        self.info = info
        self.program = Program(name)
        self.program.globals_size = info.globals_size
        self._label_counter = 0

    def new_label(self, function_name, hint):
        self._label_counter += 1
        return "%s.%s.%d" % (function_name, hint, self._label_counter)

    def generate(self):
        self._emit_start()
        for function in self.unit.functions:
            emitter = _FunctionEmitter(self, function,
                                       self.info.functions[function.name])
            emitter.run()
        self.program.resolve()
        self.program.validate()
        return self.program

    def _emit_start(self):
        program = self.program
        program.mark_label("_func___start")
        program.functions["__start"] = "_func___start"
        # Global initializers live in the data segment, as in a real
        # executable; __start only transfers to main.
        for symbol in self.info.globals.values():
            self._record_init(symbol)
        program.emit(Opcode.CALL, target="_func_main")
        program.emit(Opcode.HALT)

    def _record_init(self, symbol):
        data = self.program.data_init
        if symbol.is_array:
            for position, value in enumerate(symbol.init or []):
                if value != 0:  # memory starts zeroed
                    data[symbol.offset + position] = value
        elif symbol.init:
            data[symbol.offset] = symbol.init


def generate(unit, info, name="program"):
    """Generate a resolved, validated Program from an analyzed unit."""
    return CodeGenerator(unit, info, name).generate()
