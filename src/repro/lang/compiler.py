"""Compiler driver: Minic source text -> resolved Program."""

from repro.lang.codegen import generate, CodegenError
from repro.lang.lexer import LexerError
from repro.lang.parser import parse, ParseError
from repro.lang.semantics import analyze, SemanticError


class CompileError(Exception):
    """Wraps any front-end failure with the program name."""


def compile_source(source, name="program"):
    """Compile Minic ``source``; returns a resolved, validated Program.

    Raises :class:`CompileError` with the underlying diagnostic on any
    lexical, syntactic, semantic, or code-generation error.
    """
    try:
        unit = parse(source)
        info = analyze(unit)
        return generate(unit, info, name=name)
    except (LexerError, ParseError, SemanticError, CodegenError) as error:
        raise CompileError("%s: %s" % (name, error)) from error
