"""Recursive-descent parser for Minic."""

from repro.lang import ast
from repro.lang.lexer import tokenize

# Binary operator precedence, lowest first.  && and || are handled
# separately only at code generation (short circuit); parsing treats
# them as ordinary left-associative binary operators.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


_COMPOUND_OPS = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}


class ParseError(Exception):
    """Raised on syntactically invalid Minic source."""

    def __init__(self, message, line):
        super().__init__("line %d: %s" % (line, message))
        self.line = line


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self):
        return self.tokens[self.position]

    def advance(self):
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind, value=None):
        token = self.current
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind, value=None):
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind, value=None):
        if self.check(kind, value):
            return self.advance()
        wanted = value if value is not None else kind
        raise ParseError(
            "expected %r, found %r" % (wanted, self.current.value),
            self.current.line,
        )

    # -- top level ------------------------------------------------------------

    def parse_unit(self):
        globals_ = []
        functions = []
        while not self.check("eof"):
            self.expect("keyword", "int")
            name_token = self.expect("name")
            if self.check("("):
                functions.append(self._function_rest(name_token))
            else:
                globals_.append(self._global_rest(name_token))
        return ast.TranslationUnit(globals_, functions)

    def _function_rest(self, name_token):
        self.expect("(")
        params = []
        if not self.check(")"):
            while True:
                self.expect("keyword", "int")
                params.append(self.expect("name").value)
                if not self.accept(","):
                    break
        self.expect(")")
        body = self._block()
        return ast.FuncDef(name_token.value, params, body, name_token.line)

    def _global_rest(self, name_token):
        size = None
        init = None
        if self.accept("["):
            if self.check("int"):
                size = self.advance().value
            else:
                size = -1  # inferred from the initializer
            self.expect("]")
        if self.accept("="):
            init = self._initializer(is_array=size is not None)
        self.expect(";")
        return ast.GlobalDecl(name_token.value, size, init, name_token.line)

    def _initializer(self, is_array):
        if self.check("string"):
            if not is_array:
                raise ParseError("string initializer on a scalar",
                                 self.current.line)
            token = self.advance()
            return list(token.value) + [0]
        if self.accept("{"):
            if not is_array:
                raise ParseError("brace initializer on a scalar",
                                 self.current.line)
            values = []
            if not self.check("}"):
                while True:
                    values.append(self._const_int())
                    if not self.accept(","):
                        break
            self.expect("}")
            return values
        value = self._const_int()
        if is_array:
            return [value]
        return value

    def _const_int(self):
        negative = bool(self.accept("-"))
        token = self.expect("int")
        return -token.value if negative else token.value

    # -- statements ------------------------------------------------------------

    def _block(self):
        open_brace = self.expect("{")
        statements = []
        while not self.check("}"):
            statements.append(self._statement())
        self.expect("}")
        return ast.Block(statements, open_brace.line)

    def _statement(self):
        token = self.current

        if token.kind == "{":
            return self._block()

        if token.kind == "keyword":
            keyword = token.value
            if keyword == "int":
                return self._local_decl()
            if keyword == "if":
                return self._if()
            if keyword == "while":
                return self._while()
            if keyword == "do":
                return self._do_while()
            if keyword == "for":
                return self._for()
            if keyword == "switch":
                return self._switch()
            if keyword == "break":
                self.advance()
                self.expect(";")
                return ast.Break(token.line)
            if keyword == "continue":
                self.advance()
                self.expect(";")
                return ast.Continue(token.line)
            if keyword == "return":
                self.advance()
                value = None if self.check(";") else self._expression()
                self.expect(";")
                return ast.Return(value, token.line)
            raise ParseError("unexpected keyword %r" % keyword, token.line)

        statement = self._simple_statement()
        self.expect(";")
        return statement

    def _simple_statement(self):
        """An assignment or expression statement, without the ';'.

        Also used for the init/step clauses of ``for``.  Compound
        assignments (``x += e``) and increments (``x++``/``x--``) are
        desugared here; for array elements the index expression is
        re-evaluated (Minic index expressions are expected to be
        side-effect free).
        """
        token = self.current
        if token.kind == "name":
            next_token = self.tokens[self.position + 1]
            if next_token.kind == "=":
                name = self.advance()
                self.advance()  # '='
                value = self._expression()
                return ast.Assign(ast.Var(name.value, name.line), value,
                                  name.line)
            if next_token.kind in _COMPOUND_OPS:
                name = self.advance()
                operator = _COMPOUND_OPS[self.advance().kind]
                value = self._expression()
                target = ast.Var(name.value, name.line)
                read = ast.Var(name.value, name.line)
                return ast.Assign(
                    target, ast.Binary(operator, read, value, name.line),
                    name.line)
            if next_token.kind in ("++", "--"):
                name = self.advance()
                operator = "+" if self.advance().kind == "++" else "-"
                target = ast.Var(name.value, name.line)
                read = ast.Var(name.value, name.line)
                one = ast.IntLit(1, name.line)
                return ast.Assign(
                    target, ast.Binary(operator, read, one, name.line),
                    name.line)
            if next_token.kind == "[":
                # Could be `a[i] = e` / `a[i] op= e` (assignment) or
                # `a[i]` in an expression; parse the index, then decide.
                saved = self.position
                name = self.advance()
                self.advance()  # '['
                index = self._expression()
                self.expect("]")
                if self.accept("="):
                    value = self._expression()
                    target = ast.Index(name.value, index, name.line)
                    return ast.Assign(target, value, name.line)
                if self.current.kind in _COMPOUND_OPS:
                    operator = _COMPOUND_OPS[self.advance().kind]
                    value = self._expression()
                    target = ast.Index(name.value, index, name.line)
                    read = ast.Index(name.value, index, name.line)
                    return ast.Assign(
                        target,
                        ast.Binary(operator, read, value, name.line),
                        name.line)
                if self.current.kind in ("++", "--"):
                    operator = "+" if self.advance().kind == "++" else "-"
                    target = ast.Index(name.value, index, name.line)
                    read = ast.Index(name.value, index, name.line)
                    one = ast.IntLit(1, name.line)
                    return ast.Assign(
                        target,
                        ast.Binary(operator, read, one, name.line),
                        name.line)
                self.position = saved
        expr = self._expression()
        return ast.ExprStmt(expr, token.line)

    def _local_decl(self):
        keyword = self.expect("keyword", "int")
        name = self.expect("name").value
        size = None
        init = None
        if self.accept("["):
            size = self.expect("int").value
            self.expect("]")
        elif self.accept("="):
            init = self._expression()
        self.expect(";")
        return ast.LocalDecl(name, size, init, keyword.line)

    def _if(self):
        keyword = self.advance()
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        then_branch = self._statement()
        else_branch = None
        if self.accept("keyword", "else"):
            else_branch = self._statement()
        return ast.If(cond, then_branch, else_branch, keyword.line)

    def _while(self):
        keyword = self.advance()
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        body = self._statement()
        return ast.While(cond, body, keyword.line)

    def _do_while(self):
        keyword = self.advance()
        body = self._statement()
        self.expect("keyword", "while")
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        self.expect(";")
        return ast.DoWhile(body, cond, keyword.line)

    def _for(self):
        keyword = self.advance()
        self.expect("(")
        init = None if self.check(";") else self._simple_statement()
        self.expect(";")
        cond = None if self.check(";") else self._expression()
        self.expect(";")
        step = None if self.check(")") else self._simple_statement()
        self.expect(")")
        body = self._statement()
        return ast.For(init, cond, step, body, keyword.line)

    def _switch(self):
        keyword = self.advance()
        self.expect("(")
        expr = self._expression()
        self.expect(")")
        self.expect("{")
        cases = []
        seen_default = False
        while not self.check("}"):
            values = []
            is_default = False
            got_label = False
            while True:
                if self.accept("keyword", "case"):
                    values.append(self._const_int())
                    self.expect(":")
                    got_label = True
                elif self.check("keyword", "default"):
                    if seen_default:
                        raise ParseError("duplicate default label",
                                         self.current.line)
                    self.advance()
                    self.expect(":")
                    is_default = True
                    seen_default = True
                    got_label = True
                else:
                    break
            if not got_label:
                raise ParseError("statement outside any case label",
                                 self.current.line)
            body = []
            while not (self.check("}") or self.check("keyword", "case")
                       or self.check("keyword", "default")):
                body.append(self._statement())
            cases.append(ast.SwitchCase(values, is_default, body, keyword.line))
        self.expect("}")
        return ast.Switch(expr, cases, keyword.line)

    # -- expressions --------------------------------------------------------------

    def _expression(self):
        return self._binary(0)

    def _binary(self, level):
        if level >= len(_PRECEDENCE):
            return self._unary()
        operators = _PRECEDENCE[level]
        left = self._binary(level + 1)
        while self.current.kind in operators:
            op_token = self.advance()
            right = self._binary(level + 1)
            left = ast.Binary(op_token.kind, left, right, op_token.line)
        return left

    def _unary(self):
        token = self.current
        if token.kind in ("-", "!", "~"):
            self.advance()
            operand = self._unary()
            return ast.Unary(token.kind, operand, token.line)
        return self._postfix()

    def _postfix(self):
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.IntLit(token.value, token.line)
        if token.kind == "(":
            self.advance()
            expr = self._expression()
            self.expect(")")
            return expr
        if token.kind == "name":
            name = self.advance()
            if self.accept("("):
                args = []
                if not self.check(")"):
                    while True:
                        args.append(self._expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                return ast.Call(name.value, args, name.line)
            if self.accept("["):
                index = self._expression()
                self.expect("]")
                return ast.Index(name.value, index, name.line)
            return ast.Var(name.value, name.line)
        raise ParseError("unexpected token %r" % (token.value,), token.line)


def parse(source):
    """Parse Minic source text into a :class:`~repro.lang.ast.TranslationUnit`."""
    parser = _Parser(tokenize(source))
    unit = parser.parse_unit()
    return unit
