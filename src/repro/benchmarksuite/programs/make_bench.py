"""make — makefile parsing and out-of-date propagation.

Parses ``target: deps`` rules with tab-indented command lines, interns
target names in a hash table, builds the dependency DAG in edge
arrays, assigns deterministic pseudo-timestamps, and recursively
rebuilds every target whose dependencies are newer — emitting the
build commands in dependency order, exactly the control structure of
make's update algorithm.
"""

from repro.benchmarksuite.inputs import makefile

DESCRIPTION = "generated makefiles"
RUNS = 10

SOURCE = r"""
// make: dependency-driven rebuild over the makefile on stream 0.
int name_pool[4096];
int pool_len;
int node_start[256];
int node_len[256];
int n_nodes;

int first_dep[256];      // head of each node's dependency list, or -1
int dep_node[2048];
int dep_next[2048];
int n_edges;

int timestamp[256];
int status[256];         // 0 unknown, 1 fresh, 2 rebuilt
int commands[256];       // command lines seen per target
int clock_now;

int word[64];
int word_len;

int rebuild_count;
int fresh_count;

int same_name(int node) {
    int i;
    if (node_len[node] != word_len) return 0;
    for (i = 0; i < word_len; i = i + 1)
        if (name_pool[node_start[node] + i] != word[i]) return 0;
    return 1;
}

int intern() {
    int i;
    for (i = 0; i < n_nodes; i = i + 1)
        if (same_name(i)) return i;
    node_start[n_nodes] = pool_len;
    node_len[n_nodes] = word_len;
    for (i = 0; i < word_len; i = i + 1) {
        name_pool[pool_len] = word[i];
        pool_len = pool_len + 1;
    }
    first_dep[n_nodes] = -1;
    // Deterministic pseudo-timestamp derived from the name.
    timestamp[n_nodes] = 0;
    for (i = 0; i < word_len; i = i + 1)
        timestamp[n_nodes] = (timestamp[n_nodes] * 31 + word[i]) % 97;
    n_nodes = n_nodes + 1;
    return n_nodes - 1;
}

int add_dep(int target, int dep) {
    dep_node[n_edges] = dep;
    dep_next[n_edges] = first_dep[target];
    first_dep[target] = n_edges;
    n_edges = n_edges + 1;
    return 0;
}

int put_name(int node) {
    int i;
    for (i = 0; i < node_len[node]; i = i + 1)
        putc(name_pool[node_start[node] + i]);
    return 0;
}

// Returns 1 when the target is fresh, 2 when it was rebuilt.
int build(int node) {
    int edge; int dep; int result; int need = 0;
    if (status[node] != 0) return status[node];
    status[node] = 1;  // provisional (the makefile DAG is acyclic)
    edge = first_dep[node];
    while (edge != -1) {
        dep = dep_node[edge];
        result = build(dep);
        if (result == 2) need = 1;
        if (timestamp[dep] > timestamp[node]) need = 1;
        edge = dep_next[edge];
    }
    if (first_dep[node] == -1 && commands[node] == 0) {
        // A leaf with no commands is a source file: always fresh.
        fresh_count = fresh_count + 1;
        return 1;
    }
    if (need || timestamp[node] == 0) {
        putc('b'); putc(' ');
        put_name(node);
        putc('\n');
        clock_now = clock_now + 1;
        timestamp[node] = 97 + clock_now;
        status[node] = 2;
        rebuild_count = rebuild_count + 1;
        return 2;
    }
    fresh_count = fresh_count + 1;
    return 1;
}

int pending;

int next_char() {
    int c;
    if (pending != -2) { c = pending; pending = -2; return c; }
    return getc(0);
}

int read_name() {
    int c;
    word_len = 0;
    c = next_char();
    while (c == ' ') c = next_char();
    while (c != -1 && c != ' ' && c != '\n' && c != ':' && c != '\t') {
        if (word_len < 63) { word[word_len] = c; word_len = word_len + 1; }
        c = next_char();
    }
    pending = c;
    return word_len;
}

int main() {
    int c; int target; int dep; int i;
    int first_target = -1;

    pending = -2;
    c = next_char();
    while (c != -1) {
        if (c == '\t') {
            // Command line: attribute to the most recent target.
            if (n_nodes > 0 && first_target != -1)
                commands[first_target] = commands[first_target] + 1;
            c = next_char();
            while (c != -1 && c != '\n') c = next_char();
            if (c != -1) c = next_char();
        } else if (c == '\n') {
            c = next_char();
        } else {
            // Rule line: target ':' dependencies.
            pending = c;
            if (read_name() == 0) { c = next_char(); }
            else {
                target = intern();
                first_target = target;
                c = next_char();
                while (c == ' ') c = next_char();
                if (c == ':') c = next_char();
                while (c != -1 && c != '\n') {
                    pending = c;
                    if (read_name() > 0) {
                        dep = intern();
                        add_dep(target, dep);
                    }
                    c = next_char();
                }
                if (c != -1) c = next_char();
            }
        }
    }

    // Build every target (memoised), first-defined first.
    for (i = 0; i < n_nodes; i = i + 1) build(i);

    puti(n_nodes); putc(' ');
    puti(n_edges); putc(' ');
    puti(rebuild_count); putc(' ');
    puti(fresh_count); putc('\n');
    return 0;
}
"""


def make_inputs(rng, run_index, scale):
    n_targets = max(4, int((20 + rng.next_int(60)) * scale))
    return [makefile(rng, n_targets)]
