"""cmp — byte-by-byte file comparison.

Like cmp(1)'s default mode: reads two streams in lockstep and stops at
the first differing byte, reporting its offset and line.  The equality
test in the hot loop almost never fires (dissimilar pairs exit after a
handful of bytes), matching cmp's very low taken fraction in Table 2
and its strongly-biased branches.
"""

from repro.benchmarksuite.inputs import text_lines

DESCRIPTION = "similar/dissimilar text files"
RUNS = 8

SOURCE = r"""
// cmp: compare streams 0 and 1, stopping at the first difference.
int main() {
    int a; int b;
    int offset = 1;
    int line = 1;

    a = getc(0);
    b = getc(1);
    while (a == b && a != -1) {
        if (a == '\n') line = line + 1;
        offset = offset + 1;
        a = getc(0);
        b = getc(1);
    }

    if (a == b) {
        putc('s'); putc('a'); putc('m'); putc('e'); putc(' ');
        puti(offset - 1); putc('\n');
        return 0;
    }
    if (a == -1 || b == -1) {
        putc('E'); putc('O'); putc('F'); putc(' ');
        puti(offset); putc(' ');
        puti(line); putc('\n');
        return 1;
    }
    putc('d'); putc('i'); putc('f'); putc('f'); putc(' ');
    puti(offset); putc(' ');
    puti(line); putc(' ');
    puti(a); putc(' ');
    puti(b); putc('\n');
    return 1;
}
"""


def make_inputs(rng, run_index, scale):
    n_lines = max(5, int((120 + rng.next_int(300)) * scale))
    kind = run_index % 4
    if kind in (0, 1):
        # Identical files: the common case when checking copies.
        left = text_lines(rng, n_lines)
        return [left, left]
    if kind == 2:
        # One late byte flip.
        left = text_lines(rng, n_lines)
        mutated = bytearray(left)
        position = len(mutated) // 2 + rng.next_int(max(1, len(mutated) // 2))
        position = min(position, len(mutated) - 1)
        mutated[position] = (mutated[position] + 1) % 128 or 97
        return [left, bytes(mutated)]
    # Dissimilar files / prefix (EOF) case.
    left = text_lines(rng, n_lines)
    if rng.chance(1, 2):
        return [left, left[: len(left) // 2]]
    return [left, text_lines(rng, n_lines)]
