"""tee — duplicate input to output while accounting.

The real tee copies stdin both to stdout and to a file; ours copies
stream 0 to the output and to an in-memory "file" whose checksum and
size are reported, plus line accounting.  Branches are an almost
unconditional copy loop with rare newline hits.
"""

from repro.benchmarksuite.inputs import text_lines

DESCRIPTION = "text files (100-3000 lines)"
RUNS = 8

SOURCE = r"""
// tee: copy stream 0 to the output and to a checksummed sink.
int sink[4096];
int sink_len;
int checksum;
int lines;

int main() {
    int c;
    c = getc(0);
    while (c != -1) {
        putc(c);
        sink[sink_len % 4096] = c;
        sink_len = sink_len + 1;
        checksum = (checksum * 31 + c) % 65521;
        if (c == '\n') lines = lines + 1;
        c = getc(0);
    }
    putc('\n');
    puti(lines); putc(' ');
    puti(sink_len); putc(' ');
    puti(checksum); putc('\n');
    return 0;
}
"""


def make_inputs(rng, run_index, scale):
    n_lines = max(5, int((100 + rng.next_int(300)) * scale))
    return [text_lines(rng, n_lines)]
