"""cccp — the GNU C preprocessor's core: macros and conditionals.

Handles ``#define NAME value``, ``#undef``, ``#ifdef``, ``#ifndef``,
``#else``, ``#endif``, expands defined identifiers in program text,
and strips ``/* */`` comments.  Symbol lookup uses an open-addressed
hash table over an interned name pool.

The scanner dispatches on a dense character-class ``switch`` that the
compiler lowers to a jump table — an unknown-target indirect branch —
reproducing cccp's standout Table 2 row (the one benchmark with a
significant unknown-target fraction).
"""

from repro.benchmarksuite.inputs import c_source

DESCRIPTION = "C programs (100-3000 lines)"
RUNS = 10

SOURCE = r"""
// cccp: macro expansion + conditional compilation over stream 0.
int name_pool[8192];     // interned name characters
int pool_len;
int sym_start[512];      // hash slot -> offset into name_pool, or -1
int sym_len[512];
int sym_value[512];      // macro replacement value (integer macros)
int sym_defined[512];

int word[128];           // current identifier
int word_len;

int cond_stack[64];      // #ifdef nesting: 1 = emitting, 0 = skipping
int cond_top;

int emitted;
int skipped;
int defines;
int expansions;

int hash_word() {
    int h = 0;
    int i;
    for (i = 0; i < word_len; i = i + 1)
        h = (h * 131 + word[i]) % 512;
    return h;
}

int slot_matches(int slot) {
    int i;
    if (!sym_defined[slot]) return 0;
    if (sym_len[slot] != word_len) return 0;
    for (i = 0; i < word_len; i = i + 1)
        if (name_pool[sym_start[slot] + i] != word[i]) return 0;
    return 1;
}

// Find the slot for the current word; returns slot with matching name,
// or the first free slot (linear probing).
int find_slot() {
    int h = hash_word();
    int probes = 0;
    while (probes < 512) {
        if (!sym_defined[h]) return h;
        if (slot_matches(h)) return h;
        h = h + 1;
        if (h == 512) h = 0;
        probes = probes + 1;
    }
    return h;
}

int define_word(int value) {
    int slot = find_slot();
    int i;
    if (!sym_defined[slot]) {
        sym_start[slot] = pool_len;
        sym_len[slot] = word_len;
        for (i = 0; i < word_len; i = i + 1) {
            name_pool[pool_len] = word[i];
            pool_len = pool_len + 1;
        }
    }
    sym_defined[slot] = 1;
    sym_value[slot] = value;
    defines = defines + 1;
    return slot;
}

int undef_word() {
    int slot = find_slot();
    if (sym_defined[slot] && slot_matches(slot)) sym_defined[slot] = 0;
    return 0;
}

int lookup_word() {
    // Returns the macro value or -1 when undefined.
    int slot = find_slot();
    if (sym_defined[slot] && slot_matches(slot)) return sym_value[slot];
    return -1;
}

// Character classes for the scanner's dispatch switch.
int char_class(int c) {
    if (c >= 'a' && c <= 'z') return 1;
    if (c >= 'A' && c <= 'Z') return 1;
    if (c == '_') return 1;
    if (c >= '0' && c <= '9') return 2;
    if (c == ' ' || c == '\t') return 3;
    if (c == '\n') return 4;
    if (c == '#') return 5;
    if (c == '/') return 6;
    if (c == '*') return 7;
    if (c == '(' || c == ')' || c == '{' || c == '}') return 8;
    if (c == '=' || c == '+' || c == '-' || c == '<' || c == '>') return 9;
    if (c == ';' || c == ',') return 10;
    return 0;
}

int emitting() {
    int i;
    for (i = 0; i <= cond_top; i = i + 1)
        if (!cond_stack[i]) return 0;
    return 1;
}

int put_word() {
    int i;
    for (i = 0; i < word_len; i = i + 1) putc(word[i]);
    return 0;
}

// Directive codes.
int directive_code() {
    // Identify the directive in word[]: 1 define, 2 undef, 3 ifdef,
    // 4 ifndef, 5 else, 6 endif, 0 other (include, pragma, ...).
    if (word_len == 6 && word[0] == 'd' && word[1] == 'e' && word[2] == 'f'
        && word[3] == 'i' && word[4] == 'n' && word[5] == 'e') return 1;
    if (word_len == 5 && word[0] == 'u' && word[1] == 'n' && word[2] == 'd'
        && word[3] == 'e' && word[4] == 'f') return 2;
    if (word_len == 5 && word[0] == 'i' && word[1] == 'f' && word[2] == 'd'
        && word[3] == 'e' && word[4] == 'f') return 3;
    if (word_len == 6 && word[0] == 'i' && word[1] == 'f' && word[2] == 'n'
        && word[3] == 'd' && word[4] == 'e' && word[5] == 'f') return 4;
    if (word_len == 4 && word[0] == 'e' && word[1] == 'l' && word[2] == 's'
        && word[3] == 'e') return 5;
    if (word_len == 5 && word[0] == 'e' && word[1] == 'n' && word[2] == 'd'
        && word[3] == 'i' && word[4] == 'f') return 6;
    return 0;
}

int pending;             // one-character pushback, -1 when empty

int next_char() {
    int c;
    if (pending != -1) { c = pending; pending = -1; return c; }
    return getc(0);
}

int read_word(int first) {
    int c;
    int cls;
    word_len = 0;
    word[0] = first;
    word_len = 1;
    c = next_char();
    cls = char_class(c);
    while (cls == 1 || cls == 2) {
        if (word_len < 127) { word[word_len] = c; word_len = word_len + 1; }
        c = next_char();
        cls = char_class(c);
    }
    pending = c;
    return word_len;
}

int read_number(int first) {
    int value = first - '0';
    int c = next_char();
    while (c >= '0' && c <= '9') {
        value = value * 10 + (c - '0');
        c = next_char();
    }
    pending = c;
    return value;
}

int skip_spaces() {
    int c = next_char();
    while (c == ' ' || c == '\t') c = next_char();
    pending = c;
    return 0;
}

int handle_directive() {
    int code; int value; int c; int defined_flag;
    skip_spaces();
    c = next_char();
    if (char_class(c) != 1) { pending = c; return 0; }
    read_word(c);
    code = directive_code();
    if (code == 1) {            // #define NAME [value]
        skip_spaces();
        c = next_char();
        if (char_class(c) == 1) {
            read_word(c);
            skip_spaces();
            c = next_char();
            value = 1;
            if (c >= '0' && c <= '9') value = read_number(c);
            else pending = c;
            if (emitting()) define_word(value);
        } else pending = c;
    } else if (code == 2) {     // #undef NAME
        skip_spaces();
        c = next_char();
        if (char_class(c) == 1) {
            read_word(c);
            if (emitting()) undef_word();
        } else pending = c;
    } else if (code == 3 || code == 4) {   // #ifdef / #ifndef
        skip_spaces();
        c = next_char();
        defined_flag = 0;
        if (char_class(c) == 1) {
            read_word(c);
            if (lookup_word() != -1) defined_flag = 1;
        } else pending = c;
        cond_top = cond_top + 1;
        if (code == 3) cond_stack[cond_top] = defined_flag;
        else cond_stack[cond_top] = !defined_flag;
    } else if (code == 5) {     // #else
        if (cond_top > 0) cond_stack[cond_top] = !cond_stack[cond_top];
    } else if (code == 6) {     // #endif
        if (cond_top > 0) cond_top = cond_top - 1;
    }
    // Discard the rest of the directive line.
    c = next_char();
    while (c != -1 && c != '\n') c = next_char();
    pending = c;
    return code;
}

int skip_comment() {
    // Inside "/*": consume until "*/".
    int c = next_char();
    while (c != -1) {
        if (c == '*') {
            c = next_char();
            if (c == '/') return 0;
        } else {
            c = next_char();
        }
    }
    return 0;
}

int main() {
    int c; int cls; int value; int at_line_start;

    pending = -1;
    cond_stack[0] = 1;
    cond_top = 0;
    at_line_start = 1;

    c = next_char();
    while (c != -1) {
        cls = char_class(c);
        switch (cls) {
            case 1:  // identifier: expand if defined
                read_word(c);
                if (emitting()) {
                    value = lookup_word();
                    if (value != -1) {
                        puti(value);
                        expansions = expansions + 1;
                    } else {
                        put_word();
                    }
                    emitted = emitted + word_len;
                } else skipped = skipped + word_len;
                at_line_start = 0;
                break;
            case 2:  // number: copy
                if (emitting()) { putc(c); emitted = emitted + 1; }
                else skipped = skipped + 1;
                at_line_start = 0;
                break;
            case 3:  // blanks keep line-start status
                if (emitting()) { putc(c); emitted = emitted + 1; }
                break;
            case 4:  // newline
                if (emitting()) { putc(c); emitted = emitted + 1; }
                at_line_start = 1;
                break;
            case 5:  // '#'
                if (at_line_start) handle_directive();
                else if (emitting()) { putc(c); emitted = emitted + 1; }
                break;
            case 6:  // '/': maybe a comment
                value = next_char();
                if (value == '*') { skip_comment(); }
                else {
                    pending = value;
                    if (emitting()) { putc(c); emitted = emitted + 1; }
                }
                at_line_start = 0;
                break;
            case 7:
            case 8:
            case 9:
            case 10:
            default:
                if (emitting()) { putc(c); emitted = emitted + 1; }
                at_line_start = 0;
                break;
        }
        c = next_char();
    }

    putc('\n');
    puti(emitted); putc(' ');
    puti(skipped); putc(' ');
    puti(defines); putc(' ');
    puti(expansions); putc('\n');
    return 0;
}
"""


def make_inputs(rng, run_index, scale):
    n_lines = max(15, int((150 + rng.next_int(600)) * scale))
    source = c_source(rng, n_lines)
    # Sprinkle in conditional-compilation regions so the #ifdef stack
    # and #else/#endif paths run.
    lines = source.decode("ascii").splitlines()
    decorated = []
    open_regions = 0
    for index, line in enumerate(lines):
        if rng.chance(1, 12):
            name = "FEATURE%d" % rng.next_int(6)
            if rng.chance(1, 2):
                decorated.append("#define %s %d" % (name, rng.next_int(100)))
            else:
                directive = "#ifdef" if rng.chance(1, 2) else "#ifndef"
                decorated.append("%s %s" % (directive, name))
                open_regions += 1
        decorated.append(line)
        if open_regions and rng.chance(1, 6):
            if rng.chance(1, 3):
                decorated.append("#else")
            decorated.append("#endif")
            open_regions -= 1
    while open_regions:
        decorated.append("#endif")
        open_regions -= 1
    return [("\n".join(decorated) + "\n").encode("ascii")]
