"""eqn — troff equation formatting (Table 5's other extra row).

The core of eqn is a recursive-descent parse of the equation language
(``over``, ``sup``, ``sub``, ``sqrt``, ``{ }`` grouping) followed by
recursive box layout: each construct computes a (width, height,
depth) box from its children.  Our version parses one equation per
line, computes the box metrics, and prints them with a flattened
rendering, exercising the same parser/layout branch mix.
"""

DESCRIPTION = "equation descriptions, one per line"
RUNS = 8

SOURCE = r"""
// eqn: parse 'a over b sup 2' style equations from stream 0 and
// report layout boxes.  Box metrics per node: width, height, depth.

int line[512];
int line_len;
int pos;

int equations;
int errors;
int total_width;
int max_height;

// Tokeniser over the current line.
int tok_kind;        // 0 eof, 1 word, 2 number, 3 '{', 4 '}', 5 '(',
                     // 6 ')', 7 operator char, 8 keyword-over,
                     // 9 keyword-sup, 10 keyword-sub, 11 keyword-sqrt
int tok_len;         // width of the token's text
int tok_word[32];

int is_letter(int c) {
    if (c >= 'a' && c <= 'z') return 1;
    if (c >= 'A' && c <= 'Z') return 1;
    return 0;
}

int keyword_code() {
    if (tok_len == 4 && tok_word[0] == 'o' && tok_word[1] == 'v'
        && tok_word[2] == 'e' && tok_word[3] == 'r') return 8;
    if (tok_len == 3 && tok_word[0] == 's' && tok_word[1] == 'u'
        && tok_word[2] == 'p') return 9;
    if (tok_len == 3 && tok_word[0] == 's' && tok_word[1] == 'u'
        && tok_word[2] == 'b') return 10;
    if (tok_len == 4 && tok_word[0] == 's' && tok_word[1] == 'q'
        && tok_word[2] == 'r' && tok_word[3] == 't') return 11;
    return 1;
}

int next_token() {
    int c;
    while (pos < line_len && (line[pos] == ' ' || line[pos] == '\t'))
        pos = pos + 1;
    if (pos >= line_len) { tok_kind = 0; tok_len = 0; return 0; }
    c = line[pos];
    if (is_letter(c)) {
        tok_len = 0;
        while (pos < line_len && is_letter(line[pos])) {
            if (tok_len < 32) { tok_word[tok_len] = line[pos]; }
            tok_len = tok_len + 1;
            pos = pos + 1;
        }
        tok_kind = keyword_code();
        return tok_kind;
    }
    if (c >= '0' && c <= '9') {
        tok_len = 0;
        while (pos < line_len && line[pos] >= '0' && line[pos] <= '9') {
            tok_len = tok_len + 1;
            pos = pos + 1;
        }
        tok_kind = 2;
        return 2;
    }
    pos = pos + 1;
    tok_len = 1;
    if (c == '{') tok_kind = 3;
    else if (c == '}') tok_kind = 4;
    else if (c == '(') tok_kind = 5;
    else if (c == ')') tok_kind = 6;
    else tok_kind = 7;
    return tok_kind;
}

// Box layout: parse functions return packed metrics
// width * 10000 + height * 100 + depth (all < 100).
int pack(int width, int height, int depth) {
    if (width > 99) width = 99;
    if (height > 99) height = 99;
    if (depth > 99) depth = 99;
    return width * 10000 + height * 100 + depth;
}

int box_width(int box) { return box / 10000; }
int box_height(int box) { return (box / 100) % 100; }
int box_depth(int box) { return box % 100; }

// Grammar:
//   equation := box+                     (horizontal concatenation)
//   box      := primary (('over'|'sup'|'sub') primary)*
//   primary  := word | number | operator | '{' equation '}'
//             | '(' equation ')' | 'sqrt' primary
// (Minic resolves forward calls without prototypes.)

int parse_primary() {
    int inner; int kind;
    kind = tok_kind;
    if (kind == 1 || kind == 2 || kind == 7) {
        inner = pack(tok_len, 1, 0);
        next_token();
        return inner;
    }
    if (kind == 3) {       // { equation }
        next_token();
        inner = parse_equation();
        if (tok_kind == 4) next_token();
        else errors = errors + 1;
        return inner;
    }
    if (kind == 5) {       // ( equation )
        next_token();
        inner = parse_equation();
        if (tok_kind == 6) next_token();
        else errors = errors + 1;
        return pack(box_width(inner) + 2, box_height(inner),
                    box_depth(inner));
    }
    if (kind == 11) {      // sqrt primary
        next_token();
        inner = parse_primary();
        return pack(box_width(inner) + 2, box_height(inner) + 1,
                    box_depth(inner));
    }
    errors = errors + 1;
    next_token();
    return pack(1, 1, 0);
}

int parse_box() {
    int left; int right; int op;
    left = parse_primary();
    while (tok_kind == 8 || tok_kind == 9 || tok_kind == 10) {
        op = tok_kind;
        next_token();
        right = parse_primary();
        if (op == 8) {
            // over: stacked fraction.
            left = pack(
                (box_width(left) > box_width(right))
                    * (box_width(left) - box_width(right))
                    + box_width(right),   // max of the two widths
                box_height(left) + 1,
                box_depth(left) + box_height(right) + box_depth(right));
        } else if (op == 9) {
            // sup: raised script.
            left = pack(box_width(left) + box_width(right),
                        box_height(left) + box_height(right),
                        box_depth(left));
        } else {
            // sub: lowered script.
            left = pack(box_width(left) + box_width(right),
                        box_height(left),
                        box_depth(left) + box_height(right));
        }
    }
    return left;
}

int parse_equation() {
    int total; int piece;
    total = parse_box();
    while (tok_kind != 0 && tok_kind != 4 && tok_kind != 6) {
        piece = parse_box();
        total = pack(box_width(total) + box_width(piece),
                     (box_height(total) > box_height(piece))
                         * (box_height(total) - box_height(piece))
                         + box_height(piece),
                     (box_depth(total) > box_depth(piece))
                         * (box_depth(total) - box_depth(piece))
                         + box_depth(piece));
    }
    return total;
}

int main() {
    int c; int done = 0; int box;

    while (!done) {
        line_len = 0;
        c = getc(0);
        while (c != -1 && c != '\n') {
            if (line_len < 512) { line[line_len] = c; line_len = line_len + 1; }
            c = getc(0);
        }
        if (c == -1 && line_len == 0) {
            done = 1;
        } else {
            pos = 0;
            next_token();
            if (tok_kind != 0) {
                box = parse_equation();
                equations = equations + 1;
                total_width = total_width + box_width(box);
                if (box_height(box) + box_depth(box) > max_height)
                    max_height = box_height(box) + box_depth(box);
                puti(box_width(box)); putc('x');
                puti(box_height(box)); putc('+');
                puti(box_depth(box)); putc('\n');
            }
            if (c == -1) done = 1;
        }
    }

    puti(equations); putc(' ');
    puti(errors); putc(' ');
    puti(total_width); putc(' ');
    puti(max_height); putc('\n');
    return 0;
}
"""

_ATOMS = ["x", "y", "alpha", "beta", "n", "k", "pi", "theta", "sum", "f"]


def _equation(rng, depth):
    roll = rng.next_int(10)
    if depth >= 3 or roll < 3:
        if rng.chance(1, 3):
            return str(rng.next_int(100))
        return rng.choice(_ATOMS)
    if roll < 5:
        return "%s over %s" % (_equation(rng, depth + 1),
                               _equation(rng, depth + 1))
    if roll < 7:
        op = "sup" if rng.chance(1, 2) else "sub"
        return "%s %s %s" % (rng.choice(_ATOMS), op,
                             _equation(rng, depth + 1))
    if roll < 8:
        return "sqrt { %s }" % _equation(rng, depth + 1)
    if roll < 9:
        return "( %s + %s )" % (_equation(rng, depth + 1),
                                _equation(rng, depth + 1))
    return "%s + %s" % (_equation(rng, depth + 1),
                        _equation(rng, depth + 1))


def make_inputs(rng, run_index, scale):
    n_equations = max(10, int((120 + rng.next_int(240)) * scale))
    lines = [_equation(rng, 0) for _ in range(n_equations)]
    return [("\n".join(lines) + "\n").encode("ascii")]
