"""grep — line-oriented pattern search.

A Kernighan-style backtracking matcher supporting literals, ``.``,
``c*``, ``^`` anchors, ``$``, and ``[abc]`` character classes.  The
inner loop tries the pattern at every position of every line; the
first-character comparison almost always fails, which is exactly why
the paper's grep shows a 5% taken fraction for conditional branches.
"""

from repro.benchmarksuite.inputs import grep_pattern, text_lines

DESCRIPTION = "exercised various patterns over text"
RUNS = 10

SOURCE = r"""
// grep: print lines of stream 1 matching the pattern on stream 0.
int pat[256];
int pat_len;
int line[2048];
int line_len;
int match_count;
int line_number;

// Does line[li..] match pat[pi..]?
int match_here(int li, int pi) {
    int c;
    if (pi == pat_len) return 1;
    if (pi + 1 < pat_len && pat[pi + 1] == '*')
        return match_star(pat[pi], li, pi + 2);
    if (pat[pi] == '$' && pi + 1 == pat_len)
        return li == line_len;
    if (pat[pi] == '[')
        return match_class(li, pi);
    if (li < line_len) {
        c = pat[pi];
        if (c == '.' || c == line[li])
            return match_here(li + 1, pi + 1);
    }
    return 0;
}

// Kleene star: zero or more of ch, then the rest of the pattern.
int match_star(int ch, int li, int pi) {
    do {
        if (match_here(li, pi)) return 1;
        if (li >= line_len) return 0;
        if (ch != '.' && line[li] != ch) return 0;
        li = li + 1;
    } while (1);
    return 0;
}

// Character class [abc]: any listed character matches.
int match_class(int li, int pi) {
    int probe;
    int hit = 0;
    if (li >= line_len) return 0;
    probe = pi + 1;
    while (probe < pat_len && pat[probe] != ']') {
        if (pat[probe] == line[li]) hit = 1;
        probe = probe + 1;
    }
    if (!hit) return 0;
    return match_here(li + 1, probe + 1);
}

int match_line() {
    int start;
    if (pat_len > 0 && pat[0] == '^') {
        // Anchored: try only position 0 with the anchor stripped.
        return match_here(0, 1);
    }
    start = 0;
    while (start <= line_len) {
        if (match_here(start, 0)) return 1;
        start = start + 1;
    }
    return 0;
}

int read_pattern() {
    int c;
    c = getc(0);
    while (c != -1 && c != '\n') {
        if (pat_len < 255) { pat[pat_len] = c; pat_len = pat_len + 1; }
        c = getc(0);
    }
    return pat_len;
}

int emit_line() {
    int i;
    for (i = 0; i < line_len; i = i + 1) putc(line[i]);
    putc('\n');
    return 0;
}

int main() {
    int c; int done = 0;
    read_pattern();
    while (!done) {
        line_len = 0;
        c = getc(1);
        while (c != -1 && c != '\n') {
            if (line_len < 2047) { line[line_len] = c; line_len = line_len + 1; }
            c = getc(1);
        }
        if (c == -1 && line_len == 0) {
            done = 1;
        } else {
            line_number = line_number + 1;
            if (match_line()) {
                match_count = match_count + 1;
                puti(line_number); putc(':');
                emit_line();
            }
            if (c == -1) done = 1;
        }
    }
    puti(match_count); putc('\n');
    return match_count == 0;
}
"""


def make_inputs(rng, run_index, scale):
    n_lines = max(10, int((150 + rng.next_int(500)) * scale))
    return [grep_pattern(rng) + b"\n", text_lines(rng, n_lines)]
