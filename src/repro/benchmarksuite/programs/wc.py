"""wc — line, word, and character counting.

The original wc walks its input once with a small in-word state
machine; branch behaviour is dominated by character-class tests that
are usually false (most characters are neither newlines nor
word/space boundaries), giving wc its low taken fraction in Table 2.
"""

from repro.benchmarksuite.inputs import c_source

DESCRIPTION = "same input as cccp (C sources)"
RUNS = 8

SOURCE = r"""
// wc: count lines, words, and characters of stream 0.
int line_count;
int word_count;
int char_count;
int longest_line;

int is_space(int c) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return 1;
    return 0;
}

int main() {
    int c;
    int in_word = 0;
    int this_line = 0;

    c = getc(0);
    while (c != -1) {
        char_count = char_count + 1;
        if (c == '\n') {
            line_count = line_count + 1;
            if (this_line > longest_line) longest_line = this_line;
            this_line = 0;
        } else {
            this_line = this_line + 1;
        }
        if (is_space(c)) {
            in_word = 0;
        } else {
            if (!in_word) word_count = word_count + 1;
            in_word = 1;
        }
        c = getc(0);
    }
    if (this_line > longest_line) longest_line = this_line;

    puti(line_count); putc(' ');
    puti(word_count); putc(' ');
    puti(char_count); putc(' ');
    puti(longest_line); putc('\n');
    return 0;
}
"""


def make_inputs(rng, run_index, scale):
    n_lines = max(10, int((150 + rng.next_int(400)) * scale))
    return [c_source(rng, n_lines)]
