"""compress — LZW compression, the algorithm of Unix compress(1).

A hashed string table maps (prefix-code, byte) pairs to codes; the hot
loop is the open-addressing probe.  Emits 12-bit codes packed into
bytes plus a compression-ratio report.
"""

from repro.benchmarksuite.inputs import binary_blob, c_source, text_lines

DESCRIPTION = "C sources and text (same family as cccp)"
RUNS = 8

SOURCE = r"""
// compress: LZW with 12-bit codes over stream 0.
int hash_key[8192];     // (prefix << 8) | byte, or -1 when empty
int hash_code[8192];
int in_bytes;
int out_bytes;
int table_full_events;

int emit_code(int code) {
    // Pack a 12-bit code as byte + nibble bookkeeping (simplified
    // packing: high byte then low nibble in its own byte).
    putc((code >> 4) & 255);
    putc(code & 15);
    out_bytes = out_bytes + 2;
    return 0;
}

int probe(int key) {
    // Open addressing with a secondary step, as in compress.
    int h = (key * 2654435761) % 8192;
    if (h < 0) h = h + 8192;
    while (hash_key[h] != -1 && hash_key[h] != key) {
        h = h + 257;
        if (h >= 8192) h = h - 8192;
    }
    return h;
}

int main() {
    int i; int c; int ent; int key; int slot;
    int next_code = 256;

    for (i = 0; i < 8192; i = i + 1) hash_key[i] = -1;

    ent = getc(0);
    if (ent == -1) { puti(0); putc('\n'); return 0; }
    in_bytes = 1;

    c = getc(0);
    while (c != -1) {
        in_bytes = in_bytes + 1;
        key = (ent << 8) | c;
        slot = probe(key);
        if (hash_key[slot] == key) {
            ent = hash_code[slot];
        } else {
            emit_code(ent);
            if (next_code < 4096) {
                hash_key[slot] = key;
                hash_code[slot] = next_code;
                next_code = next_code + 1;
            } else {
                table_full_events = table_full_events + 1;
            }
            ent = c;
        }
        c = getc(0);
    }
    emit_code(ent);

    putc('\n');
    puti(in_bytes); putc(' ');
    puti(out_bytes); putc(' ');
    puti(next_code - 256); putc(' ');
    puti(table_full_events); putc('\n');
    return 0;
}
"""


def make_inputs(rng, run_index, scale):
    n_lines = max(10, int((200 + rng.next_int(400)) * scale))
    kind = run_index % 3
    if kind == 0:
        return [c_source(rng, n_lines)]
    if kind == 1:
        return [text_lines(rng, n_lines)]
    return [binary_blob(rng, max(256, int(4000 * scale)))]
