"""The benchmark programs, one module per benchmark.

Each module exports:

* ``SOURCE`` — the Minic program text,
* ``RUNS`` — how many profiling runs the suite uses,
* ``DESCRIPTION`` — the Table 1 input description,
* ``make_inputs(rng, run_index, scale)`` — input streams for one run.
"""
