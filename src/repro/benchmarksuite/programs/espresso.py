"""espresso — two-level logic minimization (Table 5's extra row).

A Quine-McCluskey-flavoured core of espresso: read an ON-set of cubes
in PLA notation (one cube per line over ``0``/``1``/``-``), repeatedly
merge distance-1 cube pairs into larger implicants, drop covered
cubes, then greedily select a cover.  The merging passes are the
branchy kernel: nested cube-pair loops full of per-literal
comparisons.
"""

DESCRIPTION = "PLA cube lists (0/1/- per variable)"
RUNS = 8

SOURCE = r"""
// espresso: minimise the ON-set cube list on stream 0.
// Literal encoding: 0, 1, or 2 for '-'.
int cube[5120];          // cubes * n_vars literals
int alive[320];
int n_cubes;
int n_vars;

int merges;
int drops;
int cover_size;

int lit(int c, int v) { return cube[c * 16 + v]; }

int set_lit(int c, int v, int value) { cube[c * 16 + v] = value; return 0; }

// Distance between cubes a and b: number of differing literals;
// 99 when they differ in a position where one has '-' and the other
// does not (not mergeable).
int distance(int a, int b) {
    int v; int d = 0; int la; int lb;
    for (v = 0; v < n_vars; v = v + 1) {
        la = lit(a, v);
        lb = lit(b, v);
        if (la != lb) {
            if (la == 2 || lb == 2) return 99;
            d = d + 1;
        }
    }
    return d;
}

// Does cube a contain cube b (a covers b)?
int contains(int a, int b) {
    int v; int la;
    for (v = 0; v < n_vars; v = v + 1) {
        la = lit(a, v);
        if (la != 2 && la != lit(b, v)) return 0;
    }
    return 1;
}

int equal_cubes(int a, int b) {
    int v;
    for (v = 0; v < n_vars; v = v + 1)
        if (lit(a, v) != lit(b, v)) return 0;
    return 1;
}

int add_merged(int a, int b) {
    // Append the consensus of a distance-1 pair; returns its index,
    // or -1 when it already exists or space ran out.
    int v; int i;
    if (n_cubes >= 320) return -1;
    for (v = 0; v < n_vars; v = v + 1) {
        if (lit(a, v) == lit(b, v)) set_lit(n_cubes, v, lit(a, v));
        else set_lit(n_cubes, v, 2);
    }
    for (i = 0; i < n_cubes; i = i + 1) {
        if (alive[i] && equal_cubes(i, n_cubes)) return -1;
    }
    alive[n_cubes] = 1;
    n_cubes = n_cubes + 1;
    return n_cubes - 1;
}

int merge_pass() {
    // One closure pass; returns the number of merges performed.
    int a; int b; int before = n_cubes; int found = 0;
    for (a = 0; a < before; a = a + 1) {
        if (!alive[a]) continue;
        for (b = a + 1; b < before; b = b + 1) {
            if (!alive[b]) continue;
            if (distance(a, b) == 1) {
                if (add_merged(a, b) != -1) {
                    found = found + 1;
                    merges = merges + 1;
                }
            }
        }
    }
    return found;
}

int drop_covered() {
    int a; int b;
    for (a = 0; a < n_cubes; a = a + 1) {
        if (!alive[a]) continue;
        for (b = 0; b < n_cubes; b = b + 1) {
            if (a == b || !alive[b]) continue;
            if (contains(b, a)) {
                alive[a] = 0;
                drops = drops + 1;
                b = n_cubes;  // break
            }
        }
    }
    return 0;
}

int literal_count(int c) {
    int v; int n = 0;
    for (v = 0; v < n_vars; v = v + 1)
        if (lit(c, v) != 2) n = n + 1;
    return n;
}

int emit_cube(int c) {
    int v; int l;
    for (v = 0; v < n_vars; v = v + 1) {
        l = lit(c, v);
        if (l == 0) putc('0');
        else if (l == 1) putc('1');
        else putc('-');
    }
    putc('\n');
    return 0;
}

int main() {
    int c; int v; int pass; int total_literals;

    // Parse the PLA: one cube per line.
    c = getc(0);
    while (c != -1 && n_cubes < 160) {
        v = 0;
        while (c == '0' || c == '1' || c == '-') {
            if (v < 16) {
                if (c == '0') set_lit(n_cubes, v, 0);
                else if (c == '1') set_lit(n_cubes, v, 1);
                else set_lit(n_cubes, v, 2);
                v = v + 1;
            }
            c = getc(0);
        }
        if (v > 0) {
            if (v > n_vars) n_vars = v;
            alive[n_cubes] = 1;
            n_cubes = n_cubes + 1;
        }
        while (c != -1 && c != '\n') c = getc(0);
        if (c == '\n') c = getc(0);
    }

    // Expand: merge to closure (bounded passes).
    for (pass = 0; pass < 6; pass = pass + 1) {
        if (merge_pass() == 0) pass = 6;
        drop_covered();
    }

    // Emit the surviving cover, cheapest cubes first is not needed;
    // report totals.
    total_literals = 0;
    for (c = 0; c < n_cubes; c = c + 1) {
        if (alive[c]) {
            cover_size = cover_size + 1;
            total_literals = total_literals + literal_count(c);
            if (cover_size <= 32) emit_cube(c);
        }
    }
    puti(cover_size); putc(' ');
    puti(total_literals); putc(' ');
    puti(merges); putc(' ');
    puti(drops); putc('\n');
    return 0;
}
"""


def make_inputs(rng, run_index, scale):
    n_vars = 6 + rng.next_int(5)           # 6..10 variables
    n_cubes = max(8, int((24 + rng.next_int(48)) * min(1.0, scale * 2)))
    lines = []
    for _ in range(n_cubes):
        cube = []
        for _ in range(n_vars):
            roll = rng.next_int(10)
            if roll < 4:
                cube.append("0")
            elif roll < 8:
                cube.append("1")
            else:
                cube.append("-")
        lines.append("".join(cube))
    return [("\n".join(lines) + "\n").encode("ascii")]
