"""tar — block-structured archive creation and extraction.

Create mode reads two member "files" and writes the archive: a header
per member (magic, id, 4-byte size) followed by 64-byte data blocks,
each zero-padded and followed by a checksum byte.  Extract mode parses
an archive, verifies every block checksum, and writes the member
contents out.  The inner 64-iteration block loops give tar the very
high taken fraction the paper reports (89%).
"""

from repro.benchmarksuite.inputs import binary_blob, text_lines

DESCRIPTION = "save/extract files"
RUNS = 10

SOURCE = r"""
// tar: stream 0 = mode ('c' create from streams 1 and 2,
//                       'x' extract the archive on stream 1).
int buf[65536];
int members;
int total_bytes;
int bad_blocks;

int put32(int value) {
    putc((value >> 24) & 255);
    putc((value >> 16) & 255);
    putc((value >> 8) & 255);
    putc(value & 255);
    return 0;
}

int archive_member(int stream_id, int member_id) {
    int n = 0; int c; int i; int pos; int sum; int byte;

    if (stream_id == 1) { c = getc(1); while (c != -1) { buf[n] = c; n = n + 1; c = getc(1); } }
    else { c = getc(2); while (c != -1) { buf[n] = c; n = n + 1; c = getc(2); } }

    putc('T');
    putc(member_id);
    put32(n);
    pos = 0;
    while (pos < n) {
        sum = 0;
        for (i = 0; i < 64; i = i + 1) {
            if (pos + i < n) byte = buf[pos + i];
            else byte = 0;
            putc(byte);
            sum = (sum + byte) & 255;
        }
        putc(sum);
        pos = pos + 64;
    }
    members = members + 1;
    total_bytes = total_bytes + n;
    return n;
}

int get32() {
    int value = 0; int i; int c;
    for (i = 0; i < 4; i = i + 1) {
        c = getc(1);
        if (c == -1) return -1;
        value = (value << 8) | c;
    }
    return value;
}

int extract_member(int member_id) {
    int size; int pos; int i; int c; int sum; int stored;
    size = get32();
    if (size < 0) return -1;
    pos = 0;
    while (pos < size) {
        sum = 0;
        for (i = 0; i < 64; i = i + 1) {
            c = getc(1);
            if (c == -1) c = 0;
            if (pos + i < size) {
                putc(c);
                total_bytes = total_bytes + 1;
            }
            sum = (sum + c) & 255;
        }
        stored = getc(1);
        if (stored != sum) bad_blocks = bad_blocks + 1;
        pos = pos + 64;
    }
    members = members + 1;
    return size;
}

int main() {
    int mode; int c; int id;

    mode = getc(0);
    if (mode == 'c') {
        archive_member(1, 1);
        archive_member(2, 2);
        putc(0);
    } else {
        c = getc(1);
        while (c == 'T') {
            id = getc(1);
            if (extract_member(id) < 0) c = -1;
            else c = getc(1);
        }
    }

    putc('\n');
    puti(members); putc(' ');
    puti(total_bytes); putc(' ');
    puti(bad_blocks); putc('\n');
    return bad_blocks != 0;
}
"""


def _build_archive(payloads):
    """Replicate the Minic archive format for extract-mode inputs."""
    archive = bytearray()
    for member_id, payload in enumerate(payloads, start=1):
        archive.append(ord("T"))
        archive.append(member_id)
        archive.extend(len(payload).to_bytes(4, "big"))
        position = 0
        while position < len(payload):
            block = payload[position:position + 64]
            block = block + b"\0" * (64 - len(block))
            archive.extend(block)
            archive.append(sum(block) & 255)
            position += 64
    archive.append(0)
    return bytes(archive)


def make_inputs(rng, run_index, scale):
    size_a = max(64, int((1500 + rng.next_int(3000)) * scale))
    n_lines = max(4, int((40 + rng.next_int(80)) * scale))
    file_a = binary_blob(rng, size_a)
    file_b = text_lines(rng, n_lines)
    if run_index % 2 == 0:
        return [b"c", file_a, file_b]
    archive = _build_archive([file_a, file_b])
    if rng.chance(1, 4):
        # Corrupt one archive byte so the checksum path runs.
        corrupted = bytearray(archive)
        position = 8 + rng.next_int(max(1, len(corrupted) - 16))
        corrupted[position] ^= 0x5A
        archive = bytes(corrupted)
    return [b"x", archive]
