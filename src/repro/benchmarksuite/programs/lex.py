"""lex — a table-driven lexical analyzer.

Real lex compiles regular expressions into DFA tables and links them
with a fixed table-walking driver.  This module does the same at build
time: a small Python DFA builder produces the character-class and
transition tables, which are embedded into the Minic source as array
initializers.  The Minic program is the driver: a maximal-munch loop
walking ``delta[state * NC + class]`` and counting tokens by type over
C-like source, the dominant branch being the table-walk dispatch
(taken roughly half the time, matching lex's ~49% in Table 2).
"""

from repro.benchmarksuite.inputs import c_source

DESCRIPTION = "lexing C-like sources"
RUNS = 6

# --- build-time DFA construction -------------------------------------------

# Character classes.
_CLS_OTHER = 0
_CLS_LETTER = 1
_CLS_DIGIT = 2
_CLS_BLANK = 3
_CLS_NEWLINE = 4
_CLS_QUOTE = 5
_CLS_SLASH = 6
_CLS_STAR = 7
_CLS_EQ = 8
_CLS_LT = 9
_CLS_GT = 10
_CLS_BANG = 11
_CLS_AMP = 12
_CLS_PIPE = 13
_CLS_PLUS = 14
_CLS_MINUS = 15
_CLS_PUNCT = 16
_CLS_BACKSLASH = 17
N_CLASSES = 18

# Token types counted by the driver.
TOKEN_NAMES = ["ws", "newline", "ident", "number", "string", "comment",
               "op1", "op2", "punct", "other"]
_T_WS, _T_NL, _T_IDENT, _T_NUM, _T_STR, _T_COMMENT, _T_OP1, _T_OP2, \
    _T_PUNCT, _T_OTHER = range(10)


def _build_class_table():
    table = [_CLS_OTHER] * 128
    for code in range(128):
        char = chr(code)
        if char.isalpha() or char == "_":
            table[code] = _CLS_LETTER
        elif char.isdigit():
            table[code] = _CLS_DIGIT
        elif char in " \t\r":
            table[code] = _CLS_BLANK
        elif char == "\n":
            table[code] = _CLS_NEWLINE
        elif char == '"':
            table[code] = _CLS_QUOTE
        elif char == "/":
            table[code] = _CLS_SLASH
        elif char == "*":
            table[code] = _CLS_STAR
        elif char == "=":
            table[code] = _CLS_EQ
        elif char == "<":
            table[code] = _CLS_LT
        elif char == ">":
            table[code] = _CLS_GT
        elif char == "!":
            table[code] = _CLS_BANG
        elif char == "&":
            table[code] = _CLS_AMP
        elif char == "|":
            table[code] = _CLS_PIPE
        elif char == "+":
            table[code] = _CLS_PLUS
        elif char == "-":
            table[code] = _CLS_MINUS
        elif char in ";,(){}[].%^~?:":
            table[code] = _CLS_PUNCT
        elif char == "\\":
            table[code] = _CLS_BACKSLASH
    return table


def _build_dfa():
    """Return (delta, accept, n_states) for the C-ish token DFA."""
    transitions = {}   # (state, class) -> state
    accept = {}        # state -> token type
    next_state = [0]

    def new_state(token=None):
        next_state[0] += 1
        state = next_state[0]
        if token is not None:
            accept[state] = token
        return state

    start = 0
    ident = new_state(_T_IDENT)
    number = new_state(_T_NUM)
    blanks = new_state(_T_WS)
    newline = new_state(_T_NL)
    string_body = new_state(_T_OTHER)   # unterminated string = error
    string_escape = new_state(_T_OTHER)
    string_done = new_state(_T_STR)
    slash = new_state(_T_OP1)
    block_comment = new_state(_T_OTHER)
    block_star = new_state(_T_OTHER)
    comment_done = new_state(_T_COMMENT)
    line_comment = new_state(_T_COMMENT)
    op2_done = new_state(_T_OP2)
    punct = new_state(_T_PUNCT)
    other = new_state(_T_OTHER)

    # Start state: one transition per class.
    transitions[(start, _CLS_LETTER)] = ident
    transitions[(start, _CLS_DIGIT)] = number
    transitions[(start, _CLS_BLANK)] = blanks
    transitions[(start, _CLS_NEWLINE)] = newline
    transitions[(start, _CLS_QUOTE)] = string_body
    transitions[(start, _CLS_SLASH)] = slash
    transitions[(start, _CLS_PUNCT)] = punct
    transitions[(start, _CLS_OTHER)] = other
    transitions[(start, _CLS_BACKSLASH)] = other
    transitions[(start, _CLS_STAR)] = new_state(_T_OP1)  # lone '*'

    # Identifiers and numbers.
    transitions[(ident, _CLS_LETTER)] = ident
    transitions[(ident, _CLS_DIGIT)] = ident
    transitions[(number, _CLS_DIGIT)] = number
    transitions[(blanks, _CLS_BLANK)] = blanks

    # Strings with escapes.
    for cls in range(N_CLASSES):
        if cls == _CLS_QUOTE:
            transitions[(string_body, cls)] = string_done
        elif cls == _CLS_BACKSLASH:
            transitions[(string_body, cls)] = string_escape
        elif cls == _CLS_NEWLINE:
            pass  # unterminated: no transition, error token
        else:
            transitions[(string_body, cls)] = string_body
        transitions[(string_escape, cls)] = string_body

    # Comments.
    transitions[(slash, _CLS_STAR)] = block_comment
    transitions[(slash, _CLS_SLASH)] = line_comment
    transitions[(slash, _CLS_EQ)] = op2_done  # '/='
    for cls in range(N_CLASSES):
        if cls == _CLS_STAR:
            transitions[(block_comment, cls)] = block_star
            transitions[(block_star, cls)] = block_star
        elif cls == _CLS_SLASH:
            transitions[(block_comment, cls)] = block_comment
            transitions[(block_star, cls)] = comment_done
        else:
            transitions[(block_comment, cls)] = block_comment
            transitions[(block_star, cls)] = block_comment
        if cls != _CLS_NEWLINE:
            transitions[(line_comment, cls)] = line_comment

    # Two-character operator heads.
    heads = {
        _CLS_EQ: [_CLS_EQ],                   # == (and = alone)
        _CLS_LT: [_CLS_EQ, _CLS_LT],          # <= <<
        _CLS_GT: [_CLS_EQ, _CLS_GT],          # >= >>
        _CLS_BANG: [_CLS_EQ],                 # !=
        _CLS_AMP: [_CLS_AMP, _CLS_EQ],        # && &=
        _CLS_PIPE: [_CLS_PIPE, _CLS_EQ],      # || |=
        _CLS_PLUS: [_CLS_PLUS, _CLS_EQ],      # ++ +=
        _CLS_MINUS: [_CLS_MINUS, _CLS_EQ],    # -- -=
    }
    for head_class, follow_classes in heads.items():
        head_state = new_state(_T_OP1)
        transitions[(start, head_class)] = head_state
        for follow in follow_classes:
            transitions[(head_state, follow)] = op2_done

    n_states = next_state[0] + 1
    delta = [-1] * (n_states * N_CLASSES)
    for (state, cls), target in transitions.items():
        delta[state * N_CLASSES + cls] = target
    accept_table = [accept.get(state, -1) for state in range(n_states)]
    accept_table[0] = -1
    return delta, accept_table, n_states


def _format_array(values, per_line=16):
    chunks = []
    for index in range(0, len(values), per_line):
        chunks.append(", ".join(str(value)
                                for value in values[index:index + per_line]))
    return ",\n    ".join(chunks)


_CLASS_TABLE = _build_class_table()
_DELTA, _ACCEPT, _N_STATES = _build_dfa()

SOURCE = r"""
// lex: table-driven maximal-munch tokenizer over stream 0.
// The tables below are generated by the build-time DFA constructor.
int cls_tab[128] = {%(class_table)s};
int delta[%(delta_size)d] = {%(delta)s};
int accept[%(n_states)d] = {%(accept)s};
int counts[10];

int main() {
    int c; int cls; int nxt; int t;
    int state;
    int tokens = 0;
    int errors = 0;
    int chars = 0;

    c = getc(0);
    while (c != -1) {
        // Maximal munch: walk the DFA until no transition exists.
        state = 0;
        do {
            cls = cls_tab[c & 127];
            nxt = delta[state * %(n_classes)d + cls];
            if (nxt == -1) break;
            state = nxt;
            chars = chars + 1;
            c = getc(0);
        } while (c != -1);

        if (state == 0) {
            // No transition from the start state (cannot happen with a
            // complete class table, but never spin): skip the char.
            errors = errors + 1;
            c = getc(0);
        } else {
            t = accept[state];
            if (t >= 0) counts[t] = counts[t] + 1;
            else errors = errors + 1;
            tokens = tokens + 1;
        }
    }

    puti(tokens); putc(' ');
    puti(errors); putc(' ');
    puti(chars); putc('\n');
    for (t = 0; t < 10; t = t + 1) {
        puti(counts[t]);
        if (t < 9) putc(' ');
    }
    putc('\n');
    return 0;
}
""" % {
    "class_table": _format_array(_CLASS_TABLE),
    "delta": _format_array(_DELTA),
    "delta_size": len(_DELTA),
    "accept": _format_array(_ACCEPT),
    "n_states": _N_STATES,
    "n_classes": N_CLASSES,
}


def make_inputs(rng, run_index, scale):
    # lex dominates Table 1's instruction counts; give it bigger inputs.
    n_lines = max(20, int((400 + rng.next_int(800)) * scale))
    return [c_source(rng, n_lines)]
