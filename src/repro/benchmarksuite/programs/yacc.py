"""yacc — an SLR(1) shift-reduce parser driver.

yacc's output is a table-driven LR parser; this benchmark embeds the
textbook SLR tables for the expression grammar

    E -> E + T | T      T -> T * F | F      F -> ( E ) | id

and drives them over generated expression streams, evaluating each
expression through the reduce actions (synthesised attributes on the
value stack), with error recovery that skips to the next line.
"""

from repro.benchmarksuite.inputs import expression_stream

DESCRIPTION = "expression grammars (one per line)"
RUNS = 8

# Terminals: id=0 '+'=1 '*'=2 '('=3 ')'=4 '$'=5.  Nonterminals: E=0 T=1 F=2.
# Action encoding: 0 = error, 100+s = shift to state s,
# 200+p = reduce by production p, 999 = accept.
_ACTION = [
    # id    +      *      (      )      $
    105,    0,     0,     104,   0,     0,     # 0
    0,      106,   0,     0,     0,     999,   # 1
    0,      202,   107,   0,     202,   202,   # 2
    0,      204,   204,   0,     204,   204,   # 3
    105,    0,     0,     104,   0,     0,     # 4
    0,      206,   206,   0,     206,   206,   # 5
    105,    0,     0,     104,   0,     0,     # 6
    105,    0,     0,     104,   0,     0,     # 7
    0,      106,   0,     0,     111,   0,     # 8
    0,      201,   107,   0,     201,   201,   # 9
    0,      203,   203,   0,     203,   203,   # 10
    0,      205,   205,   0,     205,   205,   # 11
]

_GOTO = [
    # E   T   F
    1,    2,  3,    # 0
    -1,  -1, -1,    # 1
    -1,  -1, -1,    # 2
    -1,  -1, -1,    # 3
    8,    2,  3,    # 4
    -1,  -1, -1,    # 5
    -1,   9,  3,    # 6
    -1,  -1, 10,    # 7
    -1,  -1, -1,    # 8
    -1,  -1, -1,    # 9
    -1,  -1, -1,    # 10
    -1,  -1, -1,    # 11
]

# Production lengths and left-hand sides (index 1..6).
_PROD_LEN = [0, 3, 1, 3, 1, 3, 1]
_PROD_LHS = [0, 0, 0, 1, 1, 2, 2]


def _fmt(values):
    return ", ".join(str(value) for value in values)


SOURCE = r"""
// yacc: SLR(1) parse + evaluate expressions, one per line, stream 0.
int action[72] = {%(action)s};
int goto_tab[36] = {%(goto)s};
int prod_len[7] = {%(prod_len)s};
int prod_lhs[7] = {%(prod_lhs)s};

int state_stack[128];
int value_stack[128];

int parsed_ok;
int parse_errors;
int shifts;
int reduces;
int checksum;

int pending;

int next_char() {
    int c;
    if (pending != -2) { c = pending; pending = -2; return c; }
    return getc(0);
}

int token_value;
int at_eof;

// Returns the terminal index; '$' (5) at line end.
int next_token() {
    int c = next_char();
    while (c == ' ' || c == '\t') c = next_char();
    if (c == -1) { at_eof = 1; return 5; }
    if (c == '\n') return 5;
    if (c >= '0' && c <= '9') {
        token_value = 0;
        while (c >= '0' && c <= '9') {
            token_value = token_value * 10 + (c - '0');
            c = next_char();
        }
        pending = c;
        return 0;
    }
    if (c == '+') return 1;
    if (c == '*') return 2;
    if (c == '(') return 3;
    if (c == ')') return 4;
    // Unknown character: treat as an error token (no terminal).
    return 6;
}

int skip_line() {
    int c = next_char();
    while (c != -1 && c != '\n') c = next_char();
    if (c == -1) at_eof = 1;
    return 0;
}

// Parse one line; returns 1 on accept, 0 on error, -1 on EOF-no-input.
int parse_line() {
    int sp = 0;
    int tok; int act; int p; int length; int value; int lhs; int target;

    state_stack[0] = 0;
    tok = next_token();
    if (at_eof && tok == 5) return -1;

    while (1) {
        if (tok == 6) { skip_line(); return 0; }
        act = action[state_stack[sp] * 6 + tok];
        if (act == 0) {
            if (tok != 5) skip_line();
            return 0;
        }
        if (act == 999) {
            checksum = (checksum + value_stack[sp]) %% 1000000007;
            puti(value_stack[sp]); putc('\n');
            return 1;
        }
        if (act >= 100 && act < 200) {
            // Shift.
            sp = sp + 1;
            state_stack[sp] = act - 100;
            value_stack[sp] = token_value;
            shifts = shifts + 1;
            tok = next_token();
        } else {
            // Reduce by production act - 200.
            p = act - 200;
            length = prod_len[p];
            if (p == 1) value = value_stack[sp - 2] + value_stack[sp];
            else if (p == 3) value = value_stack[sp - 2] * value_stack[sp];
            else if (p == 5) value = value_stack[sp - 1];
            else value = value_stack[sp];
            sp = sp - length;
            lhs = prod_lhs[p];
            target = goto_tab[state_stack[sp] * 3 + lhs];
            if (target < 0) { skip_line(); return 0; }
            sp = sp + 1;
            state_stack[sp] = target;
            value_stack[sp] = value;
            reduces = reduces + 1;
        }
    }
    return 0;
}

int main() {
    int result;
    pending = -2;
    while (!at_eof) {
        result = parse_line();
        if (result == 1) parsed_ok = parsed_ok + 1;
        else if (result == 0) parse_errors = parse_errors + 1;
    }
    puti(parsed_ok); putc(' ');
    puti(parse_errors); putc(' ');
    puti(shifts); putc(' ');
    puti(reduces); putc(' ');
    puti(checksum); putc('\n');
    return 0;
}
""" % {
    "action": _fmt(_ACTION),
    "goto": _fmt(_GOTO),
    "prod_len": _fmt(_PROD_LEN),
    "prod_lhs": _fmt(_PROD_LHS),
}


def make_inputs(rng, run_index, scale):
    n_expressions = max(10, int((150 + rng.next_int(400)) * scale))
    stream = expression_stream(rng, n_expressions)
    if run_index % 3 == 2:
        # Inject syntax errors so the recovery path runs.
        corrupted = bytearray(stream)
        for position in range(0, len(corrupted), 97):
            if corrupted[position] != 10:
                corrupted[position] = ord("?")
        stream = bytes(corrupted)
    return [stream]
