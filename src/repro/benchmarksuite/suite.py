"""Benchmark registry: name -> (Minic source, input generation, runs)."""

from repro.benchmarksuite.inputs import DeterministicRandom
from repro.benchmarksuite.programs import (
    cccp, cmp_bench, compress, eqn, espresso, grep, lex, make_bench,
    tar, tee, wc, yacc,
)
from repro.lang import compile_source

_MODULES = {
    "cccp": cccp,
    "cmp": cmp_bench,
    "compress": compress,
    "eqn": eqn,
    "espresso": espresso,
    "grep": grep,
    "lex": lex,
    "make": make_bench,
    "tar": tar,
    "tee": tee,
    "wc": wc,
    "yacc": yacc,
}

# The ten programs of Tables 1-4.
BENCHMARK_NAMES = ("cccp", "cmp", "compress", "grep", "lex", "make",
                   "tar", "tee", "wc", "yacc")
# Table 5 additionally lists eqn and espresso.
EXTRA_BENCHMARK_NAMES = ("eqn", "espresso")
ALL_BENCHMARK_NAMES = tuple(sorted(_MODULES))


class BenchmarkSpec:
    """One benchmark: its program text and its input suite."""

    def __init__(self, name, module):
        self.name = name
        self.source = module.SOURCE
        self.runs = module.RUNS
        self.description = module.DESCRIPTION
        self._make_inputs = module.make_inputs

    def source_lines(self):
        """Static size of the benchmark source (Table 1's Lines)."""
        return len([line for line in self.source.splitlines()
                    if line.strip()])

    def inputs_for_run(self, run_index, scale=1.0):
        """Input streams for one profiling run.

        Args:
            run_index: which run (0 .. runs-1); each run gets a
                distinct deterministic input.
            scale: input size multiplier (1.0 = paper-scale suite,
                small fractions for tests).

        Returns:
            list of bytes objects, one per input stream.
        """
        if not 0 <= run_index < self.runs:
            raise ValueError("run_index out of range for %s" % self.name)
        # str.hash() is randomised per process; use a fixed polynomial
        # hash so the input suite is identical across runs and machines.
        name_hash = 0
        for char in self.name:
            name_hash = (name_hash * 131 + ord(char)) % (1 << 32)
        rng = DeterministicRandom(name_hash * 1000 + run_index + 17)
        return self._make_inputs(rng, run_index, scale)

    def input_suite(self, scale=1.0, runs=None):
        """All runs' inputs: the profiling suite of Table 1."""
        n_runs = self.runs if runs is None else min(runs, self.runs)
        return [self.inputs_for_run(index, scale) for index in range(n_runs)]

    def __repr__(self):
        return "BenchmarkSpec(%r, %d runs)" % (self.name, self.runs)


def get_benchmark(name):
    """Look up a benchmark by name; raises KeyError for unknown names."""
    if name not in _MODULES:
        raise KeyError("unknown benchmark %r (have: %s)"
                       % (name, ", ".join(BENCHMARK_NAMES)))
    return BenchmarkSpec(name, _MODULES[name])


def compile_benchmark(name):
    """Compile a benchmark to a resolved Program."""
    spec = get_benchmark(name)
    return compile_source(spec.source, name=name)
