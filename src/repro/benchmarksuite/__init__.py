"""The ten-benchmark Unix suite of Table 1, re-implemented in Minic.

Each benchmark is a faithful miniature of the original program's
algorithmic core — the component that generates its branch behaviour:

=========  ==========================================================
benchmark  what our Minic version does
=========  ==========================================================
cccp       macro preprocessor: #define/#undef/#ifdef/#else/#endif,
           hash-table symbol lookup, identifier substitution, with a
           jump-table character dispatch (the paper's cccp is the one
           benchmark with many unknown-target branches)
cmp        byte-by-byte comparison of two files, first-difference
           report with line/offset accounting
compress   LZW compression with a hashed string table (the real
           compress algorithm) emitting 12-bit codes
grep       line-oriented pattern search with a backtracking matcher
           (literals, '.', '*', '^', '$', character classes)
lex        table-driven lexical analyzer: a DFA over C-like source,
           the transition table generated at build time like lex does
make       makefile parser + dependency DAG + recursive out-of-date
           propagation over pseudo-timestamps
tar        block archiver: create mode writes 64-byte-block records
           with checksums; extract mode parses and verifies them
tee        input duplication to two "sinks" with line accounting
wc         line/word/character counting with a state machine
yacc       SLR(1) shift-reduce parser driving textbook action/goto
           tables for the expression grammar, with evaluation
eqn        equation-language parser + recursive box layout (extra
           Table 5 row)
espresso   Quine-McCluskey-style two-level logic minimizer over PLA
           cube lists (extra Table 5 row)
=========  ==========================================================

Inputs are synthesised deterministically (:mod:`.inputs`) to mimic the
paper's input descriptions (C sources of 100-3000 lines, text files,
makefiles, grammars...).  ``scale`` multiplies input sizes so tests can
run a tiny suite while experiments run a paper-sized one.
"""

from repro.benchmarksuite.suite import (
    ALL_BENCHMARK_NAMES,
    BENCHMARK_NAMES,
    EXTRA_BENCHMARK_NAMES,
    BenchmarkSpec,
    compile_benchmark,
    get_benchmark,
)

__all__ = [
    "ALL_BENCHMARK_NAMES",
    "BENCHMARK_NAMES",
    "EXTRA_BENCHMARK_NAMES",
    "BenchmarkSpec",
    "compile_benchmark",
    "get_benchmark",
]
