"""Deterministic synthetic input generation for the benchmark suite.

The paper profiled each benchmark over real Unix inputs (C programs of
100-3000 lines, text files, makefiles, grammars, ...).  These
generators synthesise inputs of the same character deterministically
from a seed, so every experiment is exactly reproducible.
"""


class DeterministicRandom:
    """A small 64-bit linear congruential generator.

    Python's ``random`` module would work, but its sequence is not
    guaranteed stable across versions; this generator freezes the
    input suite forever.
    """

    _MULTIPLIER = 6364136223846793005
    _INCREMENT = 1442695040888963407
    _MASK = (1 << 64) - 1

    def __init__(self, seed):
        self.state = (seed * 2862933555777941757 + 3037000493) & self._MASK

    def next_int(self, bound):
        """Uniform-ish integer in [0, bound)."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        self.state = (self.state * self._MULTIPLIER + self._INCREMENT) & self._MASK
        return (self.state >> 33) % bound

    def choice(self, sequence):
        return sequence[self.next_int(len(sequence))]

    def chance(self, numerator, denominator):
        """True with probability numerator/denominator."""
        return self.next_int(denominator) < numerator


_WORDS = [
    "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
    "pipeline", "branch", "cache", "buffer", "fetch", "decode", "issue",
    "compiler", "profile", "trace", "vector", "scalar", "memory", "stall",
    "system", "kernel", "signal", "buffer", "stream", "format", "record",
    "window", "editor", "parser", "symbol", "token", "string", "number",
]

_IDENTIFIERS = [
    "count", "index", "limit", "total", "value", "state", "flags", "level",
    "buffer", "cursor", "offset", "length", "result", "status", "weight",
    "table", "entry", "node", "head", "tail", "next", "prev", "size",
]


def words(rng, count):
    """A list of ``count`` plain words."""
    return [rng.choice(_WORDS) for _ in range(count)]


def text_lines(rng, n_lines, words_per_line=8):
    """Prose-like text: ``n_lines`` lines of space-separated words."""
    lines = []
    for _ in range(n_lines):
        line_length = 1 + rng.next_int(words_per_line)
        lines.append(" ".join(words(rng, line_length)))
    return ("\n".join(lines) + "\n").encode("ascii")


def c_source(rng, n_lines):
    """C-flavoured source text (for cccp, wc, compress, lex inputs)."""
    lines = []
    depth = 0
    while len(lines) < n_lines:
        kind = rng.next_int(10)
        indent = "    " * depth
        if kind == 0 and len(lines) < n_lines - 2:
            name = rng.choice(_IDENTIFIERS)
            lines.append("%sif (%s > %d) {" % (indent, name, rng.next_int(100)))
            depth += 1
        elif kind == 1 and depth > 0:
            depth -= 1
            lines.append("    " * depth + "}")
        elif kind == 2:
            lines.append("%s/* %s */" % (indent, " ".join(words(rng, 3))))
        elif kind == 3:
            lines.append("#define %s %d"
                         % (rng.choice(_IDENTIFIERS).upper(), rng.next_int(256)))
        elif kind == 4:
            name = rng.choice(_IDENTIFIERS)
            lines.append("%sfor (%s = 0; %s < %d; %s++)"
                         % (indent, name, name, rng.next_int(64), name))
        else:
            left = rng.choice(_IDENTIFIERS)
            right = rng.choice(_IDENTIFIERS)
            operator = rng.choice(["+", "-", "*", "/", "&", "|"])
            lines.append("%s%s = %s %s %d;"
                         % (indent, left, right, operator, rng.next_int(100)))
    while depth > 0:
        depth -= 1
        lines.append("    " * depth + "}")
    return ("\n".join(lines) + "\n").encode("ascii")


def similar_pair(rng, n_lines, difference_rate=0.02):
    """Two mostly-identical texts (for cmp): occasional byte flips."""
    original = bytearray(text_lines(rng, n_lines))
    mutated = bytearray(original)
    for position in range(len(mutated)):
        if mutated[position] != 10 and rng.chance(
                int(difference_rate * 1000), 1000):
            mutated[position] = 97 + rng.next_int(26)
    return bytes(original), bytes(mutated)


def makefile(rng, n_targets):
    """A makefile: target lines, dependency lists, command lines."""
    names = ["t%d" % index for index in range(n_targets)]
    lines = []
    for index in range(n_targets - 1, -1, -1):
        # Dependencies point at later-defined (lower-index) targets so
        # the graph is acyclic.
        n_deps = rng.next_int(min(3, index) + 1) if index else 0
        deps = sorted({names[rng.next_int(index)] for _ in range(n_deps)}
                      if index else set())
        lines.append("%s: %s" % (names[index], " ".join(deps)))
        lines.append("\tbuild %s" % names[index])
    return ("\n".join(lines) + "\n").encode("ascii")


def expression_stream(rng, n_expressions, max_depth=4):
    """Arithmetic expressions (for yacc), one per line."""

    def emit(depth):
        if depth >= max_depth or rng.chance(2, 5):
            return str(rng.next_int(100))
        if rng.chance(1, 5):
            return "(" + emit(depth + 1) + ")"
        operator = rng.choice(["+", "*"])
        return emit(depth + 1) + operator + emit(depth + 1)

    lines = [emit(0) for _ in range(n_expressions)]
    return ("\n".join(lines) + "\n").encode("ascii")


def binary_blob(rng, n_bytes):
    """Pseudo-binary data (for tar payloads): runs and noise."""
    data = bytearray()
    while len(data) < n_bytes:
        if rng.chance(1, 3):
            data.extend([rng.next_int(256)] * (1 + rng.next_int(32)))
        else:
            data.extend(rng.next_int(256) for _ in range(1 + rng.next_int(8)))
    return bytes(data[:n_bytes])


def grep_pattern(rng):
    """A pattern for the grep benchmark's matcher."""
    simple = rng.choice(_WORDS)
    kind = rng.next_int(5)
    if kind == 0:
        return simple.encode("ascii")
    if kind == 1:
        return ("^" + simple).encode("ascii")
    if kind == 2:
        return (simple[: max(1, len(simple) // 2)] + "." +
                simple[max(1, len(simple) // 2) + 1:]).encode("ascii")
    if kind == 3:
        return (simple[:2] + "*" + simple[2:3]).encode("ascii")
    return ("[%s]%s" % (simple[0] + "xyz", simple[1:])).encode("ascii")
