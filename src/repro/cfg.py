"""Control-flow graphs over resolved intermediate-code programs.

Used by the profiler (basic-block probe placement) and the trace
selection / layout passes of the Forward Semantic compiler.

Block-boundary conventions (these match trace-scheduling practice, e.g.
the IMPACT compiler the paper used):

* leaders are function entries, branch targets, jump-table entries, and
  the instructions following conditional branches, jumps, returns,
  indirect jumps, and HALT;
* ``CALL`` does **not** end a basic block — control returns to the next
  instruction, so for layout purposes a call is an ordinary instruction;
* ``RET``, ``JIND``, and ``HALT`` end a block with no layout successors
  (their targets are dynamic or terminal).
"""

from repro.isa.opcodes import Opcode


class BasicBlock:
    """A maximal straight-line region [start, end) of a program.

    Attributes:
        start: address of the leader instruction.
        end: one past the last instruction.
        taken_target: taken-path leader for a conditional terminator, or
            the target of a terminating JUMP, else None.
        fall_through: leader reached by not taking / running off the end
            of the block, or None (JUMP/RET/JIND/HALT terminators).
    """

    __slots__ = ("start", "end", "taken_target", "fall_through")

    def __init__(self, start, end, taken_target=None, fall_through=None):
        self.start = start
        self.end = end
        self.taken_target = taken_target
        self.fall_through = fall_through

    def __len__(self):
        return self.end - self.start

    def successors(self):
        """Layout successors (leader addresses), taken target first."""
        result = []
        if self.taken_target is not None:
            result.append(self.taken_target)
        if self.fall_through is not None and self.fall_through != self.taken_target:
            result.append(self.fall_through)
        return result

    def __repr__(self):
        return "BasicBlock(%d..%d, taken=%r, fall=%r)" % (
            self.start, self.end, self.taken_target, self.fall_through)


_BLOCK_ENDERS = frozenset({
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BLE, Opcode.BGT, Opcode.BGE,
    Opcode.JUMP, Opcode.RET, Opcode.JIND, Opcode.HALT,
})

_CONDITIONALS = frozenset({
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BLE, Opcode.BGT, Opcode.BGE,
})


def compute_leaders(program):
    """Return the sorted list of basic-block leader addresses."""
    if not program.resolved:
        raise ValueError("program must be resolved")
    size = len(program.instructions)
    if size == 0:
        return []
    leaders = {0}
    for label in program.functions.values():
        leaders.add(program.labels[label])
    for address, instr in enumerate(program.instructions):
        op = instr.op
        if op in _BLOCK_ENDERS:
            if address + 1 < size:
                leaders.add(address + 1)
            if instr.target is not None and op is not Opcode.CALL:
                leaders.add(instr.target)
        elif op is Opcode.CALL:
            leaders.add(instr.target)
    for table in program.jump_tables:
        leaders.update(table.entries)
    return sorted(leaders)


class ControlFlowGraph:
    """Basic blocks of a program plus predecessor/successor structure."""

    def __init__(self, program, blocks, leader_index):
        self.program = program
        self.blocks = blocks
        self._leader_index = leader_index
        self._predecessors = None

    @classmethod
    def from_program(cls, program):
        """Build the CFG of a resolved program."""
        leaders = compute_leaders(program)
        size = len(program.instructions)
        blocks = []
        leader_index = {}
        for position, start in enumerate(leaders):
            end = leaders[position + 1] if position + 1 < len(leaders) else size
            terminator = program.instructions[end - 1]
            taken_target = None
            fall_through = None
            op = terminator.op
            if op in _CONDITIONALS:
                taken_target = terminator.target
                if end < size:
                    fall_through = end
            elif op is Opcode.JUMP:
                taken_target = terminator.target
            elif op in (Opcode.RET, Opcode.JIND, Opcode.HALT):
                pass
            else:
                # Block falls through into the next leader (or ends the
                # program, which only happens for malformed code).
                if end < size:
                    fall_through = end
            leader_index[start] = position
            blocks.append(BasicBlock(start, end, taken_target, fall_through))
        return cls(program, blocks, leader_index)

    # -- queries ------------------------------------------------------------

    def __len__(self):
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)

    def block_at(self, leader):
        """The block whose leader address is ``leader``."""
        return self.blocks[self._leader_index[leader]]

    def block_of(self, address):
        """The block containing an arbitrary instruction address."""
        low, high = 0, len(self.blocks) - 1
        while low <= high:
            middle = (low + high) // 2
            block = self.blocks[middle]
            if address < block.start:
                high = middle - 1
            elif address >= block.end:
                low = middle + 1
            else:
                return block
        raise KeyError("address %d not in any block" % address)

    @property
    def leaders(self):
        return [block.start for block in self.blocks]

    def predecessors(self, leader):
        """Leader addresses of blocks with a layout edge into ``leader``."""
        if self._predecessors is None:
            table = {block.start: [] for block in self.blocks}
            for block in self.blocks:
                for successor in block.successors():
                    table[successor].append(block.start)
            self._predecessors = table
        return self._predecessors[leader]

    def instructions_of(self, block):
        """The instruction objects of ``block`` (a list slice view)."""
        return self.program.instructions[block.start:block.end]

    def validate(self):
        """Check partition invariants; raises ValueError on failure."""
        expected = 0
        for block in self.blocks:
            if block.start != expected:
                raise ValueError("blocks do not partition the program")
            if block.end <= block.start:
                raise ValueError("empty block at %d" % block.start)
            expected = block.end
        if expected != len(self.program.instructions):
            raise ValueError("blocks do not cover the program")
        for block in self.blocks:
            for successor in block.successors():
                if successor not in self._leader_index:
                    raise ValueError(
                        "successor %d of block %d is not a leader"
                        % (successor, block.start))
        return self
