"""Differential replay: production vs oracle, lockstep, with shrinking.

The engine drives a production predictor and its reference oracle
through the same branch trace record by record.  After every record it
compares the two predictions (direction, buffer hit, scored
correctness, predicted target) and — because both sides expose their
buffer in canonical replacement order — the complete predictor state.
The first mismatch comes back as a :class:`Divergence` carrying the
record index and both sides' view; :func:`shrink_trace` then
delta-debugs the failing trace down to a minimal reproducer.
"""

import random

from repro.predictors.base import is_correct
from repro.predictors.cbtb import CounterBTB
from repro.vm.tracing import BranchClass, BranchTrace


class Divergence:
    """One production/oracle disagreement.

    Attributes:
        kind: what disagreed — ``direction``, ``hit``, ``correctness``,
            ``target``, ``state``, or a cycle-level aggregate
            (``cycles``, ``squashed_cycles``, ...).
        index: record index within the trace (None for aggregates).
        record: the :class:`~repro.vm.tracing.BranchRecord`-style tuple
            at ``index`` (None for aggregates).
        production / oracle: the two disagreeing values.
    """

    __slots__ = ("kind", "index", "record", "production", "oracle")

    def __init__(self, kind, index, record, production, oracle):
        self.kind = kind
        self.index = index
        self.record = record
        self.production = production
        self.oracle = oracle

    def describe(self):
        where = ("record %d %r" % (self.index, self.record)
                 if self.index is not None else "aggregate")
        return "%s diverged at %s: production=%r oracle=%r" % (
            self.kind, where, self.production, self.oracle)

    def __repr__(self):
        return "Divergence(%s)" % self.describe()


def production_state(predictor):
    """The production buffer as ((key, value), ...) in replacement order.

    Mirrors the oracle ``state()`` snapshots: per set LRU-first, sets
    concatenated.  Non-buffered schemes snapshot as ().
    """
    cache = getattr(predictor, "_cache", None)
    if cache is None:
        return ()
    if isinstance(predictor, CounterBTB):
        return tuple((key, (cache.peek(key).counter, cache.peek(key).target))
                     for key in cache.lru_order())
    # SimpleBTB (and anything storing plain values): snapshot verbatim.
    return tuple((key, cache.peek(key)) for key in cache.lru_order())


def _compare_predictions(index, record, mine, theirs, taken, target):
    if bool(mine.taken) != bool(theirs.taken):
        return Divergence("direction", index, record,
                          mine.taken, theirs.taken)
    if mine.hit != theirs.hit:
        return Divergence("hit", index, record, mine.hit, theirs.hit)
    mine_correct = is_correct(mine, taken, target)
    theirs_correct = is_correct(theirs, taken, target)
    if mine_correct != theirs_correct:
        return Divergence("correctness", index, record,
                          mine_correct, theirs_correct)
    # Sentinel "statically encoded" targets compare equal to anything,
    # so this only fires on a concrete target mismatch between buffers.
    if mine.taken and not (mine.target == theirs.target):
        return Divergence("target", index, record,
                          mine.target, theirs.target)
    return None


def replay_divergence(production, oracle, trace, ras_returns=True,
                      compare_state=True):
    """Run both sides over ``trace``; return the first Divergence or None.

    Mirrors :func:`repro.predictors.base.simulate`'s record handling:
    with ``ras_returns`` (the default) return records never reach
    either predictor.  With ``compare_state`` the full buffer snapshot
    is compared after every update — this is what makes replay
    *bit-for-bit*: two runs that agree on every snapshot make identical
    decisions forever after.
    """
    for index, record in enumerate(trace.records()):
        site, branch_class, taken, target, _gap = record
        if branch_class == BranchClass.RETURN and ras_returns:
            continue
        mine = production.predict(site, branch_class)
        theirs = oracle.predict(site, branch_class)
        divergence = _compare_predictions(index, record, mine, theirs,
                                          taken, target)
        if divergence is not None:
            return divergence
        production.update(site, branch_class, taken, target)
        oracle.update(site, branch_class, taken, target)
        if compare_state:
            mine_state = production_state(production)
            theirs_state = oracle.state()
            if theirs_state and mine_state != theirs_state:
                return Divergence("state", index, record,
                                  mine_state, theirs_state)
    return None


def engine_divergence(make_predictor, trace, ras_returns=True,
                      conditional_only=False):
    """Compare the scalar and vector simulation engines on one trace.

    Simulates a fresh predictor from ``make_predictor`` once per
    engine and compares the two ``PredictionStats`` field for field —
    the bit-identity contract of :mod:`repro.kernels`.  Returns an
    aggregate :class:`Divergence` or None; also None when the
    predictor has no vector kernel (nothing to cross-check).
    """
    from repro.kernels import supports
    from repro.predictors.base import simulate

    if not supports(make_predictor()):
        return None
    scalar = simulate(make_predictor(), trace, engine="scalar",
                      conditional_only=conditional_only,
                      ras_returns=ras_returns)
    vector = simulate(make_predictor(), trace, engine="vector",
                      conditional_only=conditional_only,
                      ras_returns=ras_returns)
    if scalar != vector:
        return Divergence("engine", None, None, scalar.as_dict(),
                          vector.as_dict())
    return None


def cycle_divergence(config, make_production, make_oracle, trace,
                     ras_returns=True, engine=None):
    """Compare the production cycle simulator against the interpreter.

    Args:
        config: :class:`~repro.pipeline.config.PipelineConfig`.
        make_production / make_oracle: zero-argument factories producing
            *fresh* predictor instances (each side must start cold).
        trace: the branch trace to replay.
        engine: forwarded to :class:`CycleSimulator` — the conformance
            harness pins ``"vector"`` to drive the batch cycle kernel
            against the oracle interpreter on every seed, regardless of
            the auto threshold.

    Returns the first aggregate :class:`Divergence` or None.
    """
    from repro.conformance.oracles import OracleCycleInterpreter
    from repro.pipeline.cycle_sim import CycleSimulator

    fast = CycleSimulator(config, make_production(),
                          ras_returns=ras_returns,
                          engine=engine).run(trace)
    slow = OracleCycleInterpreter(config, make_oracle(),
                                  ras_returns=ras_returns).run(trace)
    for field in ("fill_cycles", "mispredictions", "squashed_cycles",
                  "cycles"):
        mine = getattr(fast, field)
        theirs = getattr(slow, field)
        if mine != theirs:
            return Divergence(field, None, None, mine, theirs)
    if dict(fast.squashed_by_class) != slow.squashed_by_class:
        return Divergence("squashed_by_class", None, None,
                          dict(fast.squashed_by_class),
                          slow.squashed_by_class)
    return None


def subtrace(records):
    """Build a self-consistent BranchTrace from record tuples."""
    trace = BranchTrace()
    for site, branch_class, taken, target, gap in records:
        trace.append(site, branch_class, taken, target, gap)
    trace.total_instructions = (sum(record[4] for record in records)
                                + len(records))
    return trace


def shrink_trace(trace, still_fails, seed=0, max_tests=2000):
    """Delta-debug ``trace`` to a minimal failing reproducer.

    Args:
        trace: a trace for which ``still_fails(trace)`` is True.
        still_fails: predicate over a :class:`BranchTrace`; must be
            pure (it is called on fresh subtraces, so it should build
            fresh predictors internally).
        seed: chunk-order shuffle seed — shrinking is deterministic per
            seed (different seeds may find different, equally minimal,
            reproducers).
        max_tests: budget on predicate evaluations.

    Returns the shrunk :class:`BranchTrace` (1-minimal: removing any
    single remaining record makes the failure disappear, budget
    permitting).
    """
    records = [tuple(record) for record in trace.records()]
    if not still_fails(subtrace(records)):
        raise ValueError("shrink_trace needs a failing trace to start from")
    rng = random.Random(seed)
    tests = 0
    granularity = 2
    while len(records) >= 2 and tests < max_tests:
        chunk = max(1, len(records) // granularity)
        starts = list(range(0, len(records), chunk))
        rng.shuffle(starts)
        reduced = False
        for start in starts:
            candidate = records[:start] + records[start + chunk:]
            if not candidate:
                continue
            tests += 1
            if still_fails(subtrace(candidate)):
                records = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            if tests >= max_tests:
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(granularity * 2, len(records))
    return subtrace(records)
