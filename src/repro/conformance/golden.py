"""Golden-table regression: paper tolerance bands + committed trajectory.

Two complementary checks over the experiment pipeline's numbers:

* :func:`check_paper_bands` — the measured Tables 1-5 quantities must
  sit inside *declared* tolerance bands around the paper's published
  values (``repro.experiments.paper_values``).  The bands are wide
  where DESIGN.md documents substrate deviations and tight where the
  relationship is structural (cost identities, orderings, ranges).
* :func:`check_golden` — the same quantities must match the committed
  golden JSON (our own trajectory) to float precision at a pinned
  configuration, so any PR that shifts a table does so *explicitly* by
  regenerating the file (``repro-branches conformance
  --update-golden``).

Both return a flat list of human-readable violation strings; empty
means pass.
"""

import json
from pathlib import Path

from repro.experiments import paper_values
from repro.experiments.table4 import costs_for
from repro.pipeline import branch_cost

#: The committed golden file (regenerate with --update-golden).
GOLDEN_PATH = Path(__file__).with_name("golden_small.json")

#: The pinned configuration the golden file is measured at: small and
#: fast (a conformance run must stay cheap) but through the full
#: compile/profile/layout/trace pipeline.
GOLDEN_CONFIG = {
    "scale": 0.05,
    "runs": 1,
    "benchmarks": ["wc", "tee", "cmp", "grep"],
}

GOLDEN_FORMAT = 1

#: Declared tolerance bands around the paper's values.  DESIGN.md §6.9
#: documents why the substrate deviates (scaled inputs, Minic codegen);
#: the bands assert the deviations stay bounded.
PAPER_BANDS = {
    # |measured - paper| per scheme accuracy, in percentage points.
    "accuracy_points": 15.0,
    # |measured - paper| for the SBTB miss ratio.
    "rho_sbtb_abs": 0.25,
    # The CBTB's defining property: a near-zero miss ratio.
    "rho_cbtb_max": 0.05,
    # All accuracies must stay in this absolute range (percent).
    "accuracy_range": (60.0, 100.0),
    # Code expansion stays positive and below this (percent) at 8 slots.
    "expansion_max_percent": 200.0,
}

_SLOT_COUNTS = (1, 2, 4, 8)


def measure(runner, names):
    """All golden-checked quantities for ``names``, JSON-serialisable."""
    data = {}
    for name in names:
        run = runner.run(name)
        predictions = run.predictions()
        stats = run.stats
        expansions = run.expansions()
        data[name] = {
            "rho_sbtb": predictions["SBTB"].miss_ratio,
            "accuracy_sbtb": 100.0 * predictions["SBTB"].accuracy,
            "rho_cbtb": predictions["CBTB"].miss_ratio,
            "accuracy_cbtb": 100.0 * predictions["CBTB"].accuracy,
            "accuracy_fs": 100.0 * predictions["FS"].accuracy,
            "branches": stats.branches,
            "instructions": stats.total_instructions,
            "control_fraction": stats.control_fraction,
            "taken_fraction": stats.taken_fraction,
            "known_fraction": stats.known_fraction,
            "cost_kl2": list(costs_for(run, 2)),
            "cost_kl3": list(costs_for(run, 3)),
            "expansion_percent": {
                str(n): 100.0 * expansions[n].expansion_fraction
                for n in _SLOT_COUNTS},
        }
    return data


def check_paper_bands(runner, names=None):
    """Violations of the declared bands around the paper's values."""
    names = list(names or GOLDEN_CONFIG["benchmarks"])
    bands = PAPER_BANDS
    low, high = bands["accuracy_range"]
    violations = []
    measured = measure(runner, names)
    for name in names:
        row = measured[name]
        paper = paper_values.TABLE3[name]
        paper_by_key = {
            "accuracy_sbtb": paper[1],
            "accuracy_cbtb": paper[3],
            "accuracy_fs": paper[4],
        }
        for key, published in paper_by_key.items():
            value = row[key]
            if not low <= value <= high:
                violations.append(
                    "%s: %s = %.2f%% outside [%g, %g]"
                    % (name, key, value, low, high))
            if abs(value - published) > bands["accuracy_points"]:
                violations.append(
                    "%s: %s = %.2f%% strays %.2f points from the "
                    "paper's %.1f%% (band %.1f)"
                    % (name, key, value, abs(value - published),
                       published, bands["accuracy_points"]))
        if not 0.0 <= row["rho_cbtb"] <= bands["rho_cbtb_max"]:
            violations.append(
                "%s: rho_CBTB = %.4f exceeds %.2f (the CBTB must "
                "rarely miss)" % (name, row["rho_cbtb"],
                                  bands["rho_cbtb_max"]))
        if abs(row["rho_sbtb"] - paper[0]) > bands["rho_sbtb_abs"]:
            violations.append(
                "%s: rho_SBTB = %.3f strays %.3f from the paper's %.2f"
                % (name, row["rho_sbtb"],
                   abs(row["rho_sbtb"] - paper[0]), paper[0]))
        violations.extend(_structural_violations(name, row))
    return violations


def _structural_violations(name, row):
    """Identities and orderings that hold regardless of substrate."""
    violations = []
    # Table 4 is the cost equation applied to Table 3's accuracy; an
    # independent re-derivation here oracles the experiments layer.
    for label, k_plus_l_bar in (("cost_kl2", 2), ("cost_kl3", 3)):
        accuracies = (row["accuracy_sbtb"], row["accuracy_cbtb"],
                      row["accuracy_fs"])
        for scheme_index, accuracy in enumerate(accuracies):
            expected = branch_cost(accuracy / 100.0, k=k_plus_l_bar,
                                   l_bar=0.0, m_bar=1.0)
            got = row[label][scheme_index]
            if abs(got - expected) > 1e-9:
                violations.append(
                    "%s: %s[%d] = %.6f but the cost equation gives "
                    "%.6f" % (name, label, scheme_index, got, expected))
    for shallow, deep in zip(row["cost_kl2"], row["cost_kl3"]):
        if deep < shallow - 1e-12:
            violations.append(
                "%s: deeper pipeline got cheaper (%.4f < %.4f)"
                % (name, deep, shallow))
    fractions = ("control_fraction", "taken_fraction", "known_fraction")
    for key in fractions:
        if not 0.0 <= row[key] <= 1.0:
            violations.append("%s: %s = %r outside [0, 1]"
                              % (name, key, row[key]))
    previous_n, previous = 0, 0.0
    for n in _SLOT_COUNTS:
        percent = row["expansion_percent"][str(n)]
        if percent < previous - 1e-12:
            violations.append(
                "%s: expansion shrank from %d to %d slots (%.2f%% -> "
                "%.2f%%)" % (name, previous_n, n, previous, percent))
        previous_n, previous = n, percent
    top = row["expansion_percent"][str(_SLOT_COUNTS[-1])]
    if not 0.0 <= top <= PAPER_BANDS["expansion_max_percent"]:
        violations.append(
            "%s: expansion at %d slots = %.2f%% outside [0, %g]"
            % (name, _SLOT_COUNTS[-1], top,
               PAPER_BANDS["expansion_max_percent"]))
    return violations


def _golden_runner(cache, engine="auto"):
    from repro.experiments.runner import SuiteRunner

    return SuiteRunner(scale=GOLDEN_CONFIG["scale"],
                       runs=GOLDEN_CONFIG["runs"],
                       cache_dir=None if cache else False,
                       engine=engine)


def write_golden(path=None, cache=True):
    """Measure at the pinned configuration and write the golden file."""
    path = Path(path) if path else GOLDEN_PATH
    runner = _golden_runner(cache)
    payload = {
        "format": GOLDEN_FORMAT,
        "config": GOLDEN_CONFIG,
        "measured": measure(runner, GOLDEN_CONFIG["benchmarks"]),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def check_golden(path=None, cache=True, tolerance=1e-9, engine="auto"):
    """Compare a fresh pinned-config measurement against the golden file.

    The golden file embeds the configuration it was measured at, so
    this check is self-contained: it builds its own runner.  Passing
    ``engine`` pins the simulation engine the fresh measurement uses —
    the conformance harness runs this once per engine, so a vector
    kernel that drifted from the committed trajectory fails golden
    even if it agrees with the (equally drifted) scalar loop.  Returns
    a list of violation strings (empty = pass).
    """
    path = Path(path) if path else GOLDEN_PATH
    if not path.exists():
        return ["golden file missing: %s (run `repro-branches "
                "conformance --update-golden`)" % path]
    payload = json.loads(path.read_text())
    if payload.get("format") != GOLDEN_FORMAT:
        return ["golden file %s has format %r, expected %r"
                % (path, payload.get("format"), GOLDEN_FORMAT)]
    config = payload["config"]
    from repro.experiments.runner import SuiteRunner

    runner = SuiteRunner(scale=config["scale"], runs=config["runs"],
                         cache_dir=None if cache else False,
                         engine=engine)
    fresh = measure(runner, config["benchmarks"])
    violations = []
    for name, golden_row in payload["measured"].items():
        fresh_row = fresh.get(name)
        if fresh_row is None:
            violations.append("%s: missing from fresh measurement" % name)
            continue
        violations.extend(_compare_rows(name, golden_row, fresh_row,
                                        tolerance))
    return violations


def _compare_rows(name, golden_row, fresh_row, tolerance):
    violations = []
    for key, golden_value in golden_row.items():
        fresh_value = fresh_row.get(key)
        for label, gold, got in _flatten(key, golden_value, fresh_value):
            if isinstance(gold, float) or isinstance(got, float):
                same = (got is not None
                        and abs(got - gold) <= tolerance * max(
                            1.0, abs(gold)))
            else:
                same = got == gold
            if not same:
                violations.append(
                    "%s: %s drifted from golden %r to %r"
                    % (name, label, gold, got))
    return violations


def _flatten(key, golden_value, fresh_value):
    """Yield (label, golden, fresh) leaf triples for nested values."""
    if isinstance(golden_value, dict):
        for sub_key, sub_value in golden_value.items():
            fresh_sub = (fresh_value or {}).get(sub_key)
            yield from _flatten("%s[%s]" % (key, sub_key), sub_value,
                                fresh_sub)
    elif isinstance(golden_value, list):
        fresh_list = fresh_value or []
        for index, sub_value in enumerate(golden_value):
            fresh_sub = (fresh_list[index]
                         if index < len(fresh_list) else None)
            yield from _flatten("%s[%d]" % (key, index), sub_value,
                                fresh_sub)
    else:
        yield key, golden_value, fresh_value
