"""The conformance run: fuzz -> differential replay -> golden tables.

One call to :func:`run_conformance` drives, per seed:

1. a fuzzed trace (and its likely-bit map) from
   :class:`~repro.conformance.fuzz.TraceFuzzer`;
2. lockstep differential replay of SBTB, CBTB, and FS against their
   oracles, including buffer-state comparison after every record, plus
   a scalar-vs-vector engine cross-check of each scheme's
   ``PredictionStats`` over the same trace;
3. a cycle-level differential of the production
   :class:`~repro.pipeline.cycle_sim.CycleSimulator` against the
   straight-line oracle interpreter, on two pipeline shapes — twice
   per shape, once on the default engine and once pinned to the
   vector cycle kernel (fuzz traces sit under the auto threshold, so
   the pin is what exercises :mod:`repro.kernels.cycle` here);

and then, once, the golden-table layer (paper tolerance bands and the
committed golden JSON).  Any divergence is shrunk to a minimal
reproducer and reported — and emitted as a structured
``conformance.divergence`` telemetry event so a CI run's JSONL log
pinpoints the failure without rerunning anything.
"""

from repro.conformance.differential import (
    cycle_divergence,
    engine_divergence,
    replay_divergence,
    shrink_trace,
)
from repro.conformance.fuzz import TraceFuzzer
from repro.conformance.golden import check_golden, check_paper_bands
from repro.conformance.oracles import oracle_for
from repro.pipeline.config import PipelineConfig
from repro.predictors import (
    Bimodal,
    CounterBTB,
    ForwardSemanticPredictor,
    GShare,
    SimpleBTB,
)
from repro.telemetry.core import TELEMETRY

#: Small buffers so fuzzed traces create real capacity/eviction
#: pressure (256 entries would never evict with two dozen sites).
_ENTRIES = 16

#: Pipeline shapes for the cycle differential: the paper's moderately
#: and highly pipelined points.
_CYCLE_CONFIGS = (PipelineConfig(1, 1, 1), PipelineConfig(2, 4, 4))


def _scheme_pairs(fuzzer):
    """(scheme, make_production, make_oracle) for one fuzzed skeleton."""
    likely = fuzzer.likely_sites()
    return (
        ("SBTB",
         lambda: SimpleBTB(entries=_ENTRIES),
         lambda: oracle_for("SBTB", entries=_ENTRIES)),
        ("CBTB",
         lambda: CounterBTB(entries=_ENTRIES),
         lambda: oracle_for("CBTB", entries=_ENTRIES)),
        ("FS",
         lambda: ForwardSemanticPredictor(likely_sites=likely),
         lambda: oracle_for("FS", likely_sites=likely)),
    )


class DivergenceFinding:
    """A shrunk, reportable conformance failure."""

    __slots__ = ("scheme", "seed", "kind", "divergence", "reproducer")

    def __init__(self, scheme, seed, kind, divergence, reproducer):
        self.scheme = scheme
        self.seed = seed
        self.kind = kind
        self.divergence = divergence
        self.reproducer = reproducer

    def describe(self):
        lines = ["%s (seed %d, %s): %s"
                 % (self.scheme, self.seed, self.kind,
                    self.divergence.describe())]
        if self.reproducer is not None:
            lines.append("  minimal reproducer (%d records):"
                         % len(self.reproducer))
            for index in range(len(self.reproducer)):
                lines.append("    %r" % (self.reproducer[index],))
        return "\n".join(lines)


class ConformanceReport:
    """Everything one conformance run observed."""

    def __init__(self, seeds, schemes):
        self.seeds = seeds
        self.schemes = tuple(schemes)
        self.replays = 0
        self.cycle_checks = 0
        self.vector_cycle_checks = 0
        self.engine_checks = 0
        self.probe_checks = 0
        self.findings = []
        self.band_violations = []
        self.golden_violations = []
        self.golden_checked = False

    @property
    def ok(self):
        return not (self.findings or self.band_violations
                    or self.golden_violations)

    def render(self):
        lines = ["Conformance: %d seeds x %d oracles (%d replays, "
                 "%d cycle checks)"
                 % (self.seeds, len(self.schemes), self.replays,
                    self.cycle_checks)]
        if self.findings:
            lines.append("DIVERGENCES (%d):" % len(self.findings))
            lines.extend(finding.describe() for finding in self.findings)
        else:
            lines.append("differential replay: zero divergences")
        lines.append("engine cross-check (scalar vs vector): "
                     "%d comparisons" % self.engine_checks)
        lines.append("vector cycle-sim vs oracle interpreter: "
                     "%d comparisons" % self.vector_cycle_checks)
        if self.probe_checks:
            lines.append("characterization probe battery: "
                         "%d scheme x probe replays" % self.probe_checks)
        if self.golden_checked:
            for label, violations in (
                    ("paper tolerance bands", self.band_violations),
                    ("golden tables", self.golden_violations)):
                if violations:
                    lines.append("%s: %d violation%s"
                                 % (label, len(violations),
                                    "" if len(violations) == 1 else "s"))
                    lines.extend("  " + violation
                                 for violation in violations)
                else:
                    lines.append("%s: pass" % label)
        else:
            lines.append("golden tables: skipped")
        lines.append("RESULT: %s" % ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines) + "\n"


def _note_divergence(report, scheme, seed, divergence, reproducer):
    finding = DivergenceFinding(scheme, seed, divergence.kind, divergence,
                                reproducer)
    report.findings.append(finding)
    TELEMETRY.count("conformance.divergences")
    TELEMETRY.event(
        "conformance.divergence", scheme=scheme, seed=seed,
        kind=divergence.kind, index=divergence.index,
        production=repr(divergence.production),
        oracle=repr(divergence.oracle),
        reproducer_records=(len(reproducer)
                            if reproducer is not None else None))


def _run_probe_battery(report):
    """Replay the characterization probe corpus differentially.

    The probe traces (capacity chains, alias chains, counter steps,
    history ladders, victim probes, disagreement weaves — see
    :func:`repro.characterize.probes.probe_battery`) are adversarial
    by construction: they oversubscribe sets and maximise aliasing,
    regimes the program-skeleton fuzzer essentially never reaches.
    Each trace runs through (a) lockstep oracle replay for the schemes
    that have reference oracles and (b) the scalar-vs-vector engine
    cross-check for every kernel-backed scheme; divergences are shrunk
    like any fuzz finding.
    """
    from repro.characterize.probes import probe_battery

    oracle_schemes = (
        ("SBTB", lambda: SimpleBTB(entries=_ENTRIES),
         lambda: oracle_for("SBTB", entries=_ENTRIES)),
        ("CBTB", lambda: CounterBTB(entries=_ENTRIES),
         lambda: oracle_for("CBTB", entries=_ENTRIES)),
    )
    engine_schemes = (
        ("SBTB", lambda: SimpleBTB(entries=_ENTRIES)),
        ("CBTB", lambda: CounterBTB(entries=_ENTRIES)),
        ("gshare", lambda: GShare(history_bits=4, entries=_ENTRIES)),
        ("bimodal", lambda: Bimodal(entries=_ENTRIES)),
    )
    for family, name, trace in probe_battery(entries=_ENTRIES):
        probe = "%s/%s" % (family, name)
        for scheme, make_production, make_oracle in oracle_schemes:
            report.probe_checks += 1
            divergence = replay_divergence(make_production(),
                                           make_oracle(), trace)
            if divergence is not None:
                reproducer = shrink_trace(
                    trace,
                    lambda t, mp=make_production, mo=make_oracle:
                    replay_divergence(mp(), mo(), t) is not None)
                _note_divergence(report, "%s@probe:%s" % (scheme, probe),
                                 -1, divergence, reproducer)
        for scheme, make_production in engine_schemes:
            report.probe_checks += 1
            divergence = engine_divergence(make_production, trace)
            if divergence is not None:
                reproducer = shrink_trace(
                    trace,
                    lambda t, mp=make_production:
                    engine_divergence(mp, t) is not None)
                _note_divergence(report,
                                 "%s@engine:%s" % (scheme, probe),
                                 -1, divergence, reproducer)


def run_conformance(seeds=200, first_seed=0, golden=True, cache=True,
                    schemes=("SBTB", "CBTB", "FS"), probes=True):
    """Run the full conformance battery; returns a ConformanceReport.

    Args:
        seeds: fuzz seeds to replay (each seed covers every scheme and
            both cycle-differential pipeline shapes).
        first_seed: start of the seed range (CI shards can split it).
        golden: also run the paper-band and golden-file checks.
        cache: let the golden layer use the trace cache.
        schemes: subset of production schemes to check differentially.
        probes: also replay the characterization probe battery (fixed
            adversarial traces) through the oracles and both engines.
    """
    report = ConformanceReport(seeds, schemes)
    if probes:
        with TELEMETRY.span("conformance.probes"):
            _run_probe_battery(report)
    with TELEMETRY.span("conformance.differential", seeds=seeds):
        for seed in range(first_seed, first_seed + seeds):
            TELEMETRY.count("conformance.seeds")
            fuzzer = TraceFuzzer(seed)
            trace = fuzzer.trace()
            pairs = [pair for pair in _scheme_pairs(fuzzer)
                     if pair[0] in schemes]
            for scheme, make_production, make_oracle in pairs:
                report.replays += 1
                divergence = replay_divergence(make_production(),
                                               make_oracle(), trace)
                if divergence is not None:
                    reproducer = shrink_trace(
                        trace,
                        lambda t, mp=make_production, mo=make_oracle:
                        replay_divergence(mp(), mo(), t) is not None,
                        seed=seed)
                    _note_divergence(report, scheme, seed, divergence,
                                     reproducer)
                    continue
                report.engine_checks += 1
                divergence = engine_divergence(make_production, trace)
                if divergence is not None:
                    reproducer = shrink_trace(
                        trace,
                        lambda t, mp=make_production:
                        engine_divergence(mp, t) is not None,
                        seed=seed)
                    _note_divergence(report, "%s@engine" % scheme, seed,
                                     divergence, reproducer)
                    continue
                for config in _CYCLE_CONFIGS:
                    report.cycle_checks += 1
                    divergence = cycle_divergence(
                        config, make_production, make_oracle, trace)
                    if divergence is not None:
                        _note_divergence(report, "%s@%r" % (scheme, config),
                                         seed, divergence, None)
                        continue
                    # Same oracle, but the production side pinned to
                    # the batch cycle kernel: fuzz traces sit under the
                    # auto threshold, so without the pin the vector
                    # cycle path would never face the interpreter.
                    report.vector_cycle_checks += 1
                    divergence = cycle_divergence(
                        config, make_production, make_oracle, trace,
                        engine="vector")
                    if divergence is not None:
                        _note_divergence(
                            report, "%s@vector-cycle@%r" % (scheme, config),
                            seed, divergence, None)
    if golden:
        with TELEMETRY.span("conformance.golden"):
            from repro.experiments.runner import SuiteRunner
            from repro.conformance.golden import GOLDEN_CONFIG

            runner = SuiteRunner(scale=GOLDEN_CONFIG["scale"],
                                 runs=GOLDEN_CONFIG["runs"],
                                 cache_dir=None if cache else False)
            report.band_violations = check_paper_bands(runner)
            # Once per engine: the vector kernels must reproduce the
            # committed trajectory exactly, not merely agree with a
            # scalar loop that drifted alongside them.
            report.golden_violations = check_golden(cache=cache,
                                                    engine="scalar")
            report.golden_violations += [
                "vector engine: " + violation
                for violation in check_golden(cache=cache,
                                              engine="vector")]
            report.golden_checked = True
            TELEMETRY.count("conformance.band_violations",
                            len(report.band_violations))
            TELEMETRY.count("conformance.golden_violations",
                            len(report.golden_violations))
    TELEMETRY.event("conformance.result", ok=report.ok,
                    seeds=seeds, replays=report.replays,
                    cycle_checks=report.cycle_checks,
                    vector_cycle_checks=report.vector_cycle_checks,
                    divergences=len(report.findings))
    return report
