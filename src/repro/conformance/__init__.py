"""Conformance: reference oracles, differential replay, golden tables.

The fast simulator paths (``repro.predictors``, ``repro.pipeline``) are
what every table in the reproduction is computed from, so this package
cross-checks them three ways:

* :mod:`~repro.conformance.oracles` — deliberately naive,
  obviously-correct reimplementations of SBTB, CBTB, FS, and a
  straight-line cycle interpreter, written against the paper's prose
  rather than our optimized code;
* :mod:`~repro.conformance.differential` — a lockstep replay engine
  that runs the same trace through production and oracle, reports the
  first divergence (prediction, buffer state, squash cycles), and
  shrinks a failing trace to a minimal reproducer via seeded
  delta-debugging;
* :mod:`~repro.conformance.golden` — regression of the experiment
  tables against the paper's published values (declared tolerance
  bands) and against committed golden JSON of our own trajectory.

:mod:`~repro.conformance.fuzz` feeds the differential engine with
deterministic seeded traces; :mod:`~repro.conformance.harness` ties
everything into the ``repro-branches conformance`` CLI subcommand and
the telemetry event stream.
"""

from repro.conformance.differential import (
    Divergence,
    cycle_divergence,
    engine_divergence,
    replay_divergence,
    shrink_trace,
    subtrace,
)
from repro.conformance.fuzz import TraceFuzzer
from repro.conformance.golden import (
    GOLDEN_PATH,
    check_golden,
    check_paper_bands,
    write_golden,
)
from repro.conformance.harness import ConformanceReport, run_conformance
from repro.conformance.oracles import (
    OracleCBTB,
    OracleCycleInterpreter,
    OracleFS,
    OracleSBTB,
    oracle_for,
)

__all__ = [
    "Divergence",
    "ConformanceReport",
    "GOLDEN_PATH",
    "OracleCBTB",
    "OracleCycleInterpreter",
    "OracleFS",
    "OracleSBTB",
    "TraceFuzzer",
    "check_golden",
    "check_paper_bands",
    "cycle_divergence",
    "engine_divergence",
    "oracle_for",
    "replay_divergence",
    "run_conformance",
    "shrink_trace",
    "subtrace",
    "write_golden",
]
