"""Deterministic seeded trace/program fuzzer for the differential engine.

Pure-iid random records exercise predictors poorly (no locality, no
loops, no stable biases), so the fuzzer works at the *program* level
first: it draws a random control-flow skeleton — a set of branch sites
with a class, a per-site taken bias, and successor sites — and then
walks that skeleton with a seeded RNG to emit a correlated dynamic
trace.  The result has loops, hot sites, biased conditionals, the
occasional flaky indirect jump, and a likely-bit map consistent with
what a profiling compiler would have set — everything the SBTB/CBTB/FS
oracles disagree about when an implementation is wrong.

Everything is derived from one ``random.Random(seed)``; the same seed
always yields the same trace (the property the replay engine and the
shrinker rely on).
"""

import random

from repro.vm.tracing import BranchClass, BranchTrace

#: Weighted class mix, roughly the paper's Table 1/2 regime: mostly
#: conditionals, some direct jumps/calls, few indirects and returns.
_CLASS_WEIGHTS = (
    (BranchClass.CONDITIONAL, 12),
    (BranchClass.UNCONDITIONAL_KNOWN, 4),
    (BranchClass.UNCONDITIONAL_UNKNOWN, 1),
    (BranchClass.RETURN, 3),
)

#: Per-site taken biases: strongly-not-taken through strongly-taken,
#: mirroring the bimodal site populations of Table 2.
_BIASES = (0.02, 0.1, 0.3, 0.5, 0.7, 0.9, 0.98)


class _Site:
    __slots__ = ("address", "branch_class", "bias", "target", "alt_targets")

    def __init__(self, address, branch_class, bias, target, alt_targets):
        self.address = address
        self.branch_class = branch_class
        self.bias = bias
        self.target = target
        self.alt_targets = alt_targets


class TraceFuzzer:
    """One seed, one reproducible program skeleton and trace.

    Args:
        seed: the only source of randomness.
        n_sites: static branch sites in the skeleton (small by default
            so 16-entry buffers see real capacity pressure).
        n_records: dynamic records per generated trace.
        address_space: site/target addresses are drawn below this.
    """

    def __init__(self, seed, n_sites=24, n_records=160, address_space=512):
        self.seed = seed
        self.n_sites = n_sites
        self.n_records = n_records
        self.address_space = address_space
        self._rng = random.Random(seed)
        self._sites = self._build_skeleton()

    def _build_skeleton(self):
        rng = self._rng
        classes = [branch_class
                   for branch_class, weight in _CLASS_WEIGHTS
                   for _ in range(weight)]
        addresses = rng.sample(range(self.address_space), self.n_sites)
        sites = []
        for address in addresses:
            branch_class = rng.choice(classes)
            bias = rng.choice(_BIASES)
            target = rng.randrange(self.address_space)
            # Indirect jumps (and a sprinkle of others) carry alternate
            # targets so target-field handling gets exercised.
            n_alts = (rng.randint(1, 3)
                      if branch_class == BranchClass.UNCONDITIONAL_UNKNOWN
                      else 0)
            alt_targets = tuple(rng.randrange(self.address_space)
                                for _ in range(n_alts))
            sites.append(_Site(address, branch_class, bias, target,
                               alt_targets))
        return sites

    def likely_sites(self):
        """The likely-bit map a profiling compiler would have written.

        A conditional site is marked likely-taken iff its bias exceeds
        one half — exactly what profile-guided likely bits converge to.
        """
        return {site.address: site.bias > 0.5
                for site in self._sites
                if site.branch_class == BranchClass.CONDITIONAL}

    def trace(self):
        """Emit one dynamic :class:`BranchTrace` by walking the skeleton.

        The walk favours staying on a small working set (loop
        behaviour) with occasional jumps to a different region
        (phase changes), so buffers both warm up and get evicted.
        """
        rng = self._rng
        trace = BranchTrace()
        position = rng.randrange(len(self._sites))
        for _ in range(self.n_records):
            site = self._sites[position]
            if site.branch_class == BranchClass.CONDITIONAL:
                taken = rng.random() < site.bias
                target = site.target
            elif site.branch_class == BranchClass.UNCONDITIONAL_UNKNOWN:
                taken = True
                target = rng.choice(site.alt_targets + (site.target,))
            else:
                taken = True
                target = site.target
            gap = rng.randint(0, 7)
            trace.append(site.address, site.branch_class, taken, target,
                         gap)
            # Loopy walk: usually a neighbour, sometimes a far jump.
            if rng.random() < 0.85:
                position = (position + rng.randint(-2, 2)) % len(self._sites)
            else:
                position = rng.randrange(len(self._sites))
        trace.total_instructions = sum(trace.gaps) + len(trace)
        return trace
