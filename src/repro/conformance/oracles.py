"""Reference oracles: naive reimplementations of the paper's schemes.

Every class here is written for obviousness, not speed: plain lists,
linear scans, one decision per line of the paper's prose.  They share
*no* code with the production predictors — that independence is the
whole point of differential testing (the reverse-engineering literature
probes black-box predictors the same way).  Where the paper's prose is
silent the oracles encode the documented repo convention, namely the
recency policy of :mod:`repro.predictors.assoc_cache`: a predict-path
lookup and a new-entry allocation refresh recency; an in-place update
does not.

Each oracle mirrors the production ``predict``/``update`` protocol and
additionally exposes ``state()`` — a hashable snapshot of its entire
buffer in replacement order — which the differential engine compares
against the production predictor's state after every record.
"""

from repro.predictors.base import Prediction
from repro.vm.tracing import BranchClass


class _NaiveLRU:
    """A fully-explicit (set-)associative LRU store.

    Entries live in per-set Python lists ordered LRU-first; a recency
    refresh removes the key and re-appends it.  O(ways) per operation,
    intentionally.
    """

    def __init__(self, entries, associativity=None):
        if associativity is None:
            associativity = entries
        if entries <= 0 or associativity <= 0 or entries % associativity:
            raise ValueError("bad geometry")
        self.entries = entries
        self.associativity = associativity
        self.n_sets = entries // associativity
        # Each set: list of [key, value] pairs, index 0 = next victim.
        self.sets = [[] for _ in range(self.n_sets)]

    def _set(self, key):
        return self.sets[key % self.n_sets]

    def get_refresh(self, key):
        """Predict-path access: value or None, refreshing recency."""
        bucket = self._set(key)
        for index, (stored, value) in enumerate(bucket):
            if stored == key:
                del bucket[index]
                bucket.append([key, value])
                return value
        return None

    def get_quiet(self, key):
        """Update-path access: value or None, order untouched."""
        for stored, value in self._set(key):
            if stored == key:
                return value
        return None

    def put_new(self, key, value):
        """Allocate ``key`` (must be absent), evicting the set's LRU."""
        bucket = self._set(key)
        if len(bucket) >= self.associativity:
            del bucket[0]
        bucket.append([key, value])

    def set_quiet(self, key, value):
        """Overwrite ``key``'s value in place (must be present)."""
        for pair in self._set(key):
            if pair[0] == key:
                pair[1] = value
                return
        raise KeyError(key)

    def remove(self, key):
        bucket = self._set(key)
        for index, (stored, _) in enumerate(bucket):
            if stored == key:
                del bucket[index]
                return

    def snapshot(self):
        """((key, value), ...) per set in LRU order, sets concatenated."""
        return tuple((stored, value)
                     for bucket in self.sets
                     for stored, value in bucket)


class OracleSBTB:
    """Section 2.2's Simple BTB, straight from the prose.

    "Remembers as many taken branches as possible": a hit predicts
    taken with the stored target; a miss predicts not-taken; a buffered
    branch that executes not-taken loses its entry; a taken branch is
    (re)recorded with its target.
    """

    name = "oracle-SBTB"

    def __init__(self, entries=256, associativity=None):
        self._lru = _NaiveLRU(entries, associativity)

    def predict(self, site, branch_class):
        target = self._lru.get_refresh(site)
        if target is None:
            return Prediction(False, hit=False)
        return Prediction(True, target=target, hit=True)

    def update(self, site, branch_class, taken, target):
        if not taken:
            self._lru.remove(site)
        elif self._lru.get_quiet(site) is None:
            self._lru.put_new(site, target)
        else:
            self._lru.set_quiet(site, target)

    def reset(self):
        self._lru = _NaiveLRU(self._lru.entries, self._lru.associativity)

    def flush(self):
        self.reset()

    def state(self):
        return self._lru.snapshot()


class OracleCBTB:
    """Section 2.2's Counter BTB.

    Every executed branch is remembered with an n-bit saturating
    up/down counter C and a target.  A fresh entry starts at T when the
    branch was taken, T-1 otherwise.  Predict taken iff C >= T.  Taken
    increments (saturating at 2^n - 1) and refreshes the target;
    not-taken decrements (saturating at 0).
    """

    name = "oracle-CBTB"

    def __init__(self, entries=256, associativity=None, counter_bits=2,
                 threshold=2):
        self.counter_max = 2 ** counter_bits - 1
        self.threshold = threshold
        self._lru = _NaiveLRU(entries, associativity)

    def predict(self, site, branch_class):
        entry = self._lru.get_refresh(site)
        if entry is None:
            return Prediction(False, hit=False)
        counter, target = entry
        if counter >= self.threshold:
            return Prediction(True, target=target, hit=True)
        return Prediction(False, hit=True)

    def update(self, site, branch_class, taken, target):
        entry = self._lru.get_quiet(site)
        if entry is None:
            start = self.threshold if taken else self.threshold - 1
            self._lru.put_new(site, (start, target))
            return
        counter, stored_target = entry
        if taken:
            counter = min(counter + 1, self.counter_max)
            stored_target = target
        else:
            counter = max(counter - 1, 0)
        self._lru.set_quiet(site, (counter, stored_target))

    def reset(self):
        self._lru = _NaiveLRU(self._lru.entries, self._lru.associativity)

    def flush(self):
        self.reset()

    def state(self):
        return self._lru.snapshot()


class OracleFS:
    """The Forward Semantic from the prose: a frozen likely-bit table.

    Conditional branches follow their compiler-set likely bit;
    known-target unconditional branches are always covered; an
    unknown-target indirect jump can never be predicted.  No state, no
    updates, immune to flushes.
    """

    name = "oracle-FS"

    def __init__(self, likely_sites):
        self._likely = dict(likely_sites)

    def predict(self, site, branch_class):
        if branch_class == BranchClass.CONDITIONAL:
            if self._likely.get(site, False):
                return Prediction(True, target=_ANY)
            return Prediction(False)
        if branch_class == BranchClass.UNCONDITIONAL_KNOWN:
            return Prediction(True, target=_ANY)
        return Prediction(False)

    def update(self, site, branch_class, taken, target):
        pass

    def reset(self):
        pass

    def flush(self):
        pass

    def state(self):
        return ()


class _AnyTarget:
    """Matches any concrete target (the statically-encoded one)."""

    def __eq__(self, other):
        return True

    def __ne__(self, other):
        return False

    def __hash__(self):  # pragma: no cover
        return 0


_ANY = _AnyTarget()


class OracleCycleStats:
    """What the straight-line interpreter measures."""

    __slots__ = ("cycles", "instructions", "branches", "squashed_cycles",
                 "mispredictions", "fill_cycles", "squashed_by_class")

    def __init__(self):
        self.cycles = 0
        self.instructions = 0
        self.branches = 0
        self.squashed_cycles = 0
        self.mispredictions = 0
        self.fill_cycles = 0
        self.squashed_by_class = {}


class OracleCycleInterpreter:
    """The pipeline story of Section 2.3, told one instruction at a time.

    The machine is in-order and single-issue with one-cycle stages, so
    the prose reduces to: every retired instruction is one cycle; a
    branch whose scheme failed to cover it squashes the instructions
    fetched behind it — k + l + m for a conditional discovered at the
    end of execute, k + l for an unconditional discovered at the end of
    decode — and each squashed instruction is one wasted cycle; the
    pipeline fill before the first retirement is depth - 1 cycles.
    This interpreter charges those cycles with explicit unit loops
    (no closed forms) so its total is an independent derivation of
    :class:`repro.pipeline.cycle_sim.CycleSimulator`'s arithmetic.
    """

    def __init__(self, config, predictor, ras_returns=True):
        self.config = config
        self.predictor = predictor
        self.ras_returns = ras_returns

    def run(self, trace):
        from repro.predictors.base import is_correct

        config = self.config
        stats = OracleCycleStats()
        for _ in range(config.depth - 1):        # pipeline fill
            stats.fill_cycles += 1
            stats.cycles += 1
        for site, branch_class, taken, target, gap in trace.records():
            for _ in range(gap):                 # non-branch retirements
                stats.instructions += 1
                stats.cycles += 1
            stats.instructions += 1              # the branch retires too
            stats.cycles += 1
            stats.branches += 1
            if branch_class == BranchClass.RETURN and self.ras_returns:
                continue                         # covered by the RAS
            prediction = self.predictor.predict(site, branch_class)
            covered = is_correct(prediction, taken, target)
            self.predictor.update(site, branch_class, taken, target)
            if covered:
                continue
            stats.mispredictions += 1
            if branch_class == BranchClass.CONDITIONAL:
                wasted = config.k + config.l + config.m
            else:
                wasted = config.k + config.l
            for _ in range(wasted):              # squashed slots, 1 cycle each
                stats.squashed_cycles += 1
                stats.cycles += 1
            stats.squashed_by_class[branch_class] = (
                stats.squashed_by_class.get(branch_class, 0) + wasted)
        # The production simulator counts instructions from the trace
        # header (which may include a non-branch tail after the last
        # branch record); charge any such tail here too.
        tail = trace.total_instructions - stats.instructions
        for _ in range(max(tail, 0)):
            stats.instructions += 1
            stats.cycles += 1
        return stats


def oracle_for(scheme, entries=256, associativity=None, counter_bits=2,
               threshold=2, likely_sites=None):
    """Build the oracle matching a production scheme name."""
    if scheme == "SBTB":
        return OracleSBTB(entries, associativity)
    if scheme == "CBTB":
        return OracleCBTB(entries, associativity, counter_bits, threshold)
    if scheme == "FS":
        return OracleFS(likely_sites or {})
    raise ValueError("no oracle for scheme %r" % (scheme,))
