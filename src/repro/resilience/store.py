"""Crash-safe artifact storage: atomic writes, checksums, quarantine.

The trace cache and experiment outputs are only trustworthy if a
SIGKILL, a full disk, or a concurrent writer cannot leave a
half-written artifact that silently poisons every later run.  This
module gives the suite runner (and anything else that persists
artifacts) four guarantees:

* **atomicity** — every write goes to a temp file in the target
  directory, is flushed and ``fsync``-ed, then ``os.replace``-d over
  the destination (and the directory fsync-ed), so readers observe
  either the old artifact or the complete new one, never a torn write;
* **integrity** — writes return a ``sha256:<hex>`` checksum that the
  run manifest records and :func:`verify_checksum` re-derives on load;
* **quarantine** — artifacts that fail checksum or parse are renamed
  to ``*.corrupt`` (with a ``cache.quarantined`` telemetry event), so
  a damaged entry is recomputed once instead of re-failing every run;
* **mutual exclusion** — :class:`StemLock` is an inter-process
  lockfile keyed by cache stem, so two warm workers never interleave
  writes to (or double-compute) the same entry.

All hook points consult the fault injector
(:data:`repro.resilience.faults.FAULTS`) behind a single attribute
check, so the recovery paths can be exercised deterministically while
production runs pay nothing.
"""

import hashlib
import io
import json
import os
import random
import time
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback below
    fcntl = None

from repro.resilience.errors import LockTimeout
from repro.resilience.faults import FAULTS
from repro.telemetry.core import TELEMETRY

CHECKSUM_PREFIX = "sha256:"

#: Suffix quarantined artifacts are renamed to.
QUARANTINE_SUFFIX = ".corrupt"


def data_checksum(data):
    """The ``sha256:<hex>`` digest of a bytes payload."""
    return CHECKSUM_PREFIX + hashlib.sha256(data).hexdigest()


def file_checksum(path):
    """The ``sha256:<hex>`` digest of a file's contents."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return CHECKSUM_PREFIX + digest.hexdigest()


def verify_checksum(path, expected):
    """True when ``path`` hashes to ``expected`` (False on any OSError)."""
    if not expected:
        return False
    try:
        return file_checksum(path) == expected
    except OSError:
        return False


def _fsync_directory(directory):
    """Flush a directory entry so a rename survives power loss."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. O_RDONLY dirs on win
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - not all filesystems allow it
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path, data):
    """Atomically persist ``data`` at ``path``; returns its checksum.

    Write-to-temp + flush + fsync + ``os.replace`` + directory fsync.
    The temp file lives in the destination directory (same
    filesystem, so the replace is atomic) and is removed on any
    failure, so an injected ``OSError`` — or a real full disk — leaves
    no partial artifact behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if FAULTS.enabled:
        FAULTS.on_write(path)
    temp = path.with_name(".%s.tmp.%d" % (path.name, os.getpid()))
    try:
        with open(temp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
    except BaseException:
        temp.unlink(missing_ok=True)
        raise
    _fsync_directory(path.parent)
    if FAULTS.enabled:
        FAULTS.on_commit(path)
    return data_checksum(data)


def atomic_write_text(path, text):
    """Atomic UTF-8 text write; returns the checksum of the bytes."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path, payload):
    """Atomic JSON write (sorted keys); returns the checksum."""
    return atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def atomic_write_npz(path, arrays):
    """Atomic compressed-numpy write; returns the checksum.

    The archive is serialised in memory first so the on-disk write is
    a single atomic byte-level commit.
    """
    import numpy as np

    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return atomic_write_bytes(path, buffer.getvalue())


def quarantine(path, reason, benchmark=None):
    """Rename a damaged artifact to ``*.corrupt``; returns the new path.

    Quarantined files keep their bytes for post-mortems but no longer
    match any cache stem, so the entry is recomputed exactly once
    instead of failing on every run.  Returns None when ``path`` does
    not exist (e.g. the artifact vanished between detect and rename).
    """
    path = Path(path)
    if not path.exists():
        return None
    target = path.with_name(path.name + QUARANTINE_SUFFIX)
    serial = 0
    while target.exists():
        serial += 1
        target = path.with_name("%s%s.%d" % (path.name,
                                             QUARANTINE_SUFFIX, serial))
    try:
        os.replace(path, target)
    except OSError:
        return None
    TELEMETRY.count("store.quarantined")
    TELEMETRY.event("cache.quarantined", path=str(path),
                    quarantined_as=str(target), reason=reason,
                    benchmark=benchmark)
    return target


def list_quarantined(directory):
    """All ``*.corrupt`` artifacts under ``directory``, sorted."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(path for path in directory.iterdir()
                  if QUARANTINE_SUFFIX in path.name)


class StemLock:
    """An inter-process lock keyed by cache stem.

    POSIX builds use ``fcntl.flock`` on a ``<stem>.lock`` file (locks
    die with the holder, so a SIGKILL-ed worker never wedges the
    cache); elsewhere it degrades to an ``O_EXCL`` create-file
    protocol.  Acquisition polls with a deadline and raises
    :class:`LockTimeout` rather than blocking a campaign forever on a
    hung peer.

    Contended polling backs off exponentially with seeded +-50%
    jitter (the supervisor's retry policy), from ``poll`` up to
    ``max_poll`` — a fixed-cadence poll makes every contender hammer
    the lock file in lockstep, which is exactly the thundering herd a
    campaign of deduplicated shards would otherwise produce.  The
    jitter seed is derived from the stem, so two contenders on the
    same stem still decorrelate via their attempt phase while a test
    replaying one acquirer sees identical delays.
    """

    def __init__(self, directory, stem, timeout=600.0, poll=0.05,
                 max_poll=1.0):
        self.path = Path(directory) / (stem + ".lock")
        self.timeout = timeout
        self.poll = poll
        self.max_poll = max_poll
        self._handle = None
        self._rng = random.Random(stem)
        self._clock = time.monotonic
        self._sleep = time.sleep

    def _backoff_delay(self, attempt, remaining):
        """Sleep before retry ``attempt``: jittered, capped, and
        clamped so the final poll lands on the deadline rather than
        oversleeping past it."""
        base = min(self.poll * (2 ** (attempt - 1)), self.max_poll)
        delay = base * (0.5 + self._rng.random())
        return max(min(delay, self.max_poll, remaining), 0.0)

    def acquire(self):
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = self._clock() + self.timeout
        attempt = 0
        while True:
            if self._try_acquire():
                return self
            attempt += 1
            remaining = deadline - self._clock()
            if remaining <= 0:
                TELEMETRY.count("store.lock_timeout")
                TELEMETRY.event("cache.lock_timeout",
                                path=str(self.path),
                                timeout_s=self.timeout,
                                attempts=attempt)
                raise LockTimeout(str(self.path), self.timeout)
            self._sleep(self._backoff_delay(attempt, remaining))

    def _try_acquire(self):
        if fcntl is not None:
            handle = open(self.path, "a+")
            try:
                fcntl.flock(handle.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.close()
                return False
            self._handle = handle
            return True
        try:  # pragma: no cover - exercised only on non-POSIX hosts
            fd = os.open(str(self.path), os.O_CREAT | os.O_EXCL
                         | os.O_WRONLY)
        except FileExistsError:  # pragma: no cover
            return False
        self._handle = fd  # pragma: no cover
        return True  # pragma: no cover

    def release(self):
        handle, self._handle = self._handle, None
        if handle is None:
            return
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()
        else:  # pragma: no cover - non-POSIX fallback
            os.close(handle)
            self.path.unlink(missing_ok=True)

    def __enter__(self):
        return self.acquire()

    def __exit__(self, exc_type, exc_value, traceback):
        self.release()
        return False
