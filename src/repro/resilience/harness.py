"""The fault-injection recovery matrix behind ``repro-branches faults``.

For every seed and every fault kind in the catalog, the harness arms a
deterministic :class:`~repro.resilience.faults.FaultPlan`, runs a real
(tiny) benchmark through the suite runner — or a supervised worker
through :func:`~repro.resilience.supervisor.run_supervised` — and then
verifies that the injected fault was *detected and recovered from*,
with the matching telemetry event as evidence:

=================  ==========================  =====================
fault              expected recovery           evidence event
=================  ==========================  =====================
torn-write         quarantine + recompute      ``cache.quarantined``
bit-flip           quarantine + recompute      ``cache.quarantined``
enospc             run completes uncached      ``cache.store_failed``
worker-crash       retry succeeds              ``worker.retry``
worker-hang        kill + retry succeeds       ``worker.retry``
corrupt-manifest   quarantine + recompute      ``cache.quarantined``
=================  ==========================  =====================

A fault that fires but produces no recovery evidence is a **silent
swallow** and fails the matrix — which is the whole point: the gate in
``scripts/check.sh`` proves the recovery paths keep working.
"""

import contextlib
import os
import tempfile
from pathlib import Path

from repro.resilience.faults import (
    FAULT_KINDS,
    FAULTS,
    PLAN_ENV_VAR,
    FaultPlan,
)
from repro.resilience.store import (
    atomic_write_bytes,
    list_quarantined,
)
from repro.resilience.supervisor import run_supervised
from repro.telemetry.core import TELEMETRY
from repro.telemetry.sinks import InMemoryAggregator

#: The benchmark and scale every scenario runs; small enough that a
#: full matrix stays a smoke test, real enough to cover the actual
#: compile/profile/trace/store pipeline.
MATRIX_BENCHMARK = "wc"
MATRIX_SCALE = 0.02

#: Supervisor shape for the worker scenarios: tight timeout so a hung
#: worker is killed quickly, two retries so one injected death heals.
WORKER_TIMEOUT = 1.0
WORKER_RETRIES = 2
WORKER_BACKOFF = 0.05


class FaultCase:
    """One (kind, seed) cell of the recovery matrix."""

    __slots__ = ("kind", "seed", "outcome", "ok", "detail", "events")

    def __init__(self, kind, seed, outcome, ok, detail, events):
        self.kind = kind
        self.seed = seed
        self.outcome = outcome
        self.ok = ok
        self.detail = detail
        self.events = events

    def to_dict(self):
        return {"kind": self.kind, "seed": self.seed,
                "outcome": self.outcome, "ok": self.ok,
                "detail": self.detail, "events": list(self.events)}

    def __repr__(self):
        return "FaultCase(%s, seed=%d, %s, %s)" % (
            self.kind, self.seed, self.outcome,
            "ok" if self.ok else "SWALLOWED")


class FaultMatrixReport:
    """Everything one recovery-matrix run observed."""

    def __init__(self, seeds, kinds):
        self.seeds = seeds
        self.kinds = tuple(kinds)
        self.cases = []

    @property
    def swallowed(self):
        return [case for case in self.cases if not case.ok]

    @property
    def ok(self):
        return bool(self.cases) and not self.swallowed

    def by_kind(self, kind):
        return [case for case in self.cases if case.kind == kind]

    def render(self):
        lines = ["Fault-injection recovery matrix: %d seeds x %d "
                 "fault kinds (%d cases)"
                 % (self.seeds, len(self.kinds), len(self.cases))]
        for kind in self.kinds:
            cases = self.by_kind(kind)
            good = sum(case.ok for case in cases)
            outcomes = sorted({case.outcome for case in cases})
            lines.append("  %-16s %d/%d recovered (%s)"
                         % (kind, good, len(cases),
                            ", ".join(outcomes) or "no cases"))
        if self.swallowed:
            lines.append("SILENT SWALLOWS (%d):" % len(self.swallowed))
            for case in self.swallowed:
                lines.append("  %s seed %d: %s"
                             % (case.kind, case.seed, case.detail))
        lines.append("RESULT: %s" % ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines) + "\n"

    def to_dict(self):
        return {"seeds": self.seeds, "kinds": list(self.kinds),
                "ok": self.ok,
                "cases": [case.to_dict() for case in self.cases]}


@contextlib.contextmanager
def _captured_events():
    """Route telemetry into a private aggregator; restore after."""
    sink = InMemoryAggregator()
    prior_enabled, prior_sink = TELEMETRY.enabled, TELEMETRY.sink
    TELEMETRY.enable(sink)
    try:
        yield sink
    finally:
        TELEMETRY.enabled, TELEMETRY.sink = prior_enabled, prior_sink


def _event_names(sink):
    return sorted({event.get("name") for event in sink.of_type("event")})


def _make_runner(cache_dir):
    from repro.experiments.runner import SuiteRunner

    return SuiteRunner(scale=MATRIX_SCALE, runs=1, cache_dir=cache_dir)


def _corruption_case(kind, seed, case_dir):
    """torn-write / bit-flip / corrupt-manifest: quarantine + recompute."""
    plan = FaultPlan.single(kind, seed=seed)
    with _captured_events() as sink:
        FAULTS.arm(plan)
        try:
            first = _make_runner(case_dir).run(MATRIX_BENCHMARK)
        finally:
            FAULTS.disarm()
        injected = bool(sink.named("fault.injected"))
        # Recovery: a fresh runner must detect the damage, quarantine
        # the entry, recompute, and store a clean replacement.
        second = _make_runner(case_dir).run(MATRIX_BENCHMARK)
        quarantined = bool(sink.named("cache.quarantined"))
        # Proof of a clean replacement: a third runner gets a pure
        # cache hit with no new quarantine.
        third = _make_runner(case_dir).run(MATRIX_BENCHMARK)
        hits = sink.named("cache.hit")
        events = _event_names(sink)
    equal = (list(first.trace.records()) == list(second.trace.records())
             == list(third.trace.records()))
    corrupt_files = list_quarantined(case_dir)
    ok = (injected and quarantined and equal and bool(corrupt_files)
          and bool(hits))
    detail = ("injected=%s quarantined=%s identical=%s corrupt_files=%d"
              % (injected, quarantined, equal, len(corrupt_files)))
    return FaultCase(kind, seed, "quarantined+recomputed", ok, detail,
                     events)


def _enospc_case(seed, case_dir):
    """enospc: the run completes uncached and leaves no partial entry."""
    plan = FaultPlan.single("enospc", seed=seed)
    with _captured_events() as sink:
        FAULTS.arm(plan)
        try:
            run = _make_runner(case_dir).run(MATRIX_BENCHMARK)
        finally:
            FAULTS.disarm()
        injected = bool(sink.named("fault.injected"))
        surfaced = bool(sink.named("cache.store_failed"))
        events = _event_names(sink)
    # No torn entry may survive: either nothing, or a complete
    # checksum-valid entry (the failed store must clean up after
    # itself).
    leftovers = [path for path in Path(case_dir).glob("*.npz")]
    completed = run is not None and len(run.trace) > 0
    ok = injected and surfaced and completed and not leftovers
    detail = ("injected=%s surfaced=%s completed=%s leftovers=%d"
              % (injected, surfaced, completed, len(leftovers)))
    return FaultCase("enospc", seed, "degraded-uncached", ok, detail,
                     events)


def _matrix_worker(payload):
    """Supervised-worker body: one crash-safe artifact write."""
    path, seed = payload
    data = ("matrix artifact seed %d\n" % seed).encode() * 64
    atomic_write_bytes(path, data)


def _worker_case(kind, seed, case_dir):
    """worker-crash / worker-hang: supervisor kills/retries to success."""
    plan = FaultPlan.single(kind, seed=seed)
    artifact = str(Path(case_dir) / "artifact.bin")
    os.environ[PLAN_ENV_VAR] = plan.to_json()
    try:
        with _captured_events() as sink:
            report = run_supervised(
                [("artifact", (artifact, seed))], _matrix_worker,
                workers=1, timeout=WORKER_TIMEOUT,
                retries=WORKER_RETRIES, backoff=WORKER_BACKOFF,
                seed=seed)
            retried = bool(sink.named("worker.retry"))
            events = _event_names(sink)
    finally:
        os.environ.pop(PLAN_ENV_VAR, None)
    outcome = report.outcome("artifact")
    recovered = (report.ok and outcome is not None
                 and outcome.attempts == 2)
    written = Path(artifact).exists()
    ok = retried and recovered and written
    detail = ("retried=%s attempts=%s written=%s"
              % (retried,
                 outcome.attempts if outcome else None, written))
    return FaultCase(kind, seed, "retried", ok, detail, events)


def run_fault_matrix(seeds=10, first_seed=0, kinds=FAULT_KINDS,
                     base_dir=None):
    """Run the recovery matrix; returns a :class:`FaultMatrixReport`.

    Args:
        seeds: seeds per fault kind (each varies the trigger point and
            damage parameters).
        first_seed: start of the seed range.
        kinds: subset of :data:`FAULT_KINDS` to exercise.
        base_dir: scratch directory (a fresh temp dir by default);
            each case gets its own isolated cache underneath.
    """
    report = FaultMatrixReport(seeds, kinds)
    with contextlib.ExitStack() as stack:
        if base_dir is None:
            base_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-faults-"))
        base = Path(base_dir)
        for seed in range(first_seed, first_seed + seeds):
            for kind in kinds:
                case_dir = base / ("%s-%d" % (kind, seed))
                case_dir.mkdir(parents=True, exist_ok=True)
                if kind in ("torn-write", "bit-flip",
                            "corrupt-manifest"):
                    case = _corruption_case(kind, seed, case_dir)
                elif kind == "enospc":
                    case = _enospc_case(seed, case_dir)
                else:
                    case = _worker_case(kind, seed, case_dir)
                report.cases.append(case)
    TELEMETRY.event("faults.result", ok=report.ok,
                    cases=len(report.cases),
                    swallowed=len(report.swallowed))
    return report
