"""The fault-injection recovery matrix behind ``repro-branches faults``.

For every seed and every fault kind in the catalog, the harness arms a
deterministic :class:`~repro.resilience.faults.FaultPlan`, runs a real
(tiny) benchmark through the suite runner — or a supervised worker
through :func:`~repro.resilience.supervisor.run_supervised` — and then
verifies that the injected fault was *detected and recovered from*,
with the matching telemetry event as evidence:

=================  ==========================  =====================
fault              expected recovery           evidence event
=================  ==========================  =====================
torn-write         quarantine + recompute      ``cache.quarantined``
bit-flip           quarantine + recompute      ``cache.quarantined``
enospc             run completes uncached      ``cache.store_failed``
worker-crash       retry succeeds              ``worker.retry``
worker-hang        kill + retry succeeds       ``worker.retry``
corrupt-manifest   quarantine + recompute      ``cache.quarantined``
shard-crash        service retries to done     ``service.shard.retry``
queue-overflow     explicit 429-style reject   ``service.admission.rejected``
deadline-storm     cancel + degraded tables    ``service.campaign.expired``
slow-client        other clients unaffected    (campaign completes)
=================  ==========================  =====================

The last four are *service-level* scenarios against a live
:class:`~repro.service.dispatcher.CampaignService` (see
:data:`~repro.resilience.faults.SERVICE_FAULT_KINDS`): only
``shard-crash`` fires through an injector hook inside a worker; the
others drive the service the way a hostile client would and assert it
sheds load explicitly instead of hanging, OOMing, or fabricating
table cells.

A fault that fires but produces no recovery evidence is a **silent
swallow** and fails the matrix — which is the whole point: the gate in
``scripts/check.sh`` proves the recovery paths keep working.
"""

import contextlib
import os
import tempfile
from pathlib import Path

from repro.resilience.faults import (
    ALL_FAULT_KINDS,
    FAULTS,
    PLAN_ENV_VAR,
    FaultPlan,
)
from repro.resilience.store import (
    atomic_write_bytes,
    list_quarantined,
)
from repro.resilience.supervisor import run_supervised
from repro.telemetry.core import TELEMETRY
from repro.telemetry.sinks import InMemoryAggregator

#: The benchmark and scale every scenario runs; small enough that a
#: full matrix stays a smoke test, real enough to cover the actual
#: compile/profile/trace/store pipeline.
MATRIX_BENCHMARK = "wc"
MATRIX_SCALE = 0.02

#: Supervisor shape for the worker scenarios: tight timeout so a hung
#: worker is killed quickly, two retries so one injected death heals.
WORKER_TIMEOUT = 1.0
WORKER_RETRIES = 2
WORKER_BACKOFF = 0.05


class FaultCase:
    """One (kind, seed) cell of the recovery matrix."""

    __slots__ = ("kind", "seed", "outcome", "ok", "detail", "events")

    def __init__(self, kind, seed, outcome, ok, detail, events):
        self.kind = kind
        self.seed = seed
        self.outcome = outcome
        self.ok = ok
        self.detail = detail
        self.events = events

    def to_dict(self):
        return {"kind": self.kind, "seed": self.seed,
                "outcome": self.outcome, "ok": self.ok,
                "detail": self.detail, "events": list(self.events)}

    def __repr__(self):
        return "FaultCase(%s, seed=%d, %s, %s)" % (
            self.kind, self.seed, self.outcome,
            "ok" if self.ok else "SWALLOWED")


class FaultMatrixReport:
    """Everything one recovery-matrix run observed."""

    def __init__(self, seeds, kinds):
        self.seeds = seeds
        self.kinds = tuple(kinds)
        self.cases = []

    @property
    def swallowed(self):
        return [case for case in self.cases if not case.ok]

    @property
    def ok(self):
        return bool(self.cases) and not self.swallowed

    def by_kind(self, kind):
        return [case for case in self.cases if case.kind == kind]

    def render(self):
        lines = ["Fault-injection recovery matrix: %d seeds x %d "
                 "fault kinds (%d cases)"
                 % (self.seeds, len(self.kinds), len(self.cases))]
        for kind in self.kinds:
            cases = self.by_kind(kind)
            good = sum(case.ok for case in cases)
            outcomes = sorted({case.outcome for case in cases})
            lines.append("  %-16s %d/%d recovered (%s)"
                         % (kind, good, len(cases),
                            ", ".join(outcomes) or "no cases"))
        if self.swallowed:
            lines.append("SILENT SWALLOWS (%d):" % len(self.swallowed))
            for case in self.swallowed:
                lines.append("  %s seed %d: %s"
                             % (case.kind, case.seed, case.detail))
        lines.append("RESULT: %s" % ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines) + "\n"

    def to_dict(self):
        return {"seeds": self.seeds, "kinds": list(self.kinds),
                "ok": self.ok,
                "cases": [case.to_dict() for case in self.cases]}


@contextlib.contextmanager
def _captured_events():
    """Route telemetry into a private aggregator; restore after."""
    sink = InMemoryAggregator()
    prior_enabled, prior_sink = TELEMETRY.enabled, TELEMETRY.sink
    TELEMETRY.enable(sink)
    try:
        yield sink
    finally:
        TELEMETRY.enabled, TELEMETRY.sink = prior_enabled, prior_sink


def _event_names(sink):
    return sorted({event.get("name") for event in sink.of_type("event")})


def _make_runner(cache_dir):
    from repro.experiments.runner import SuiteRunner

    return SuiteRunner(scale=MATRIX_SCALE, runs=1, cache_dir=cache_dir)


def _corruption_case(kind, seed, case_dir):
    """torn-write / bit-flip / corrupt-manifest: quarantine + recompute."""
    plan = FaultPlan.single(kind, seed=seed)
    with _captured_events() as sink:
        FAULTS.arm(plan)
        try:
            first = _make_runner(case_dir).run(MATRIX_BENCHMARK)
        finally:
            FAULTS.disarm()
        injected = bool(sink.named("fault.injected"))
        # Recovery: a fresh runner must detect the damage, quarantine
        # the entry, recompute, and store a clean replacement.
        second = _make_runner(case_dir).run(MATRIX_BENCHMARK)
        quarantined = bool(sink.named("cache.quarantined"))
        # Proof of a clean replacement: a third runner gets a pure
        # cache hit with no new quarantine.
        third = _make_runner(case_dir).run(MATRIX_BENCHMARK)
        hits = sink.named("cache.hit")
        events = _event_names(sink)
    equal = (list(first.trace.records()) == list(second.trace.records())
             == list(third.trace.records()))
    corrupt_files = list_quarantined(case_dir)
    ok = (injected and quarantined and equal and bool(corrupt_files)
          and bool(hits))
    detail = ("injected=%s quarantined=%s identical=%s corrupt_files=%d"
              % (injected, quarantined, equal, len(corrupt_files)))
    return FaultCase(kind, seed, "quarantined+recomputed", ok, detail,
                     events)


def _enospc_case(seed, case_dir):
    """enospc: the run completes uncached and leaves no partial entry."""
    plan = FaultPlan.single("enospc", seed=seed)
    with _captured_events() as sink:
        FAULTS.arm(plan)
        try:
            run = _make_runner(case_dir).run(MATRIX_BENCHMARK)
        finally:
            FAULTS.disarm()
        injected = bool(sink.named("fault.injected"))
        surfaced = bool(sink.named("cache.store_failed"))
        events = _event_names(sink)
    # No torn entry may survive: either nothing, or a complete
    # checksum-valid entry (the failed store must clean up after
    # itself).
    leftovers = [path for path in Path(case_dir).glob("*.npz")]
    completed = run is not None and len(run.trace) > 0
    ok = injected and surfaced and completed and not leftovers
    detail = ("injected=%s surfaced=%s completed=%s leftovers=%d"
              % (injected, surfaced, completed, len(leftovers)))
    return FaultCase("enospc", seed, "degraded-uncached", ok, detail,
                     events)


def _matrix_worker(payload):
    """Supervised-worker body: one crash-safe artifact write."""
    path, seed = payload
    data = ("matrix artifact seed %d\n" % seed).encode() * 64
    atomic_write_bytes(path, data)


def _worker_case(kind, seed, case_dir):
    """worker-crash / worker-hang: supervisor kills/retries to success."""
    plan = FaultPlan.single(kind, seed=seed)
    artifact = str(Path(case_dir) / "artifact.bin")
    os.environ[PLAN_ENV_VAR] = plan.to_json()
    try:
        with _captured_events() as sink:
            report = run_supervised(
                [("artifact", (artifact, seed))], _matrix_worker,
                workers=1, timeout=WORKER_TIMEOUT,
                retries=WORKER_RETRIES, backoff=WORKER_BACKOFF,
                seed=seed)
            retried = bool(sink.named("worker.retry"))
            events = _event_names(sink)
    finally:
        os.environ.pop(PLAN_ENV_VAR, None)
    outcome = report.outcome("artifact")
    recovered = (report.ok and outcome is not None
                 and outcome.attempts == 2)
    written = Path(artifact).exists()
    ok = retried and recovered and written
    detail = ("retried=%s attempts=%s written=%s"
              % (retried,
                 outcome.attempts if outcome else None, written))
    return FaultCase(kind, seed, "retried", ok, detail, events)


def _probe_campaign(index, schemes=None, deadline_s=None):
    """A cheap, per-index-distinct probe campaign for service cases."""
    spec = {"kind": "probe",
            "probes": [{"family": "chain", "m": 4, "stride": 1,
                        "laps": 5 + index}],
            "schemes": schemes or [{"scheme": "SBTB", "entries": 32}]}
    if deadline_s is not None:
        spec["deadline_s"] = deadline_s
    return spec


def _shard_crash_case(seed, case_dir):
    """shard-crash: a worker dies mid-shard; the service retries to
    completion and the executions log shows exactly one execution."""
    from repro.service import CampaignService

    plan = FaultPlan.single("shard-crash", seed=seed)
    os.environ[PLAN_ENV_VAR] = plan.to_json()
    service = None
    try:
        with _captured_events() as sink:
            service = CampaignService(
                case_dir, mode="process", workers=1, retries=2,
                backoff=0.05, seed=seed)
            status = service.submit(_probe_campaign(seed))
            drained = service.drain(timeout=30.0)
            retried = bool(sink.named("service.shard.retry"))
            events = _event_names(sink)
            final = service.status(status["id"])["status"]
    finally:
        os.environ.pop(PLAN_ENV_VAR, None)
        if service is not None:
            service.stop()
    executions = service.journal.executions()
    ok = (retried and drained and final == "done"
          and len(executions) == 1)
    detail = ("retried=%s drained=%s status=%s executions=%d"
              % (retried, drained, final, len(executions)))
    return FaultCase("shard-crash", seed, "retried", ok, detail,
                     events)


def _queue_overflow_case(seed, case_dir):
    """queue-overflow: admission rejects with retry-after; the queue
    never grows past its bound and later work still completes."""
    from repro.service import AdmissionError, CampaignService

    capacity = 2
    with _captured_events() as sink:
        service = CampaignService(case_dir, mode="inline",
                                  queue_capacity=capacity, seed=seed)
        big = _probe_campaign(seed, schemes=[
            {"scheme": "SBTB", "entries": 32},
            {"scheme": "GShare"},
            {"scheme": "Bimodal"}])
        rejected = retry_after = None
        try:
            service.submit(big)
        except AdmissionError as error:
            rejected = True
            retry_after = error.retry_after_s
        overflowed = bool(sink.named("service.admission.rejected"))
        bounded = service.queue.depth <= capacity
        status = service.submit(_probe_campaign(seed + 1000))
        drained = service.drain(timeout=30.0)
        final = service.status(status["id"])["status"]
        events = _event_names(sink)
    ok = (rejected is True and overflowed and bounded
          and retry_after is not None and retry_after > 0
          and drained and final == "done")
    detail = ("rejected=%s retry_after=%s bounded=%s later=%s"
              % (rejected, retry_after, bounded, final))
    return FaultCase("queue-overflow", seed, "rejected-with-retry",
                     ok, detail, events)


def _deadline_storm_case(seed, case_dir):
    """deadline-storm: expired campaigns shed cleanly into degraded
    tables (cells marked, nothing fabricated, nothing executed)."""
    from repro.service import CampaignService
    from repro.service.campaign import MISSING_CELL

    storm = 4
    with _captured_events() as sink:
        executed_base = TELEMETRY.counter_value("service.shard.executed")
        cancelled_base = TELEMETRY.counter_value(
            "service.deadline.cancelled")
        service = CampaignService(case_dir, mode="inline", seed=seed)
        ids = [service.submit(_probe_campaign(seed * storm + index,
                                              deadline_s=0))["id"]
               for index in range(storm)]
        service.step()
        expired = [service.status(campaign_id)["status"]
                   for campaign_id in ids]
        tables = [service.tables(campaign_id) for campaign_id in ids]
        executed = (TELEMETRY.counter_value("service.shard.executed")
                    - executed_base)
        cancelled = (TELEMETRY.counter_value(
            "service.deadline.cancelled") - cancelled_base)
        status = service.submit(_probe_campaign(seed + 2000))
        drained = service.drain(timeout=30.0)
        final = service.status(status["id"])["status"]
        events = _event_names(sink)
    degraded = all(
        table["degraded"] and MISSING_CELL in table["text"]
        and all(gap["reason"] == "deadline-expired"
                for gap in table["missing"])
        for table in tables)
    ok = (all(state == "expired" for state in expired) and degraded
          and executed == 0 and cancelled == storm
          and drained and final == "done")
    detail = ("expired=%d/%d degraded=%s executed=%d cancelled=%d "
              "later=%s" % (sum(state == "expired" for state in expired),
                            storm, degraded, executed, cancelled, final))
    return FaultCase("deadline-storm", seed, "cancelled+degraded", ok,
                     detail, events)


def _slow_client_case(seed, case_dir):
    """slow-client: a stalled connection must not block other clients
    (the HTTP layer threads per connection; the dispatcher never
    touches a socket)."""
    import socket

    from repro.service import CampaignService, ServiceClient, ServiceServer

    with _captured_events() as sink:
        service = CampaignService(case_dir, mode="inline", seed=seed)
        server = ServiceServer(service, port=0).start()
        stalled = None
        try:
            host, port = server.httpd.server_address[:2]
            # Client A: opens a connection, sends half a request line,
            # then stalls forever (until we close it).
            stalled = socket.create_connection((host, port), timeout=5)
            stalled.sendall(b"POST /campaigns HTTP/1.1\r\n")
            # Client B: full submit/wait cycle during the stall.
            client = ServiceClient(server.address, timeout=10.0)
            healthy = client.healthz().get("ok") is True
            status = client.submit(_probe_campaign(seed))
            final = client.wait(status["id"], timeout=30.0)
            events = _event_names(sink)
        finally:
            if stalled is not None:
                stalled.close()
            server.stop()
    ok = healthy and final == "done"
    detail = "healthy=%s status=%s" % (healthy, final)
    return FaultCase("slow-client", seed, "unaffected", ok, detail,
                     events)


def run_fault_matrix(seeds=10, first_seed=0, kinds=ALL_FAULT_KINDS,
                     base_dir=None):
    """Run the recovery matrix; returns a :class:`FaultMatrixReport`.

    Args:
        seeds: seeds per fault kind (each varies the trigger point and
            damage parameters).
        first_seed: start of the seed range.
        kinds: subset of :data:`ALL_FAULT_KINDS` to exercise (the
            store/worker catalog plus the service-level scenarios).
        base_dir: scratch directory (a fresh temp dir by default);
            each case gets its own isolated cache underneath.
    """
    service_cases = {
        "shard-crash": _shard_crash_case,
        "queue-overflow": _queue_overflow_case,
        "deadline-storm": _deadline_storm_case,
        "slow-client": _slow_client_case,
    }
    report = FaultMatrixReport(seeds, kinds)
    with contextlib.ExitStack() as stack:
        if base_dir is None:
            base_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-faults-"))
        base = Path(base_dir)
        for seed in range(first_seed, first_seed + seeds):
            for kind in kinds:
                case_dir = base / ("%s-%d" % (kind, seed))
                case_dir.mkdir(parents=True, exist_ok=True)
                if kind in ("torn-write", "bit-flip",
                            "corrupt-manifest"):
                    case = _corruption_case(kind, seed, case_dir)
                elif kind == "enospc":
                    case = _enospc_case(seed, case_dir)
                elif kind in service_cases:
                    case = service_cases[kind](seed, case_dir)
                else:
                    case = _worker_case(kind, seed, case_dir)
                report.cases.append(case)
    TELEMETRY.event("faults.result", ok=report.ok,
                    cases=len(report.cases),
                    swallowed=len(report.swallowed))
    return report
