"""Resilience: crash-safe storage, supervision, fault injection.

Long trace-driven campaigns die in boring ways — a truncated ``.npz``,
a full disk, one hung warm worker — and before this package any of
those killed an entire ``run_all`` sweep.  Five pieces (see
docs/RESILIENCE.md for the full guide):

* :mod:`repro.resilience.errors` — the typed failure taxonomy
  (:class:`CacheCorruptError`, :class:`ManifestError`,
  :class:`WorkerFailure`, ...), replacing blanket ``except Exception``
  in the cache paths;
* :mod:`repro.resilience.store` — atomic writes (temp + fsync +
  ``os.replace``), sha256 checksums recorded in run manifests,
  ``*.corrupt`` quarantine, and the inter-process :class:`StemLock`;
* :mod:`repro.resilience.supervisor` — supervised parallel execution
  with per-task timeouts, jittered-backoff retries, and a typed
  :class:`RunReport` of partial failures;
* :mod:`repro.resilience.checkpoint` — per-section checkpoint/resume
  for multi-table sweeps;
* :mod:`repro.resilience.faults` — the deterministic, seeded fault
  injector (disabled by default, one attribute check when off) and
  :mod:`repro.resilience.harness`, the recovery matrix behind
  ``repro-branches faults``.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    SweepCheckpoint,
    sweep_fingerprint,
)
from repro.resilience.errors import (
    CacheCorruptError,
    CheckpointError,
    LockTimeout,
    ManifestError,
    ResilienceError,
    WorkerFailure,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FAULTS,
    Fault,
    FaultInjector,
    FaultPlan,
)
from repro.resilience.store import (
    QUARANTINE_SUFFIX,
    StemLock,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_npz,
    atomic_write_text,
    data_checksum,
    file_checksum,
    list_quarantined,
    quarantine,
    verify_checksum,
)
from repro.resilience.supervisor import (
    RunReport,
    TaskOutcome,
    run_supervised,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "SweepCheckpoint",
    "sweep_fingerprint",
    "CacheCorruptError",
    "CheckpointError",
    "LockTimeout",
    "ManifestError",
    "ResilienceError",
    "WorkerFailure",
    "FAULT_KINDS",
    "FAULTS",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "QUARANTINE_SUFFIX",
    "StemLock",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_npz",
    "atomic_write_text",
    "data_checksum",
    "file_checksum",
    "list_quarantined",
    "quarantine",
    "verify_checksum",
    "RunReport",
    "TaskOutcome",
    "run_supervised",
]
